//! Sound state aggregation (lumping) for recovery POMDPs.
//!
//! Large recovery models contain many states the monitors cannot
//! distinguish: the lint analyzer reports them as *monitor-aliasing*
//! equivalence classes (`BPR017`). When aliased states additionally
//! share reward structure and have *class-respecting* transition rows,
//! the belief-state dynamics never separate them — any belief reachable
//! from a lumped initial belief assigns the class's mass indistinctly,
//! and every planning value depends only on the per-class mass. Such
//! classes can be merged into a **quotient POMDP** over the classes,
//! shrinking `|S|` without changing any [`crate::tree::Decision`].
//!
//! # Soundness
//!
//! [`lump`] starts from a caller-provided *candidate* partition (any
//! partition — typically the lint analyzer's aliasing classes; an
//! unsound seed is fine) and **refines** it until it is a strong
//! lumping certificate:
//!
//! 1. states in one class must have bit-identical observation rows
//!    `q(· | s, a)` for every action;
//! 2. states in one class must have bit-identical rewards `r(s, a)`
//!    for every action (durations are per-action and shared already);
//! 3. for every action, the class-aggregated transition mass
//!    `Σ_{s' ∈ C'} p(s' | s, a)` out of each member must agree
//!    bit-for-bit across the class, for every target class `C'` —
//!    iterated to a fixpoint, since splitting one class can break
//!    the aggregated-row agreement of another.
//!
//! All comparisons are on exact `f64` bit patterns, so the refinement
//! is conservative: it may keep apart states a real-analysis argument
//! could merge, but it never merges states whose belief dynamics could
//! diverge. With (1)–(3), projection `π ↦ π_Q` (summing belief mass
//! per class) commutes with the belief update: predicted mass,
//! per-observation `γ` values, expected rewards, and leaf-bound inputs
//! of the quotient equal those of the full model up to floating-point
//! re-association of the per-class sums. Planning values on the
//! quotient therefore match the full model's to summation tolerance —
//! and **bit-identically when the partition refines to the identity**
//! (every class a singleton), because then no re-association happens
//! at all.
//!
//! The quotient is rebuilt through [`bpr_mdp::MdpBuilder`] and
//! [`PomdpBuilder`], so it re-passes every stochasticity validation of
//! a hand-built model.

use crate::{Belief, Error, Pomdp, PomdpBuilder};
use bpr_mdp::{MdpBuilder, StateId};
use std::collections::HashMap;

/// The state-aggregation map produced by [`lump`]: a partition of the
/// full state space into quotient states, with both directions of the
/// belief correspondence.
///
/// The certificate is the object the equivalence proptests pin down:
/// simulate on the full model, plan on the quotient through
/// [`LumpCertificate::project`], and the decision sequence must match
/// planning on the full model directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LumpCertificate {
    /// `class_of[s]` = quotient state of full state `s`.
    class_of: Vec<usize>,
    /// `members[c]` = full states of quotient state `c`, ascending;
    /// `members[c][0]` is the class representative.
    members: Vec<Vec<usize>>,
}

impl LumpCertificate {
    /// The trivial certificate over `n` states: every class a
    /// singleton, projection and lift both the identity. Lets callers
    /// keep one code path (always project through a certificate)
    /// while opting out of aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> LumpCertificate {
        assert!(n > 0, "identity certificate needs at least one state");
        LumpCertificate {
            class_of: (0..n).collect(),
            members: (0..n).map(|s| vec![s]).collect(),
        }
    }

    /// Number of full-model states.
    pub fn n_full(&self) -> usize {
        self.class_of.len()
    }

    /// Number of quotient states (classes).
    pub fn n_quotient(&self) -> usize {
        self.members.len()
    }

    /// True when every class is a singleton — the quotient *is* the
    /// full model (up to state identity), and planning values are
    /// bit-identical, not merely tolerance-identical.
    pub fn is_identity(&self) -> bool {
        self.members.len() == self.class_of.len()
    }

    /// The quotient state a full state belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `full` is out of bounds.
    pub fn class_of(&self, full: StateId) -> StateId {
        StateId::new(self.class_of[full.index()])
    }

    /// The full states merged into a quotient state, in ascending
    /// order; the first member is the class representative.
    ///
    /// # Panics
    ///
    /// Panics if `quotient` is out of bounds.
    pub fn members(&self, quotient: StateId) -> &[usize] {
        &self.members[quotient.index()]
    }

    /// The representative (minimal member) of a quotient state.
    ///
    /// # Panics
    ///
    /// Panics if `quotient` is out of bounds.
    pub fn representative(&self, quotient: StateId) -> StateId {
        StateId::new(self.members[quotient.index()][0])
    }

    /// Projects a full-model belief onto the quotient: class mass is
    /// the sum of its members' mass, accumulated in ascending state
    /// order (deterministic bit pattern).
    ///
    /// # Panics
    ///
    /// Panics if the belief dimension is not the full state count.
    pub fn project(&self, full: &Belief) -> Belief {
        Belief::from_raw(self.project_weights(full.probs()))
    }

    /// [`LumpCertificate::project`] on a raw weight slice (need not be
    /// normalised).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` is not the full state count.
    pub fn project_weights(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.class_of.len(), "belief dimension");
        let mut q = vec![0.0; self.members.len()];
        for (s, &w) in weights.iter().enumerate() {
            q[self.class_of[s]] += w;
        }
        q
    }

    /// Lifts a quotient belief back to the full state space by placing
    /// each class's mass on its representative.
    ///
    /// Lumped dynamics never separate the members of a class, so every
    /// full belief consistent with a quotient belief yields the same
    /// values and decisions; the representative lift is the canonical
    /// (sparsest) such witness, and `project(lift(b)) == b` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the belief dimension is not the quotient state count.
    pub fn lift(&self, quotient: &Belief) -> Belief {
        let probs = quotient.probs();
        assert_eq!(probs.len(), self.members.len(), "belief dimension");
        let mut full = vec![0.0; self.class_of.len()];
        for (c, &w) in probs.iter().enumerate() {
            full[self.members[c][0]] = w;
        }
        Belief::from_raw(full)
    }
}

/// Size accounting of one [`lump`] pass (reported by the benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LumpStats {
    /// `|S|` of the full model.
    pub full_states: usize,
    /// `|S|` of the quotient.
    pub quotient_states: usize,
    /// Number of classes holding more than one full state.
    pub merged_classes: usize,
}

/// A quotient POMDP together with the certificate relating it to the
/// full model it was lumped from.
#[derive(Debug, Clone)]
pub struct Lumping {
    /// The quotient model; plan on this.
    pub pomdp: Pomdp,
    /// The partition map; project/lift beliefs through this.
    pub certificate: LumpCertificate,
}

impl Lumping {
    /// Size accounting for reporting.
    pub fn stats(&self) -> LumpStats {
        LumpStats {
            full_states: self.certificate.n_full(),
            quotient_states: self.certificate.n_quotient(),
            merged_classes: self
                .certificate
                .members
                .iter()
                .filter(|m| m.len() > 1)
                .count(),
        }
    }
}

/// Lumps `pomdp` by the given candidate classes, refined to soundness.
///
/// `seed` lists groups of states that *may* be mergeable (e.g. the
/// lint analyzer's monitor-aliasing classes); states not mentioned
/// stay singletons. The seed only proposes — the refinement described
/// in the module docs splits every group until the partition is a
/// strong lumping, so an arbitrary (even wrong) seed yields a sound
/// quotient, just possibly a larger one. Classes are numbered by their
/// minimal member, so class order is independent of seed order.
///
/// # Errors
///
/// * [`Error::IndexOutOfBounds`] if a seed state is out of range or
///   appears in more than one group.
/// * Construction errors from the quotient rebuild are propagated
///   (they indicate a malformed input model, not a lumping failure).
pub fn lump(pomdp: &Pomdp, seed: &[Vec<StateId>]) -> Result<Lumping, Error> {
    let n = pomdp.n_states();
    let mut class_of = seed_partition(n, seed)?;

    // Refinement 1 + 2: exact observation rows and rewards. One
    // combined key per state; states agreeing on the key stay together.
    let static_keys: Vec<Vec<u64>> = (0..n).map(|s| static_key(pomdp, s)).collect();
    split_by_key(&mut class_of, |s| static_keys[s].clone());

    // Refinement 3: class-respecting transitions, to a fixpoint.
    loop {
        let before = class_count(&class_of);
        let snapshot = class_of.clone();
        split_by_key(&mut class_of, |s| transition_key(pomdp, s, &snapshot));
        if class_count(&class_of) == before {
            break;
        }
    }

    let certificate = canonicalize(class_of);
    let quotient = build_quotient(pomdp, &certificate)?;
    Ok(Lumping {
        pomdp: quotient,
        certificate,
    })
}

/// Seed partition: listed groups get one class each, all other states
/// are singletons.
fn seed_partition(n: usize, seed: &[Vec<StateId>]) -> Result<Vec<usize>, Error> {
    const UNASSIGNED: usize = usize::MAX;
    let mut class_of = vec![UNASSIGNED; n];
    let mut next = 0usize;
    for group in seed {
        for s in group {
            let s = s.index();
            if s >= n {
                return Err(Error::IndexOutOfBounds {
                    what: "lump seed state",
                    index: s,
                    bound: n,
                });
            }
            if class_of[s] != UNASSIGNED {
                return Err(Error::IndexOutOfBounds {
                    what: "lump seed state (listed twice)",
                    index: s,
                    bound: n,
                });
            }
            class_of[s] = next;
        }
        if !group.is_empty() {
            next += 1;
        }
    }
    for c in class_of.iter_mut() {
        if *c == UNASSIGNED {
            *c = next;
            next += 1;
        }
    }
    Ok(class_of)
}

/// Observation-row + reward key of one state: exact bits, all actions.
fn static_key(pomdp: &Pomdp, s: usize) -> Vec<u64> {
    let mut key = Vec::new();
    for a in 0..pomdp.n_actions() {
        key.push(pomdp.mdp().reward_vector(a).to_vec()[s].to_bits());
        for (o, q) in pomdp.observation_matrix(a).row(s) {
            key.push(o as u64);
            key.push(q.to_bits());
        }
        key.push(u64::MAX); // action separator
    }
    key
}

/// Class-aggregated transition key of one state under the current
/// partition: per action, the `(target class, summed mass)` pairs in
/// ascending class order, masses accumulated in ascending successor
/// order (deterministic bits).
fn transition_key(pomdp: &Pomdp, s: usize, class_of: &[usize]) -> Vec<u64> {
    let mut key = Vec::new();
    let mut agg: HashMap<usize, f64> = HashMap::new();
    for a in 0..pomdp.n_actions() {
        agg.clear();
        for (s2, p) in pomdp.mdp().transition_matrix(a).row(s) {
            *agg.entry(class_of[s2]).or_insert(0.0) += p;
        }
        let mut pairs: Vec<(usize, f64)> = agg.iter().map(|(&c, &m)| (c, m)).collect();
        pairs.sort_unstable_by_key(|&(c, _)| c);
        for (c, m) in pairs {
            key.push(c as u64);
            key.push(m.to_bits());
        }
        key.push(u64::MAX); // action separator
    }
    key
}

fn class_count(class_of: &[usize]) -> usize {
    let mut seen = vec![false; class_of.len()];
    let mut count = 0;
    for &c in class_of {
        if !seen[c] {
            seen[c] = true;
            count += 1;
        }
    }
    count
}

/// Splits every class by the given per-state key; states keep their
/// class only if their key matches the whole class's.
fn split_by_key(class_of: &mut [usize], key_fn: impl Fn(usize) -> Vec<u64>) {
    let mut next = 0usize;
    let mut assignment: HashMap<(usize, Vec<u64>), usize> = HashMap::new();
    let fresh: Vec<usize> = (0..class_of.len())
        .map(|s| {
            let key = (class_of[s], key_fn(s));
            *assignment.entry(key).or_insert_with(|| {
                let c = next;
                next += 1;
                c
            })
        })
        .collect();
    class_of.copy_from_slice(&fresh);
}

/// Renumbers classes by their minimal member and materialises the
/// member lists.
fn canonicalize(class_of: Vec<usize>) -> LumpCertificate {
    let mut min_member: HashMap<usize, usize> = HashMap::new();
    for (s, &c) in class_of.iter().enumerate() {
        min_member.entry(c).or_insert(s); // first visit = minimal
    }
    let mut reps: Vec<(usize, usize)> = min_member.iter().map(|(&c, &m)| (m, c)).collect();
    reps.sort_unstable();
    let mut renumber: HashMap<usize, usize> = HashMap::new();
    for (new, &(_, old)) in reps.iter().enumerate() {
        renumber.insert(old, new);
    }
    let canonical: Vec<usize> = class_of.iter().map(|c| renumber[c]).collect();
    let mut members = vec![Vec::new(); reps.len()];
    for (s, &c) in canonical.iter().enumerate() {
        members[c].push(s);
    }
    LumpCertificate {
        class_of: canonical,
        members,
    }
}

/// Builds the quotient POMDP from the representatives' rows.
fn build_quotient(pomdp: &Pomdp, cert: &LumpCertificate) -> Result<Pomdp, Error> {
    let nq = cert.n_quotient();
    let na = pomdp.n_actions();
    let mdp = pomdp.mdp();
    let mut builder = MdpBuilder::new(nq, na);
    for a in 0..na {
        builder.duration(a, mdp.duration(a));
        builder.action_label(a, mdp.action_label(a));
    }
    let mut agg: HashMap<usize, f64> = HashMap::new();
    for c in 0..nq {
        let rep = cert.members[c][0];
        builder.state_label(c, mdp.state_label(StateId::new(rep)));
        for a in 0..na {
            builder.reward(c, a, mdp.reward_vector(a)[rep]);
            agg.clear();
            for (s2, p) in mdp.transition_matrix(a).row(rep) {
                *agg.entry(cert.class_of[s2]).or_insert(0.0) += p;
            }
            let mut pairs: Vec<(usize, f64)> = agg.iter().map(|(&c2, &m)| (c2, m)).collect();
            pairs.sort_unstable_by_key(|&(c2, _)| c2);
            for (c2, m) in pairs {
                builder.transition(c, a, c2, m);
            }
        }
    }
    let quotient_mdp = builder.build().map_err(Error::Mdp)?;
    let no = pomdp.n_observations();
    let mut pb = PomdpBuilder::new(quotient_mdp, no);
    for o in 0..no {
        pb.observation_label(o, pomdp.observation_label(o));
    }
    for c in 0..nq {
        let rep = cert.members[c][0];
        for a in 0..na {
            for (o, q) in pomdp.observation_matrix(a).row(rep) {
                pb.observation(c, a, o, q);
            }
        }
    }
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ConstantBound};
    use crate::tree::expand_with_cutoff;
    use bpr_mdp::chain::SolveOpts;

    /// A 5-state model with a genuinely lumpable pair: states 1 and 2
    /// are replicas with identical rewards, identical observation rows,
    /// and symmetric (class-respecting) transitions.
    fn lumpable_model() -> Pomdp {
        let mut b = MdpBuilder::new(5, 2);
        // action 0: "repair" — replicas 1, 2 both go to healthy 0;
        // 3 and 4 are distinct faults with different costs.
        for s in [1usize, 2] {
            b.transition(s, 0usize, 0usize, 1.0);
            b.reward(s, 0usize, -2.0);
        }
        b.transition(0usize, 0usize, 0usize, 1.0);
        b.transition(3usize, 0usize, 3usize, 1.0);
        b.transition(4usize, 0usize, 0usize, 1.0);
        b.reward(3usize, 0usize, -5.0);
        b.reward(4usize, 0usize, -1.0);
        // action 1: "wait" — replicas drift into each other's class.
        b.transition(0usize, 1usize, 0usize, 1.0);
        b.transition(1usize, 1usize, 1usize, 0.5);
        b.transition(1usize, 1usize, 2usize, 0.5);
        b.transition(2usize, 1usize, 2usize, 0.5);
        b.transition(2usize, 1usize, 1usize, 0.5);
        b.transition(3usize, 1usize, 3usize, 1.0);
        b.transition(4usize, 1usize, 4usize, 1.0);
        for s in [1usize, 2] {
            b.reward(s, 1usize, -1.0);
        }
        b.reward(3usize, 1usize, -1.5);
        b.reward(4usize, 1usize, -0.5);
        let mdp = b.build().unwrap();
        let mut pb = PomdpBuilder::new(mdp, 2);
        // Monitors cannot tell 1 from 2; everything else is distinct.
        for a in 0..2usize {
            pb.observation(0usize, a, 0usize, 1.0);
            pb.observation(1usize, a, 1usize, 1.0);
            pb.observation(2usize, a, 1usize, 1.0);
            pb.observation(3usize, a, 1usize, 1.0);
            pb.observation(4usize, a, 0usize, 1.0);
        }
        pb.build().unwrap()
    }

    #[test]
    fn lumpable_pair_is_merged_and_nothing_else() {
        let p = lumpable_model();
        let seed = vec![vec![
            StateId::new(1),
            StateId::new(2),
            StateId::new(3), // aliased by monitors but reward-distinct
        ]];
        let l = lump(&p, &seed).unwrap();
        let stats = l.stats();
        assert_eq!(stats.full_states, 5);
        assert_eq!(stats.quotient_states, 4);
        assert_eq!(stats.merged_classes, 1);
        assert_eq!(l.certificate.members(StateId::new(1)), &[1, 2]);
        assert!(!l.certificate.is_identity());
        // Quotient transition rows are the aggregated representative
        // rows: the merged class self-loops under "wait".
        let q = &l.pomdp;
        assert_eq!(q.n_states(), 4);
        assert!((q.mdp().transition_prob(1usize, 1usize, 1usize) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsound_seed_is_refined_apart() {
        let p = lumpable_model();
        // 3 and 4 differ in rewards, observations, and transitions;
        // seeding them together must not merge them.
        let seed = vec![vec![StateId::new(3), StateId::new(4)]];
        let l = lump(&p, &seed).unwrap();
        assert!(l.certificate.is_identity());
        assert_eq!(l.pomdp.n_states(), 5);
    }

    #[test]
    fn projection_commutes_with_belief_update() {
        let p = lumpable_model();
        let seed = vec![vec![StateId::new(1), StateId::new(2)]];
        let l = lump(&p, &seed).unwrap();
        let full = Belief::from_probs(vec![0.1, 0.3, 0.2, 0.25, 0.15]).unwrap();
        let projected = l.certificate.project(&full);
        for a in 0..p.n_actions() {
            let full_succ =
                crate::tree::fused_successors(&p, &full, bpr_mdp::ActionId::new(a), 0.0);
            let q_succ =
                crate::tree::fused_successors(&l.pomdp, &projected, bpr_mdp::ActionId::new(a), 0.0);
            assert_eq!(full_succ.len(), q_succ.len(), "branch count, action {a}");
            for ((o1, g1, b1), (o2, g2, b2)) in full_succ.iter().zip(&q_succ) {
                assert_eq!(o1, o2);
                assert!((g1 - g2).abs() < 1e-12, "gamma drift at {o1:?}");
                let reprojected = l.certificate.project_weights(b1.probs());
                for (x, y) in reprojected.iter().zip(b2.probs()) {
                    assert!((x - y).abs() < 1e-12, "posterior drift at {o1:?}");
                }
            }
        }
    }

    #[test]
    fn quotient_decisions_match_full_model_values() {
        let p = lumpable_model();
        let seed = vec![vec![StateId::new(1), StateId::new(2)]];
        let l = lump(&p, &seed).unwrap();
        let bound = ConstantBound(0.0);
        for probs in [
            vec![0.2; 5],
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.5, 0.0, 0.0],
            vec![0.1, 0.3, 0.2, 0.25, 0.15],
        ] {
            let full_b = Belief::from_probs(probs).unwrap();
            let q_b = l.certificate.project(&full_b);
            for depth in 1..=3 {
                let full_d = expand_with_cutoff(&p, &full_b, depth, &bound, 1.0, 0.0).unwrap();
                let q_d = expand_with_cutoff(&l.pomdp, &q_b, depth, &bound, 1.0, 0.0).unwrap();
                assert_eq!(full_d.action, q_d.action, "depth {depth}");
                assert!(
                    (full_d.value - q_d.value).abs() < 1e-9,
                    "depth {depth}: {} vs {}",
                    full_d.value,
                    q_d.value
                );
                for (qf, qq) in full_d.q_values.iter().zip(&q_d.q_values) {
                    assert!((qf - qq).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn identity_lump_is_bit_identical() {
        let p = two_server_notified();
        let l = lump(&p, &[]).unwrap();
        assert!(l.certificate.is_identity());
        assert_eq!(l.pomdp.fingerprint(), p.fingerprint());
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        for probs in [vec![1.0, 0.0, 0.0], vec![0.3, 0.3, 0.4]] {
            let b = Belief::from_probs(probs).unwrap();
            let q_b = l.certificate.project(&b);
            assert_eq!(b.probs(), q_b.probs());
            for depth in 1..=3 {
                let full_d = expand_with_cutoff(&p, &b, depth, &ra, 1.0, 0.0).unwrap();
                let q_d = expand_with_cutoff(&l.pomdp, &q_b, depth, &ra, 1.0, 0.0).unwrap();
                assert_eq!(full_d, q_d, "identity lump drifted at depth {depth}");
            }
        }
    }

    #[test]
    fn lift_is_a_projection_section() {
        let p = lumpable_model();
        let seed = vec![vec![StateId::new(1), StateId::new(2)]];
        let l = lump(&p, &seed).unwrap();
        let q_b = Belief::from_probs(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let lifted = l.certificate.lift(&q_b);
        assert_eq!(lifted.probs().len(), 5);
        let back = l.certificate.project(&lifted);
        assert_eq!(back.probs(), q_b.probs(), "project . lift must be identity");
    }

    #[test]
    fn bad_seeds_are_rejected() {
        let p = lumpable_model();
        assert!(lump(&p, &[vec![StateId::new(9)]]).is_err());
        assert!(lump(
            &p,
            &[
                vec![StateId::new(1)],
                vec![StateId::new(1), StateId::new(2)]
            ]
        )
        .is_err());
    }
}
