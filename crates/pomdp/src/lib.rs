//! Partially observable Markov decision processes for the `bpr`
//! workspace.
//!
//! A POMDP here is the tuple `(S, A, O, p(·|s,a), q(·|s,a), r(s,a))` of
//! the paper's Section 2: an [`bpr_mdp::Mdp`] plus an observation model
//! `q(o | s', a)` — the probability of observing `o` when the system
//! *enters* state `s'` as a result of action `a`.
//!
//! The crate provides:
//!
//! * [`Pomdp`] / [`PomdpBuilder`] — validated models.
//! * [`Belief`] — probability distributions over states with the Bayes
//!   update of Eq. 3–4 and sampling helpers for simulation.
//! * [`bounds`] — value-function bounds: the paper's **RA-Bound**
//!   (§3.1), the BI-POMDP lower bound, Hauskrecht's blind-policy bound,
//!   and QMDP/FIB *upper* bounds (the paper's "future work" extension),
//!   all represented as sets of bounding hyperplanes
//!   ([`bounds::VectorSetBound`], Eq. 6).
//! * [`backup`] — Hauskrecht's incremental linear-function backup
//!   (Eq. 7) used for iterative bound improvement.
//! * [`tree`] — the finite-depth Max-Avg expansion of the dynamic
//!   programming recursion (Fig. 1(b)) with bounds at the leaves, the
//!   decision procedure of the online recovery controller. Expansion
//!   runs on fused posterior operators precomputed per
//!   `(action, observation)` at model build time, with all scratch in a
//!   reusable [`PlanWorkspace`] — steady-state decisions allocate
//!   nothing — and optional root-parallel expansion over `bpr_par`.
//!
//! # Examples
//!
//! ```
//! use bpr_mdp::MdpBuilder;
//! use bpr_pomdp::{Belief, PomdpBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One-state world with a single no-op action and one observation.
//! let mut mb = MdpBuilder::new(1, 1);
//! mb.transition(0, 0, 0, 1.0);
//! let mut pb = PomdpBuilder::new(mb.build()?, 1);
//! pb.observation(0, 0, 0, 1.0);
//! let pomdp = pb.build()?;
//!
//! let belief = Belief::uniform(1);
//! let (next, gamma) = belief.update(&pomdp, 0.into(), 0.into())?;
//! assert_eq!(gamma, 1.0);
//! assert_eq!(next.probs(), &[1.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
mod belief;
pub mod bounds;
pub mod diagnosis;
mod error;
pub mod lump;
mod model;
mod plan;
pub mod tree;

pub use belief::{Belief, RobustUpdate};
pub use bpr_mdp::{ActionId, StateId};
pub use error::Error;
pub use lump::{lump, LumpCertificate, LumpStats, Lumping};
pub use model::{ObservationId, Pomdp, PomdpBuilder};
pub use plan::{CacheEpoch, PlanStats, PlanWorkspace};
