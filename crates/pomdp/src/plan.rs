//! Reusable scratch state for the fused planning kernel.
//!
//! A [`PlanWorkspace`] owns everything a tree expansion
//! ([`crate::tree`]) needs beyond the model itself: a free-list arena
//! of belief buffers, per-depth branch-and-bound frames, the
//! within-decision transposition cache, and the [`Decision`] scratch
//! the result is assembled in. Controllers hold one workspace across
//! decisions, so after the first decision warms the buffers up, a
//! decision performs **zero heap allocations** (the bench suite's
//! counting allocator enforces this).
//!
//! # Transposition cache
//!
//! Recovery models produce many *identical* posteriors inside one tree:
//! several restart actions collapse the belief onto the same null-fault
//! posterior, and the EMN monitors are action-independent. The cache
//! maps `(remaining depth, belief)` to the subtree value computed the
//! first time that node was seen. Keys quantise the belief at machine
//! precision — the exact `f64` bit patterns — so a hit can only occur
//! on a bit-identical belief and caching never changes any value.
//! Each entry also stores the number of nodes the subtree expanded, and
//! a hit re-adds that count, so `Decision::nodes_expanded` is invariant
//! to both the cache and the distribution of work across parallel root
//! workers. The cache is **disabled** on budgeted anytime passes,
//! whose abort points must depend only on the literal expansion order.
//!
//! # Cache epochs (cross-decision reuse)
//!
//! Subtree values depend on exactly four inputs beyond the belief and
//! depth: the model's transition/observation/reward content, the leaf
//! bound's hyperplanes, the discount base `beta`, and the gamma-cutoff.
//! A [`CacheEpoch`] packages those as `(model fingerprint, bound
//! generation, beta bits, cutoff bits)`; entry points that open a
//! decision with [`PlanWorkspace::begin_epoch`] keep the cache
//! **across decisions** for as long as the epoch is unchanged, and
//! clear it the moment any component differs. Because keys are exact
//! belief bits and the kernel is deterministic, a retained entry is
//! bit-identical to what recomputation would produce — cross-decision
//! reuse can change timings, never values. Entry points that cannot
//! name their epoch (or mutate bounds mid-decision) use
//! [`PlanWorkspace::begin`], which keeps the original
//! clear-every-decision semantics.

use crate::tree::Decision;
use bpr_linalg::CsrMatrix;
use bpr_mdp::ActionId;

/// Cumulative counters of one workspace's planning activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Transposition-cache hits (subtrees replayed from the cache).
    pub cache_hits: u64,
    /// Transposition-cache misses (subtrees expanded and stored).
    pub cache_misses: u64,
    /// The subset of `cache_hits` whose entry was stored by an
    /// *earlier* decision — i.e. reuse enabled by the epoch cache.
    /// Always zero under [`PlanWorkspace::begin`] semantics.
    pub cross_decision_hits: u64,
    /// Cache hits bucketed by remaining depth (index = depth). The
    /// vectors grow to the deepest depth seen and then stay fixed, so
    /// steady-state decisions do not allocate here.
    pub cache_hits_by_depth: Vec<u64>,
    /// Cache misses bucketed by remaining depth, parallel to
    /// [`PlanStats::cache_hits_by_depth`].
    pub cache_misses_by_depth: Vec<u64>,
    /// Belief buffers allocated because the arena was empty. Steady
    /// state is a constant value: every decision after the first warm
    /// one reuses arena buffers.
    pub buffers_allocated: u64,
}

impl PlanStats {
    fn bump_depth(buckets: &mut Vec<u64>, depth: usize) {
        if buckets.len() <= depth {
            buckets.resize(depth + 1, 0);
        }
        buckets[depth] += 1;
    }
}

/// The invariants a transposition-cache entry depends on (beyond its
/// own `(depth, belief)` key). Two decisions opened under equal epochs
/// may soundly share entries; see the module docs for the argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEpoch {
    /// [`crate::Pomdp::fingerprint`] of the planned model.
    pub model_fingerprint: u64,
    /// [`crate::bounds::VectorSetBound::generation`] of the leaf bound
    /// (or any equivalent token that changes whenever the bound does).
    pub bound_generation: u64,
    /// `f64::to_bits` of the discount base `beta`.
    pub beta_bits: u64,
    /// `f64::to_bits` of the gamma-cutoff.
    pub cutoff_bits: u64,
}

/// Reusable scratch for [`crate::tree`] expansions.
///
/// Create once (`PlanWorkspace::new()`), pass to the
/// `*_with_workspace` entry points, and read the result via
/// [`PlanWorkspace::decision`]. All scratch is retained between
/// decisions; only the transposition cache's *entries* are cleared.
#[derive(Debug, Clone, Default)]
pub struct PlanWorkspace {
    arena: Vec<Vec<f64>>,
    frames: Vec<BbFrame>,
    cache: BeliefCache,
    q_scratch: Vec<f64>,
    decision: Decision,
    stats: PlanStats,
    /// Epoch the cache entries were computed under; `None` until an
    /// epoch-aware decision opens, and after any `begin()` decision.
    epoch: Option<CacheEpoch>,
    /// Monotone decision counter; slots remember the serial they were
    /// stored under so hits from earlier decisions are distinguishable.
    decision_serial: u64,
}

impl PlanWorkspace {
    /// An empty workspace. Buffers are grown lazily by the first
    /// decisions and reused afterwards.
    pub fn new() -> PlanWorkspace {
        PlanWorkspace::default()
    }

    /// Counters accumulated over the workspace's lifetime.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Zeroes the cumulative counters (e.g. between a warm-up phase and
    /// a measured phase). Cache entries, arena buffers, and the current
    /// epoch are untouched.
    pub fn reset_stats(&mut self) {
        // Zero in place: replacing the struct would drop the per-depth
        // buckets' capacity and force a reallocation on the next bump,
        // breaking the steady-state zero-allocation property.
        self.stats.cache_hits = 0;
        self.stats.cache_misses = 0;
        self.stats.cross_decision_hits = 0;
        self.stats
            .cache_hits_by_depth
            .iter_mut()
            .for_each(|v| *v = 0);
        self.stats
            .cache_misses_by_depth
            .iter_mut()
            .for_each(|v| *v = 0);
        self.stats.buffers_allocated = 0;
    }

    /// The decision produced by the most recent `*_with_workspace`
    /// expansion.
    pub fn decision(&self) -> &Decision {
        &self.decision
    }

    /// Moves the most recent decision out, leaving an empty placeholder
    /// (used by the allocating convenience wrappers).
    pub fn take_decision(&mut self) -> Decision {
        std::mem::replace(
            &mut self.decision,
            Decision {
                action: ActionId::new(0),
                value: f64::NEG_INFINITY,
                q_values: Vec::new(),
                nodes_expanded: 0,
            },
        )
    }

    /// The per-action root values of the most recent *completed*
    /// budgeted pass ([`crate::tree::expand_budgeted`]).
    pub fn q_scratch(&self) -> &[f64] {
        &self.q_scratch
    }

    /// Starts a new decision: empties the transposition cache (bounds
    /// may have changed since the previous decision) while keeping its
    /// capacity.
    pub(crate) fn begin(&mut self) {
        self.decision_serial += 1;
        self.epoch = None;
        self.cache.clear();
    }

    /// Starts a new decision under an explicit [`CacheEpoch`]: the
    /// transposition cache is cleared only when the epoch differs from
    /// the one the retained entries were computed under, so repeated
    /// decisions against an unchanged model/bound reuse subtree values
    /// across decisions.
    pub(crate) fn begin_epoch(&mut self, epoch: CacheEpoch) {
        self.decision_serial += 1;
        if self.epoch != Some(epoch) {
            self.cache.clear();
            self.epoch = Some(epoch);
        }
    }

    /// Borrows a zeroed length-`n` scratch buffer from the arena,
    /// allocating only when the free list is empty. Return it with
    /// [`PlanWorkspace::release`] so later checkouts can reuse it.
    pub fn checkout(&mut self, n: usize) -> Vec<f64> {
        match self.arena.pop() {
            Some(mut buf) => {
                if buf.len() != n {
                    buf.clear();
                    buf.resize(n, 0.0);
                }
                buf
            }
            None => {
                self.stats.buffers_allocated += 1;
                vec![0.0; n]
            }
        }
    }

    /// Returns a buffer from [`PlanWorkspace::checkout`] to the arena.
    pub fn release(&mut self, buf: Vec<f64>) {
        self.arena.push(buf);
    }

    pub(crate) fn take_frame(&mut self, depth: usize) -> BbFrame {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, BbFrame::default);
        }
        std::mem::take(&mut self.frames[depth])
    }

    pub(crate) fn put_frame(&mut self, depth: usize, frame: BbFrame) {
        self.frames[depth] = frame;
    }

    /// Whether the current decision was opened with an epoch (i.e. the
    /// cache may carry entries across decisions). Root-level q-entries
    /// are only worth storing in that regime.
    pub(crate) fn has_epoch(&self) -> bool {
        self.epoch.is_some()
    }

    pub(crate) fn cache_get(&mut self, depth: usize, weights: &[f64]) -> Option<(f64, usize)> {
        self.cache_get_keyed(depth, depth, weights)
    }

    pub(crate) fn cache_put(&mut self, depth: usize, weights: &[f64], value: f64, nodes: usize) {
        self.cache
            .put(depth, weights, value, nodes, self.decision_serial);
    }

    /// Root per-action lookup: `(depth, action, belief)` keyed through
    /// the same table under a tagged key (see [`pack_root_key`]).
    pub(crate) fn root_cache_get(
        &mut self,
        depth: usize,
        action: usize,
        weights: &[f64],
    ) -> Option<(f64, usize)> {
        self.cache_get_keyed(pack_root_key(depth, action), depth, weights)
    }

    pub(crate) fn root_cache_put(
        &mut self,
        depth: usize,
        action: usize,
        weights: &[f64],
        q: f64,
        nodes: usize,
    ) {
        self.cache.put(
            pack_root_key(depth, action),
            weights,
            q,
            nodes,
            self.decision_serial,
        );
    }

    fn cache_get_keyed(
        &mut self,
        key_depth: usize,
        stat_depth: usize,
        weights: &[f64],
    ) -> Option<(f64, usize)> {
        match self.cache.get(key_depth, weights) {
            Some((value, nodes, serial)) => {
                self.stats.cache_hits += 1;
                PlanStats::bump_depth(&mut self.stats.cache_hits_by_depth, stat_depth);
                if serial != self.decision_serial {
                    self.stats.cross_decision_hits += 1;
                }
                Some((value, nodes))
            }
            None => {
                self.stats.cache_misses += 1;
                PlanStats::bump_depth(&mut self.stats.cache_misses_by_depth, stat_depth);
                None
            }
        }
    }

    pub(crate) fn q_clear(&mut self) {
        self.q_scratch.clear();
    }

    pub(crate) fn q_push(&mut self, q: f64) {
        self.q_scratch.push(q);
    }

    pub(crate) fn decision_clear(&mut self) {
        self.decision.q_values.clear();
    }

    pub(crate) fn decision_fill(&mut self, n_actions: usize, value: f64) {
        self.decision.q_values.clear();
        self.decision.q_values.resize(n_actions, value);
    }

    pub(crate) fn push_q(&mut self, q: f64) {
        self.decision.q_values.push(q);
    }

    pub(crate) fn set_q(&mut self, action: usize, q: f64) {
        self.decision.q_values[action] = q;
    }

    pub(crate) fn q_values(&self) -> &[f64] {
        &self.decision.q_values
    }

    pub(crate) fn finish_decision(&mut self, action: ActionId, value: f64, nodes: usize) {
        self.decision.action = action;
        self.decision.value = value;
        self.decision.nodes_expanded = nodes;
    }
}

/// Per-depth scratch of one branch-and-bound node: the shared
/// predictive vector, the surviving branches (flat `gammas` +
/// posterior slots), and the per-action entries ordered for pruning.
///
/// Frames are checked out of the workspace by remaining depth via
/// [`std::mem::take`]; a node at depth `d` only ever recurses into
/// depth `d - 1`, so the frame it holds is never aliased.
#[derive(Debug, Clone, Default)]
pub(crate) struct BbFrame {
    pub(crate) pred: Vec<f64>,
    pub(crate) gammas: Vec<f64>,
    posts: Vec<Vec<f64>>,
    posts_used: usize,
    pub(crate) entries: Vec<BbEntry>,
}

/// One action's row in a branch-and-bound frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BbEntry {
    pub(crate) action: usize,
    pub(crate) reward: f64,
    pub(crate) q_ub: f64,
    /// Index of the action's first branch in `gammas`/`posts`.
    pub(crate) start: usize,
    /// Number of surviving branches.
    pub(crate) len: usize,
}

impl BbFrame {
    pub(crate) fn reset(&mut self, n_states: usize) {
        self.pred.clear();
        self.pred.resize(n_states, 0.0);
        self.gammas.clear();
        self.entries.clear();
        self.posts_used = 0;
    }

    /// Number of branches collected so far.
    pub(crate) fn branches(&self) -> usize {
        self.gammas.len()
    }

    /// Applies observation row `o` of `obs_t` to the predictive vector,
    /// writing the unnormalised posterior into the next free slot and
    /// returning `γ`. The slot is only consumed if the caller follows
    /// up with [`BbFrame::keep_branch`]. Dimensions are the kernel's
    /// own invariants, so this runs the debug-asserted unchecked scale.
    pub(crate) fn scale_branch(&mut self, obs_t: &CsrMatrix, o: usize, n_states: usize) -> f64 {
        if self.posts.len() == self.posts_used {
            self.posts.push(vec![0.0; n_states]);
        }
        let slot = &mut self.posts[self.posts_used];
        if slot.len() != n_states {
            slot.clear();
            slot.resize(n_states, 0.0);
        }
        obs_t.row_scaled_into_unchecked(o, &self.pred, slot)
    }

    /// Normalises the pending slot by `gamma` (replicating
    /// [`bpr_linalg::dense::normalize_l1`]'s finite-sum guard) and
    /// commits it as a surviving branch.
    pub(crate) fn keep_branch(&mut self, gamma: f64) {
        if gamma != 0.0 && gamma.is_finite() {
            for v in self.posts[self.posts_used].iter_mut() {
                *v /= gamma;
            }
        }
        self.gammas.push(gamma);
        self.posts_used += 1;
    }

    pub(crate) fn post(&self, i: usize) -> &[f64] {
        &self.posts[i]
    }
}

/// Open-addressing transposition table over `(depth, belief-bits)`
/// keys. No `std::collections::HashMap`: the flat key arena and
/// retained-capacity `clear` keep steady-state decisions free of
/// allocations and rehash noise.
#[derive(Debug, Clone, Default)]
struct BeliefCache {
    slots: Vec<Slot>,
    /// Flat storage of the `f64::to_bits` key words, `key_len` per
    /// entry (all beliefs of one model share a length).
    keys: Vec<u64>,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    occupied: bool,
    hash: u64,
    depth: u32,
    start: usize,
    value: f64,
    nodes: u64,
    /// Decision serial the entry was stored under (cross-decision
    /// reuse accounting only; never part of the lookup key).
    serial: u64,
}

const EMPTY_SLOT: Slot = Slot {
    occupied: false,
    hash: 0,
    depth: 0,
    start: 0,
    value: 0.0,
    nodes: 0,
    serial: 0,
};

/// Tags a root per-action entry's key so it can share the node-value
/// table: bit 31 marks "root q-entry", bits 16..31 carry the action,
/// bits 0..16 the depth. Interior node entries use the bare depth,
/// which never reaches bit 31, so the two families cannot collide.
fn pack_root_key(depth: usize, action: usize) -> usize {
    debug_assert!(depth < (1 << 16), "tree depth exceeds root-key packing");
    debug_assert!(action < (1 << 15), "action count exceeds root-key packing");
    (1 << 31) | (action << 16) | depth
}

/// FNV-1a over the depth and the belief's exact bit patterns.
fn hash_key(depth: usize, weights: &[f64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    h ^= depth as u64;
    h = h.wrapping_mul(FNV_PRIME);
    for &w in weights {
        h ^= w.to_bits();
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl BeliefCache {
    fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.occupied = false;
        }
        self.keys.clear();
        self.len = 0;
    }

    fn key_matches(&self, start: usize, weights: &[f64]) -> bool {
        self.keys[start..start + weights.len()]
            .iter()
            .zip(weights)
            .all(|(&k, &w)| k == w.to_bits())
    }

    fn get(&self, depth: usize, weights: &[f64]) -> Option<(f64, usize, u64)> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let hash = hash_key(depth, weights);
        let mut i = (hash as usize) & mask;
        loop {
            let slot = &self.slots[i];
            if !slot.occupied {
                return None;
            }
            if slot.hash == hash
                && slot.depth == depth as u32
                && self.key_matches(slot.start, weights)
            {
                return Some((slot.value, slot.nodes as usize, slot.serial));
            }
            i = (i + 1) & mask;
        }
    }

    fn put(&mut self, depth: usize, weights: &[f64], value: f64, nodes: usize, serial: u64) {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY_SLOT; 64];
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let start = self.keys.len();
        self.keys.extend(weights.iter().map(|w| w.to_bits()));
        let slot = Slot {
            occupied: true,
            hash: hash_key(depth, weights),
            depth: depth as u32,
            start,
            value,
            nodes: nodes as u64,
            serial,
        };
        self.insert_slot(slot);
        self.len += 1;
    }

    fn insert_slot(&mut self, slot: Slot) {
        let mask = self.slots.len() - 1;
        let mut i = (slot.hash as usize) & mask;
        while self.slots[i].occupied {
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
    }

    fn grow(&mut self) {
        let doubled = vec![EMPTY_SLOT; self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        for slot in old {
            if slot.occupied {
                self.insert_slot(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_only_on_exact_bits_and_depth() {
        let mut cache = BeliefCache::default();
        let a = [0.25, 0.75];
        let b = [0.25, 0.75 + 1e-16];
        assert_eq!(cache.get(2, &a), None);
        cache.put(2, &a, -1.5, 7, 1);
        assert_eq!(cache.get(2, &a), Some((-1.5, 7, 1)));
        assert_eq!(cache.get(1, &a), None, "depth is part of the key");
        if b[1] != a[1] {
            assert_eq!(cache.get(2, &b), None, "near-equal bits miss");
        }
        cache.clear();
        assert_eq!(cache.get(2, &a), None);
        assert!(!cache.slots.is_empty(), "clear keeps capacity");
    }

    #[test]
    fn cache_survives_growth() {
        let mut cache = BeliefCache::default();
        for i in 0..500usize {
            cache.put(1, &[i as f64, 1.0 - i as f64], -(i as f64), i, 3);
        }
        for i in 0..500usize {
            assert_eq!(
                cache.get(1, &[i as f64, 1.0 - i as f64]),
                Some((-(i as f64), i, 3)),
                "entry {i} lost in growth"
            );
        }
    }

    #[test]
    fn epoch_begin_retains_entries_and_counts_cross_decision_hits() {
        let epoch = CacheEpoch {
            model_fingerprint: 11,
            bound_generation: 22,
            beta_bits: 0.5f64.to_bits(),
            cutoff_bits: 0.0f64.to_bits(),
        };
        let weights = [0.125, 0.875];
        let mut ws = PlanWorkspace::new();
        ws.begin_epoch(epoch);
        assert_eq!(ws.cache_get(1, &weights), None);
        ws.cache_put(1, &weights, -2.0, 5);
        assert_eq!(ws.cache_get(1, &weights), Some((-2.0, 5)));
        assert_eq!(ws.stats().cross_decision_hits, 0, "same-decision hit");
        // Same epoch, next decision: the entry survives and the hit is
        // attributed to cross-decision reuse.
        ws.begin_epoch(epoch);
        assert_eq!(ws.cache_get(1, &weights), Some((-2.0, 5)));
        assert_eq!(ws.stats().cross_decision_hits, 1);
        assert_eq!(ws.stats().cache_hits, 2);
        assert_eq!(ws.stats().cache_hits_by_depth, vec![0, 2]);
        assert_eq!(ws.stats().cache_misses_by_depth, vec![0, 1]);
        // A changed bound generation invalidates everything.
        ws.begin_epoch(CacheEpoch {
            bound_generation: 23,
            ..epoch
        });
        assert_eq!(ws.cache_get(1, &weights), None);
        // Plain begin() always clears and never counts cross-decision.
        ws.cache_put(1, &weights, -2.0, 5);
        ws.begin();
        assert_eq!(ws.cache_get(1, &weights), None);
        ws.reset_stats();
        // Counters are zeroed in place; the per-depth buckets keep
        // their length (and capacity) so steady state stays alloc-free.
        let zeroed = PlanStats {
            cache_hits_by_depth: vec![0, 0],
            cache_misses_by_depth: vec![0, 0],
            ..PlanStats::default()
        };
        assert_eq!(ws.stats(), &zeroed);
        // Root per-action entries share the table under a tagged key:
        // no collision with node entries at the same depth, and the
        // same epoch/serial discipline applies.
        ws.begin_epoch(epoch);
        ws.cache_put(1, &weights, -2.0, 5);
        assert_eq!(ws.root_cache_get(1, 0, &weights), None);
        ws.root_cache_put(1, 0, &weights, -7.5, 3);
        assert_eq!(ws.root_cache_get(1, 0, &weights), Some((-7.5, 3)));
        assert_eq!(ws.root_cache_get(1, 1, &weights), None, "per-action keys");
        assert_eq!(ws.cache_get(1, &weights), Some((-2.0, 5)));
        ws.begin_epoch(epoch);
        assert_eq!(ws.root_cache_get(1, 0, &weights), Some((-7.5, 3)));
        assert!(ws.stats().cross_decision_hits >= 1);
    }

    #[test]
    fn workspace_arena_recycles_buffers() {
        let mut ws = PlanWorkspace::new();
        let a = ws.checkout(4);
        let b = ws.checkout(4);
        assert_eq!(ws.stats().buffers_allocated, 2);
        ws.release(a);
        ws.release(b);
        let c = ws.checkout(4);
        let d = ws.checkout(4);
        assert_eq!(ws.stats().buffers_allocated, 2, "buffers were reused");
        assert_eq!(c.len(), 4);
        assert_eq!(d.len(), 4);
        ws.release(c);
        ws.release(d);
        // A different model size reshapes, reusing the heap block when
        // capacity allows.
        let e = ws.checkout(3);
        assert_eq!(e.len(), 3);
        assert_eq!(ws.stats().buffers_allocated, 2);
    }
}
