//! Reusable scratch state for the fused planning kernel.
//!
//! A [`PlanWorkspace`] owns everything a tree expansion
//! ([`crate::tree`]) needs beyond the model itself: a free-list arena
//! of belief buffers, per-depth branch-and-bound frames, the
//! within-decision transposition cache, and the [`Decision`] scratch
//! the result is assembled in. Controllers hold one workspace across
//! decisions, so after the first decision warms the buffers up, a
//! decision performs **zero heap allocations** (the bench suite's
//! counting allocator enforces this).
//!
//! # Transposition cache
//!
//! Recovery models produce many *identical* posteriors inside one tree:
//! several restart actions collapse the belief onto the same null-fault
//! posterior, and the EMN monitors are action-independent. The cache
//! maps `(remaining depth, belief)` to the subtree value computed the
//! first time that node was seen. Keys quantise the belief at machine
//! precision — the exact `f64` bit patterns — so a hit can only occur
//! on a bit-identical belief and caching never changes any value.
//! Each entry also stores the number of nodes the subtree expanded, and
//! a hit re-adds that count, so `Decision::nodes_expanded` is invariant
//! to both the cache and the distribution of work across parallel root
//! workers. The cache is cleared between decisions (bounds mutate
//! across decisions, e.g. by online backup) and is **disabled** on
//! budgeted anytime passes, whose abort points must depend only on the
//! literal expansion order.

use crate::tree::Decision;
use bpr_linalg::CsrMatrix;
use bpr_mdp::ActionId;

/// Cumulative counters of one workspace's planning activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Transposition-cache hits (subtrees replayed from the cache).
    pub cache_hits: u64,
    /// Transposition-cache misses (subtrees expanded and stored).
    pub cache_misses: u64,
    /// Belief buffers allocated because the arena was empty. Steady
    /// state is a constant value: every decision after the first warm
    /// one reuses arena buffers.
    pub buffers_allocated: u64,
}

/// Reusable scratch for [`crate::tree`] expansions.
///
/// Create once (`PlanWorkspace::new()`), pass to the
/// `*_with_workspace` entry points, and read the result via
/// [`PlanWorkspace::decision`]. All scratch is retained between
/// decisions; only the transposition cache's *entries* are cleared.
#[derive(Debug, Clone, Default)]
pub struct PlanWorkspace {
    arena: Vec<Vec<f64>>,
    frames: Vec<BbFrame>,
    cache: BeliefCache,
    q_scratch: Vec<f64>,
    decision: Decision,
    stats: PlanStats,
}

impl PlanWorkspace {
    /// An empty workspace. Buffers are grown lazily by the first
    /// decisions and reused afterwards.
    pub fn new() -> PlanWorkspace {
        PlanWorkspace::default()
    }

    /// Counters accumulated over the workspace's lifetime.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// The decision produced by the most recent `*_with_workspace`
    /// expansion.
    pub fn decision(&self) -> &Decision {
        &self.decision
    }

    /// Moves the most recent decision out, leaving an empty placeholder
    /// (used by the allocating convenience wrappers).
    pub fn take_decision(&mut self) -> Decision {
        std::mem::replace(
            &mut self.decision,
            Decision {
                action: ActionId::new(0),
                value: f64::NEG_INFINITY,
                q_values: Vec::new(),
                nodes_expanded: 0,
            },
        )
    }

    /// The per-action root values of the most recent *completed*
    /// budgeted pass ([`crate::tree::expand_budgeted`]).
    pub fn q_scratch(&self) -> &[f64] {
        &self.q_scratch
    }

    /// Starts a new decision: empties the transposition cache (bounds
    /// may have changed since the previous decision) while keeping its
    /// capacity.
    pub(crate) fn begin(&mut self) {
        self.cache.clear();
    }

    /// Borrows a zeroed length-`n` scratch buffer from the arena,
    /// allocating only when the free list is empty. Return it with
    /// [`PlanWorkspace::release`] so later checkouts can reuse it.
    pub fn checkout(&mut self, n: usize) -> Vec<f64> {
        match self.arena.pop() {
            Some(mut buf) => {
                if buf.len() != n {
                    buf.clear();
                    buf.resize(n, 0.0);
                }
                buf
            }
            None => {
                self.stats.buffers_allocated += 1;
                vec![0.0; n]
            }
        }
    }

    /// Returns a buffer from [`PlanWorkspace::checkout`] to the arena.
    pub fn release(&mut self, buf: Vec<f64>) {
        self.arena.push(buf);
    }

    pub(crate) fn take_frame(&mut self, depth: usize) -> BbFrame {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, BbFrame::default);
        }
        std::mem::take(&mut self.frames[depth])
    }

    pub(crate) fn put_frame(&mut self, depth: usize, frame: BbFrame) {
        self.frames[depth] = frame;
    }

    pub(crate) fn cache_get(&mut self, depth: usize, weights: &[f64]) -> Option<(f64, usize)> {
        let hit = self.cache.get(depth, weights);
        if hit.is_some() {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
        }
        hit
    }

    pub(crate) fn cache_put(&mut self, depth: usize, weights: &[f64], value: f64, nodes: usize) {
        self.cache.put(depth, weights, value, nodes);
    }

    pub(crate) fn q_clear(&mut self) {
        self.q_scratch.clear();
    }

    pub(crate) fn q_push(&mut self, q: f64) {
        self.q_scratch.push(q);
    }

    pub(crate) fn decision_clear(&mut self) {
        self.decision.q_values.clear();
    }

    pub(crate) fn decision_fill(&mut self, n_actions: usize, value: f64) {
        self.decision.q_values.clear();
        self.decision.q_values.resize(n_actions, value);
    }

    pub(crate) fn push_q(&mut self, q: f64) {
        self.decision.q_values.push(q);
    }

    pub(crate) fn set_q(&mut self, action: usize, q: f64) {
        self.decision.q_values[action] = q;
    }

    pub(crate) fn q_values(&self) -> &[f64] {
        &self.decision.q_values
    }

    pub(crate) fn finish_decision(&mut self, action: ActionId, value: f64, nodes: usize) {
        self.decision.action = action;
        self.decision.value = value;
        self.decision.nodes_expanded = nodes;
    }
}

/// Per-depth scratch of one branch-and-bound node: the shared
/// predictive vector, the surviving branches (flat `gammas` +
/// posterior slots), and the per-action entries ordered for pruning.
///
/// Frames are checked out of the workspace by remaining depth via
/// [`std::mem::take`]; a node at depth `d` only ever recurses into
/// depth `d - 1`, so the frame it holds is never aliased.
#[derive(Debug, Clone, Default)]
pub(crate) struct BbFrame {
    pub(crate) pred: Vec<f64>,
    pub(crate) gammas: Vec<f64>,
    posts: Vec<Vec<f64>>,
    posts_used: usize,
    pub(crate) entries: Vec<BbEntry>,
}

/// One action's row in a branch-and-bound frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BbEntry {
    pub(crate) action: usize,
    pub(crate) reward: f64,
    pub(crate) q_ub: f64,
    /// Index of the action's first branch in `gammas`/`posts`.
    pub(crate) start: usize,
    /// Number of surviving branches.
    pub(crate) len: usize,
}

impl BbFrame {
    pub(crate) fn reset(&mut self, n_states: usize) {
        self.pred.clear();
        self.pred.resize(n_states, 0.0);
        self.gammas.clear();
        self.entries.clear();
        self.posts_used = 0;
    }

    /// Number of branches collected so far.
    pub(crate) fn branches(&self) -> usize {
        self.gammas.len()
    }

    /// Applies observation row `o` of `obs_t` to the predictive vector,
    /// writing the unnormalised posterior into the next free slot and
    /// returning `γ`. The slot is only consumed if the caller follows
    /// up with [`BbFrame::keep_branch`].
    pub(crate) fn scale_branch(
        &mut self,
        obs_t: &CsrMatrix,
        o: usize,
        n_states: usize,
    ) -> Result<f64, bpr_linalg::Error> {
        if self.posts.len() == self.posts_used {
            self.posts.push(vec![0.0; n_states]);
        }
        let slot = &mut self.posts[self.posts_used];
        if slot.len() != n_states {
            slot.clear();
            slot.resize(n_states, 0.0);
        }
        obs_t.row_scaled_into(o, &self.pred, slot)
    }

    /// Normalises the pending slot by `gamma` (replicating
    /// [`bpr_linalg::dense::normalize_l1`]'s finite-sum guard) and
    /// commits it as a surviving branch.
    pub(crate) fn keep_branch(&mut self, gamma: f64) {
        if gamma != 0.0 && gamma.is_finite() {
            for v in self.posts[self.posts_used].iter_mut() {
                *v /= gamma;
            }
        }
        self.gammas.push(gamma);
        self.posts_used += 1;
    }

    pub(crate) fn post(&self, i: usize) -> &[f64] {
        &self.posts[i]
    }
}

/// Open-addressing transposition table over `(depth, belief-bits)`
/// keys. No `std::collections::HashMap`: the flat key arena and
/// retained-capacity `clear` keep steady-state decisions free of
/// allocations and rehash noise.
#[derive(Debug, Clone, Default)]
struct BeliefCache {
    slots: Vec<Slot>,
    /// Flat storage of the `f64::to_bits` key words, `key_len` per
    /// entry (all beliefs of one model share a length).
    keys: Vec<u64>,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    occupied: bool,
    hash: u64,
    depth: u32,
    start: usize,
    value: f64,
    nodes: u64,
}

const EMPTY_SLOT: Slot = Slot {
    occupied: false,
    hash: 0,
    depth: 0,
    start: 0,
    value: 0.0,
    nodes: 0,
};

/// FNV-1a over the depth and the belief's exact bit patterns.
fn hash_key(depth: usize, weights: &[f64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    h ^= depth as u64;
    h = h.wrapping_mul(FNV_PRIME);
    for &w in weights {
        h ^= w.to_bits();
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl BeliefCache {
    fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.occupied = false;
        }
        self.keys.clear();
        self.len = 0;
    }

    fn key_matches(&self, start: usize, weights: &[f64]) -> bool {
        self.keys[start..start + weights.len()]
            .iter()
            .zip(weights)
            .all(|(&k, &w)| k == w.to_bits())
    }

    fn get(&self, depth: usize, weights: &[f64]) -> Option<(f64, usize)> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let hash = hash_key(depth, weights);
        let mut i = (hash as usize) & mask;
        loop {
            let slot = &self.slots[i];
            if !slot.occupied {
                return None;
            }
            if slot.hash == hash
                && slot.depth == depth as u32
                && self.key_matches(slot.start, weights)
            {
                return Some((slot.value, slot.nodes as usize));
            }
            i = (i + 1) & mask;
        }
    }

    fn put(&mut self, depth: usize, weights: &[f64], value: f64, nodes: usize) {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY_SLOT; 64];
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let start = self.keys.len();
        self.keys.extend(weights.iter().map(|w| w.to_bits()));
        let slot = Slot {
            occupied: true,
            hash: hash_key(depth, weights),
            depth: depth as u32,
            start,
            value,
            nodes: nodes as u64,
        };
        self.insert_slot(slot);
        self.len += 1;
    }

    fn insert_slot(&mut self, slot: Slot) {
        let mask = self.slots.len() - 1;
        let mut i = (slot.hash as usize) & mask;
        while self.slots[i].occupied {
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
    }

    fn grow(&mut self) {
        let doubled = vec![EMPTY_SLOT; self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        for slot in old {
            if slot.occupied {
                self.insert_slot(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_only_on_exact_bits_and_depth() {
        let mut cache = BeliefCache::default();
        let a = [0.25, 0.75];
        let b = [0.25, 0.75 + 1e-16];
        assert_eq!(cache.get(2, &a), None);
        cache.put(2, &a, -1.5, 7);
        assert_eq!(cache.get(2, &a), Some((-1.5, 7)));
        assert_eq!(cache.get(1, &a), None, "depth is part of the key");
        if b[1] != a[1] {
            assert_eq!(cache.get(2, &b), None, "near-equal bits miss");
        }
        cache.clear();
        assert_eq!(cache.get(2, &a), None);
        assert!(!cache.slots.is_empty(), "clear keeps capacity");
    }

    #[test]
    fn cache_survives_growth() {
        let mut cache = BeliefCache::default();
        for i in 0..500usize {
            cache.put(1, &[i as f64, 1.0 - i as f64], -(i as f64), i);
        }
        for i in 0..500usize {
            assert_eq!(
                cache.get(1, &[i as f64, 1.0 - i as f64]),
                Some((-(i as f64), i)),
                "entry {i} lost in growth"
            );
        }
    }

    #[test]
    fn workspace_arena_recycles_buffers() {
        let mut ws = PlanWorkspace::new();
        let a = ws.checkout(4);
        let b = ws.checkout(4);
        assert_eq!(ws.stats().buffers_allocated, 2);
        ws.release(a);
        ws.release(b);
        let c = ws.checkout(4);
        let d = ws.checkout(4);
        assert_eq!(ws.stats().buffers_allocated, 2, "buffers were reused");
        assert_eq!(c.len(), 4);
        assert_eq!(d.len(), 4);
        ws.release(c);
        ws.release(d);
        // A different model size reshapes, reusing the heap block when
        // capacity allows.
        let e = ws.checkout(3);
        assert_eq!(e.len(), 3);
        assert_eq!(ws.stats().buffers_allocated, 2);
    }
}
