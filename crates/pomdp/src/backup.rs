//! Incremental linear-function bound improvement (paper Eq. 7).
//!
//! Given a set of bounding hyperplanes `B` and a belief `π`, one backup
//! constructs a new hyperplane that (weakly) improves the bound at `π`
//! while remaining a valid lower bound everywhere — Hauskrecht's
//! incremental update, the refinement scheme the paper applies to the
//! RA-Bound during bootstrapping and recovery.

use crate::bounds::VectorSetBound;
use crate::{Belief, Error, Pomdp};
use bpr_linalg::dense;
use bpr_mdp::ActionId;

/// The result of one incremental backup at a belief point.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupOutcome {
    /// The freshly constructed hyperplane (before insertion).
    pub vector: Vec<f64>,
    /// Whether the set accepted the vector (it was not pointwise
    /// dominated by an existing hyperplane).
    pub added: bool,
    /// Bound value at the backed-up belief before the update.
    pub value_before: f64,
    /// Bound value at the backed-up belief after the update.
    pub value_after: f64,
    /// The action whose backup vector won at the belief.
    pub action: ActionId,
}

/// Performs one incremental backup of `bounds` at `belief` and inserts
/// the resulting hyperplane into the set (paper Eq. 7).
///
/// For every action `a` it builds the vector
/// `b_a(s) = r(s, a) + β Σ_o Σ_{s'} p(s'|s,a) q(o|s',a) b^{π,a,o}(s')`,
/// where `b^{π,a,o}` is the existing hyperplane that is best for the
/// (unnormalised) successor belief after `(a, o)`; the inserted vector
/// is the `b_a` with the largest value at `belief`.
///
/// The new bound satisfies `V_B'(π) = (L_p V_B)(π) ≥ V_B(π)` whenever
/// the input set satisfies `V_B ≤ L_p V_B` (Property 1(b)), which the
/// RA-Bound does; backups therefore never make the bound worse anywhere
/// and weakly improve it at `π`.
///
/// # Errors
///
/// * [`Error::InvalidBelief`] if `bounds` is empty or has the wrong
///   dimension for the model.
pub fn incremental_backup(
    pomdp: &Pomdp,
    bounds: &mut VectorSetBound,
    belief: &Belief,
    beta: f64,
) -> Result<BackupOutcome, Error> {
    if bounds.is_empty() {
        return Err(Error::InvalidBelief {
            reason: "cannot back up an empty bound set",
        });
    }
    if bounds.n_states() != pomdp.n_states() || belief.n_states() != pomdp.n_states() {
        return Err(Error::InvalidBelief {
            reason: "bound set and belief must match the model dimension",
        });
    }
    let n = pomdp.n_states();
    let value_before = bounds
        .best_vector_quiet(belief.probs())
        .map(|(_, v)| v)
        .unwrap_or(f64::NEG_INFINITY);

    let mut best: Option<(f64, Vec<f64>, ActionId, Vec<usize>)> = None;
    for a in 0..pomdp.n_actions() {
        let action = ActionId::new(a);
        let pred = belief.predict(pomdp, action);
        // For each observation, pick the hyperplane that is best for the
        // unnormalised successor belief τ(s') = q(o|s',a)·pred(s').
        // choice[o] = index into the bound set.
        let nobs = pomdp.n_observations();
        let mut choice = vec![0usize; nobs];
        // Observations actually reachable from the current belief; the
        // choice for an unreachable observation is arbitrary (any
        // hyperplane is sound there) and must not count as usage.
        let mut reachable = vec![false; nobs];
        {
            // τ built observation-by-observation using the sparse
            // observation matrix.
            let mut tau = vec![vec![0.0f64; n]; nobs];
            for s2 in 0..n {
                if pred[s2] == 0.0 {
                    continue;
                }
                for (o, qv) in pomdp.observations_on_entering(s2, action) {
                    tau[o.index()][s2] = qv * pred[s2];
                    reachable[o.index()] |= qv * pred[s2] > 0.0;
                }
            }
            for (o, tau_o) in tau.iter().enumerate() {
                choice[o] = bounds.best_vector_quiet(tau_o).map(|(i, _)| i).unwrap_or(0);
            }
        }
        // w(s') = Σ_o q(o|s',a) · b^{a,o}(s'), then b_a = r(a) + β P(a) w.
        let set_vectors: Vec<&[f64]> = bounds.iter().collect();
        let mut w = vec![0.0f64; n];
        for s2 in 0..n {
            let mut acc = 0.0;
            for (o, qv) in pomdp.observations_on_entering(s2, action) {
                acc += qv * set_vectors[choice[o.index()]][s2];
            }
            w[s2] = acc;
        }
        let pw = pomdp
            .mdp()
            .transition_matrix(action)
            .matvec(&w)
            .expect("dimensions validated above");
        let mut ba = pomdp.mdp().reward_vector(action).to_vec();
        dense::axpy(beta, &pw, &mut ba);

        let value = dense::dot(belief.probs(), &ba);
        if best.as_ref().is_none_or(|(bv, _, _, _)| value > *bv) {
            let support: Vec<usize> = (0..nobs)
                .filter(|&o| reachable[o])
                .map(|o| choice[o])
                .collect();
            best = Some((value, ba, action, support));
        }
    }
    let (value_at_pi, vector, action, support) = best.expect("model has at least one action");
    // The hyperplanes backing the winning action's reachable observation
    // branches are the ones the current policy actually leans on; mark
    // them so finite-storage eviction (paper §4.3) keeps the
    // load-bearing vectors. Recorded before insertion, while indices
    // are stable.
    for i in support {
        bounds.record_use(i);
    }
    let added = bounds.add_vector(vector.clone())?;
    let value_after = bounds
        .best_vector_quiet(belief.probs())
        .map(|(_, v)| v)
        .unwrap_or(f64::NEG_INFINITY);
    debug_assert!(value_after + 1e-9 >= value_at_pi.min(value_before));
    Ok(BackupOutcome {
        vector,
        added,
        value_before,
        value_after,
        action,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ValueBound};
    use bpr_mdp::chain::SolveOpts;

    #[test]
    fn backup_weakly_improves_at_the_point() {
        let p = two_server_notified();
        let mut set = ra_bound(&p, &SolveOpts::default()).unwrap();
        let b = Belief::uniform(3);
        for _ in 0..10 {
            let out = incremental_backup(&p, &mut set, &b, 1.0).unwrap();
            assert!(
                out.value_after + 1e-9 >= out.value_before,
                "backup decreased the bound: {out:?}"
            );
        }
    }

    #[test]
    fn backups_converge_toward_tighter_bound() {
        let p = two_server_notified();
        let mut set = ra_bound(&p, &SolveOpts::default()).unwrap();
        let b = Belief::uniform(3);
        let before = set.value(&b);
        // Back up at several beliefs to let information propagate.
        let points: Vec<Belief> = vec![
            Belief::uniform(3),
            Belief::from_probs(vec![0.9, 0.1, 0.0]).unwrap(),
            Belief::from_probs(vec![0.1, 0.9, 0.0]).unwrap(),
            Belief::from_probs(vec![0.45, 0.45, 0.1]).unwrap(),
        ];
        for _ in 0..50 {
            for pt in &points {
                incremental_backup(&p, &mut set, pt, 1.0).unwrap();
            }
        }
        let after = set.value(&b);
        assert!(
            after > before + 0.1,
            "expected significant improvement, got {before} -> {after}"
        );
        // And the bound stays below the optimum 0 >= V* >= -... : here
        // simply check it never crosses the trivial upper bound 0.
        assert!(after <= 1e-9);
    }

    #[test]
    fn backup_preserves_lower_bound_property_at_vertices() {
        // The bound at vertex beliefs must never exceed the MDP optimum
        // (POMDP value at a known state equals the MDP value... no:
        // the POMDP value at a vertex can be lower than the MDP value
        // because the state becomes uncertain after transitions; but it
        // can never exceed the QMDP upper bound).
        use crate::bounds::qmdp_bound;
        use bpr_mdp::value_iteration::Discount;
        let p = two_server_notified();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        let mut set = ra_bound(&p, &SolveOpts::default()).unwrap();
        let pts: Vec<Belief> = (0..3).map(|s| Belief::point(3, s.into())).collect();
        for _ in 0..30 {
            for pt in &pts {
                incremental_backup(&p, &mut set, pt, 1.0).unwrap();
            }
        }
        for pt in &pts {
            assert!(set.value(pt) <= upper.value(pt) + 1e-7);
        }
    }

    #[test]
    fn backup_on_empty_set_is_an_error() {
        let p = two_server_notified();
        let mut set = VectorSetBound::new(3);
        assert!(matches!(
            incremental_backup(&p, &mut set, &Belief::uniform(3), 1.0),
            Err(Error::InvalidBelief { .. })
        ));
    }

    #[test]
    fn backup_reports_winning_action() {
        let p = two_server_notified();
        let mut set = ra_bound(&p, &SolveOpts::default()).unwrap();
        // Belief certain the fault is Fault(a): backing up should favour
        // Restart(a) (action 0).
        let b = Belief::point(3, 0.into());
        let out = incremental_backup(&p, &mut set, &b, 1.0).unwrap();
        assert_eq!(out.action.index(), 0);
    }

    #[test]
    fn set_growth_is_at_most_one_per_backup() {
        let p = two_server_notified();
        let mut set = ra_bound(&p, &SolveOpts::default()).unwrap();
        let mut prev = set.len();
        for i in 0..20 {
            let b = Belief::from_probs(vec![
                0.5 + 0.4 * ((i as f64) / 20.0),
                0.5 - 0.4 * ((i as f64) / 20.0),
                0.0,
            ])
            .unwrap();
            incremental_backup(&p, &mut set, &b, 1.0).unwrap();
            assert!(set.len() <= prev + 1);
            prev = set.len();
        }
    }
}
