//! Upper bounds on the POMDP value function (QMDP and FIB).
//!
//! The paper's conclusion lists "generation of upper bounds in addition
//! to the lower bounds to facilitate branch and bound techniques" as
//! future work; this module supplies the two classic constructions.
//! Both treat the system as *more* observable than it is, so they can
//! only overestimate the achievable value:
//!
//! * **QMDP** (Littman et al.): solve the fully observable MDP and use
//!   `V(π) = max_a Σ_s π(s)·Q*(s, a)` — one hyperplane per action.
//! * **FIB** (Hauskrecht's fast informed bound): tighten QMDP by folding
//!   one step of observation information into the per-action vectors.

use crate::bounds::VectorSetBound;
use crate::{Error, Pomdp};
use bpr_linalg::dense;
use bpr_mdp::value_iteration::{q_values, Discount, ValueIteration};

/// Computes the QMDP upper bound: per-action hyperplanes
/// `Q*(·, a) = r(·, a) + β P(a) V*_m` from the optimal MDP values.
///
/// Valid for undiscounted recovery models whenever the underlying MDP
/// has a finite optimum (guaranteed by the recovery transforms of
/// `bpr-core`).
///
/// # Errors
///
/// * [`Error::BoundDiverges`] when the underlying MDP value diverges.
/// * Propagates other MDP solver failures.
pub fn qmdp_bound(pomdp: &Pomdp, discount: Discount) -> Result<VectorSetBound, Error> {
    let sol = ValueIteration::new(discount)
        .solve(pomdp.mdp())
        .map_err(|e| match e {
            bpr_mdp::Error::DivergentValue { .. } => Error::BoundDiverges {
                bound: "QMDP upper bound",
            },
            other => Error::Mdp(other),
        })?;
    let q = q_values(pomdp.mdp(), &sol.values, discount.beta());
    let mut set = VectorSetBound::new(pomdp.n_states());
    for qa in q {
        set.add_vector(qa)?;
    }
    Ok(set)
}

/// Options for the FIB iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FibOpts {
    /// Stop when the `ℓ∞` change between sweeps is below this.
    pub tol: f64,
    /// Maximum number of sweeps.
    pub max_iters: usize,
}

impl Default for FibOpts {
    fn default() -> FibOpts {
        FibOpts {
            tol: 1e-9,
            max_iters: 100_000,
        }
    }
}

/// Computes Hauskrecht's fast informed bound: per-action vectors
/// `α_a` satisfying
/// `α_a(s) = r(s,a) + β Σ_o max_{a'} Σ_{s'} p(s'|s,a) q(o|s',a) α_{a'}(s')`.
///
/// FIB dominates QMDP (`V_FIB ≤ V_QMDP` pointwise) while remaining an
/// upper bound on the POMDP value. The iteration starts from the QMDP
/// vectors and decreases monotonically, so it converges whenever QMDP
/// exists on a negative model.
///
/// # Errors
///
/// * [`Error::BoundDiverges`] when QMDP (the starting point) diverges or
///   the sweep budget runs out.
pub fn fib_bound(
    pomdp: &Pomdp,
    discount: Discount,
    opts: &FibOpts,
) -> Result<VectorSetBound, Error> {
    let beta = discount.beta();
    let n = pomdp.n_states();
    let na = pomdp.n_actions();
    // Start from the QMDP vectors (a valid upper bound).
    let qmdp = qmdp_bound(pomdp, discount)?;
    // QMDP may have pruned dominated vectors; rebuild the full per-action
    // set from scratch for the iteration.
    let sol = ValueIteration::new(discount)
        .solve(pomdp.mdp())
        .map_err(Error::Mdp)?;
    let mut alpha = q_values(pomdp.mdp(), &sol.values, beta);
    let _ = qmdp;

    for _ in 0..opts.max_iters {
        let mut next = vec![vec![0.0; n]; na];
        let mut delta = 0.0f64;
        for a in 0..na {
            for s in 0..n {
                let mut acc = pomdp.mdp().reward(s, a);
                // Σ_o max_{a'} Σ_{s'} p(s'|s,a) q(o|s',a) α_{a'}(s').
                // Accumulate w_o(a') = Σ_{s'} p q α, sparse in (s', o).
                let mut w = vec![vec![0.0f64; na]; pomdp.n_observations()];
                for (s2, p) in pomdp.mdp().successors(s, a) {
                    for (o, qv) in pomdp.observations_on_entering(s2, a) {
                        let pq = p * qv;
                        for (a2, row) in alpha.iter().enumerate() {
                            w[o.index()][a2] += pq * row[s2.index()];
                        }
                    }
                }
                for wo in &w {
                    let m = wo.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    if m.is_finite() {
                        acc += beta * m;
                    }
                }
                next[a][s] = acc;
                delta = delta.max((acc - alpha[a][s]).abs());
            }
        }
        alpha = next;
        if delta <= opts.tol {
            let mut set = VectorSetBound::new(n);
            for row in alpha {
                if !dense::all_finite(&row) {
                    return Err(Error::BoundDiverges {
                        bound: "FIB upper bound",
                    });
                }
                set.add_vector(row)?;
            }
            return Ok(set);
        }
    }
    Err(Error::BoundDiverges {
        bound: "FIB upper bound",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ValueBound};
    use crate::Belief;
    use bpr_mdp::chain::SolveOpts;

    #[test]
    fn qmdp_matches_mdp_optimum_at_vertices() {
        let p = two_server_notified();
        let set = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        // At point beliefs, QMDP equals the MDP optimal value.
        let sol = ValueIteration::new(Discount::Undiscounted)
            .solve(p.mdp())
            .unwrap();
        for s in 0..p.n_states() {
            let v = set.value(&Belief::point(p.n_states(), s.into()));
            assert!((v - sol.values[s]).abs() < 1e-9, "state {s}");
        }
    }

    #[test]
    fn qmdp_dominates_ra_bound() {
        let p = two_server_notified();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        for probs in [
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.3, 0.3, 0.4],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            assert!(lower.value(&b) <= upper.value(&b) + 1e-9);
        }
    }

    #[test]
    fn fib_is_between_ra_and_qmdp() {
        let p = two_server_notified();
        let qmdp = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        let fib = fib_bound(&p, Discount::Undiscounted, &FibOpts::default()).unwrap();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        for probs in [
            vec![0.5, 0.5, 0.0],
            vec![0.25, 0.25, 0.5],
            vec![0.9, 0.1, 0.0],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            assert!(
                fib.value(&b) <= qmdp.value(&b) + 1e-7,
                "fib above qmdp at {b:?}"
            );
            assert!(
                ra.value(&b) <= fib.value(&b) + 1e-7,
                "ra above fib at {b:?}"
            );
        }
    }

    #[test]
    fn qmdp_diverges_without_transform() {
        use crate::PomdpBuilder;
        use bpr_mdp::MdpBuilder;
        // Every action loops with cost: even full observability diverges.
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 1);
        pb.observation(0, 0, 0, 1.0);
        let p = pb.build().unwrap();
        assert!(matches!(
            qmdp_bound(&p, Discount::Undiscounted),
            Err(Error::BoundDiverges { .. })
        ));
    }
}
