//! Point-based value iteration over a fixed belief grid.
//!
//! The paper improves its bound at beliefs sampled by simulation
//! (bootstrapping). This module provides the complementary *dense*
//! refinement: incremental backups swept over a regular grid on the
//! belief simplex, in the style of point-based value iteration. On
//! small models the result approaches the optimal value function from
//! below, making it a useful reference against which the cheaper
//! bootstrap refinement can be judged.

use crate::backup::incremental_backup;
use crate::bounds::VectorSetBound;
use crate::{Belief, Error, Pomdp};

/// Options for [`pbvi_refine`].
#[derive(Debug, Clone, PartialEq)]
pub struct PbviOpts {
    /// Grid resolution: belief coordinates are multiples of
    /// `1/resolution`. The grid has `C(resolution + n - 1, n - 1)`
    /// points — keep `resolution` small for models beyond a handful of
    /// states.
    pub resolution: usize,
    /// Number of full sweeps over the grid.
    pub sweeps: usize,
    /// Discount factor (1.0 for recovery models).
    pub beta: f64,
    /// Stop early when a full sweep improves no grid point by more
    /// than this.
    pub tol: f64,
}

impl Default for PbviOpts {
    fn default() -> PbviOpts {
        PbviOpts {
            resolution: 3,
            sweeps: 50,
            beta: 1.0,
            tol: 1e-7,
        }
    }
}

/// Enumerates the regular grid on the `n`-simplex with the given
/// resolution (all compositions of `resolution` into `n` parts).
pub fn simplex_grid(n: usize, resolution: usize) -> Vec<Belief> {
    assert!(n > 0, "simplex needs at least one dimension");
    assert!(resolution > 0, "resolution must be positive");
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fill(&mut out, &mut current, 0, resolution, resolution);
    out
}

fn fill(
    out: &mut Vec<Belief>,
    current: &mut Vec<usize>,
    index: usize,
    remaining: usize,
    resolution: usize,
) {
    if index + 1 == current.len() {
        current[index] = remaining;
        let probs: Vec<f64> = current
            .iter()
            .map(|&c| c as f64 / resolution as f64)
            .collect();
        out.push(Belief::from_probs(probs).expect("grid point is a distribution"));
        return;
    }
    for c in 0..=remaining {
        current[index] = c;
        fill(out, current, index + 1, remaining - c, resolution);
    }
}

/// Refines `bound` in place by sweeping incremental backups over the
/// simplex grid until convergence or the sweep budget runs out.
/// Returns the number of sweeps performed.
///
/// The input must be a valid lower bound satisfying `V_B ≤ L_p V_B`
/// (the RA-Bound qualifies); every backup preserves both properties,
/// so the refined set remains a provable lower bound.
///
/// # Errors
///
/// Propagates backup failures (empty or mismatched bound sets).
pub fn pbvi_refine(
    pomdp: &Pomdp,
    bound: &mut VectorSetBound,
    opts: &PbviOpts,
) -> Result<usize, Error> {
    let grid = simplex_grid(pomdp.n_states(), opts.resolution);
    for sweep in 1..=opts.sweeps {
        let mut max_improvement = 0.0f64;
        for point in &grid {
            let outcome = incremental_backup(pomdp, bound, point, opts.beta)?;
            max_improvement = max_improvement.max(outcome.value_after - outcome.value_before);
        }
        if max_improvement <= opts.tol {
            return Ok(sweep);
        }
    }
    Ok(opts.sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{qmdp_bound, ra_bound, ValueBound};
    use bpr_mdp::chain::SolveOpts;
    use bpr_mdp::value_iteration::Discount;

    #[test]
    fn grid_enumerates_all_compositions() {
        let g = simplex_grid(2, 4);
        assert_eq!(g.len(), 5); // (0,4) (1,3) (2,2) (3,1) (4,0)
        let g = simplex_grid(3, 2);
        assert_eq!(g.len(), 6); // C(4,2)
        for b in &g {
            let sum: f64 = b.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Vertices are present.
        assert!(g.iter().any(|b| b.prob(0.into()) == 1.0));
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        simplex_grid(2, 0);
    }

    #[test]
    fn refinement_tightens_the_ra_bound_toward_qmdp() {
        let p = two_server_notified();
        let mut bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        let probe = Belief::uniform(3);
        let before = bound.value(&probe);
        let sweeps = pbvi_refine(
            &p,
            &mut bound,
            &PbviOpts {
                resolution: 4,
                sweeps: 60,
                ..PbviOpts::default()
            },
        )
        .unwrap();
        let after = bound.value(&probe);
        assert!(
            after > before + 0.1,
            "no meaningful tightening: {before} -> {after}"
        );
        assert!(
            after <= upper.value(&probe) + 1e-7,
            "crossed the upper bound"
        );
        assert!(sweeps >= 1);
        // The refined bound still satisfies Property 1(b) at the grid.
        for b in simplex_grid(3, 3) {
            let v = bound.value(&b);
            let lp = crate::tree::expand(&p, &b, 1, &bound, 1.0).unwrap().value;
            assert!(v <= lp + 1e-7);
        }
    }

    #[test]
    fn refinement_converges_and_stops_early() {
        let p = two_server_notified();
        let mut bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let sweeps = pbvi_refine(
            &p,
            &mut bound,
            &PbviOpts {
                resolution: 3,
                sweeps: 500,
                ..PbviOpts::default()
            },
        )
        .unwrap();
        assert!(sweeps < 500, "never converged");
        // A second refinement changes (almost) nothing.
        let probe = Belief::uniform(3);
        let v1 = bound.value(&probe);
        pbvi_refine(&p, &mut bound, &PbviOpts::default()).unwrap();
        let v2 = bound.value(&probe);
        assert!((v2 - v1).abs() < 1e-5);
    }
}
