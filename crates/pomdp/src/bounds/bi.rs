//! The BI-POMDP lower bound of Washington (paper §3.1 related work).

use crate::bounds::VectorSetBound;
use crate::{Error, Pomdp};
use bpr_mdp::value_iteration::{Discount, Objective, ValueIteration, ViOpts};

/// Computes the BI-POMDP lower bound: the linear combination of the
/// worst-action MDP values `V^BI_m(s)` obtained by solving Eq. 1 with
/// the max replaced by a min.
///
/// As the paper observes, this bound **fails to converge on undiscounted
/// recovery models** — the worst recovery action typically loops while
/// accruing cost — in which case this function reports
/// [`Error::BoundDiverges`]. It exists for discounted models and is
/// included both for comparison benchmarks and as a usable bound when a
/// caller opts into discounting.
///
/// # Errors
///
/// * [`Error::BoundDiverges`] when the worst-action recursion has no
///   finite solution (the typical undiscounted recovery model).
/// * Propagates MDP solver failures otherwise.
pub fn bi_pomdp_bound(pomdp: &Pomdp, discount: Discount) -> Result<VectorSetBound, Error> {
    let vi = ValueIteration::new(discount).with_opts(ViOpts {
        objective: Objective::Minimize,
        // Worst-action values on undiscounted models run away quickly;
        // a modest threshold keeps divergence detection cheap.
        divergence_threshold: 1e9,
        ..ViOpts::default()
    });
    match vi.solve(pomdp.mdp()) {
        Ok(sol) => VectorSetBound::from_vector(sol.values),
        Err(bpr_mdp::Error::DivergentValue { .. }) => Err(Error::BoundDiverges {
            bound: "BI-POMDP bound",
        }),
        Err(e) => Err(Error::Mdp(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_values, ValueBound};
    use crate::Belief;
    use bpr_mdp::chain::SolveOpts;

    #[test]
    fn diverges_on_undiscounted_recovery_model() {
        let p = two_server_notified();
        assert!(matches!(
            bi_pomdp_bound(&p, Discount::Undiscounted),
            Err(Error::BoundDiverges {
                bound: "BI-POMDP bound"
            })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k-sweep iteration is too slow under miri")]
    fn exists_and_is_below_ra_bound_when_discounted() {
        let p = two_server_notified();
        let beta = 0.9;
        let bi = bi_pomdp_bound(&p, Discount::Factor(beta)).unwrap();
        // Discounted RA chain: solve via the paper's averaging on a
        // discounted criterion — compare pointwise on vertex beliefs.
        // The worst action can only be worse than the average action.
        let ra = ra_discounted(&p, beta);
        for (s, &ra_s) in ra.iter().enumerate() {
            let vertex = Belief::point(p.n_states(), s.into());
            assert!(bi.value(&vertex) <= ra_s + 1e-9, "state {s}");
        }
        let _ = ra_values(&p, &SolveOpts::default()); // exercised elsewhere
    }

    /// Discounted random-action values by direct iteration (test helper).
    fn ra_discounted(p: &Pomdp, beta: f64) -> Vec<f64> {
        let m = p.mdp();
        let inv = 1.0 / m.n_actions() as f64;
        let mut v = vec![0.0; m.n_states()];
        for _ in 0..10_000 {
            let mut next = vec![0.0; m.n_states()];
            for (s, out) in next.iter_mut().enumerate() {
                for a in 0..m.n_actions() {
                    let mut acc = m.reward(s, a);
                    for (s2, prob) in m.successors(s, a) {
                        acc += beta * prob * v[s2.index()];
                    }
                    *out += inv * acc;
                }
            }
            v = next;
        }
        v
    }
}
