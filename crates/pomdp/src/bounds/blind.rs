//! Hauskrecht's blind-policy lower bound (paper §3.1 related work).

use crate::bounds::VectorSetBound;
use crate::{Error, Pomdp};
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::policy::blind_values;
use bpr_mdp::value_iteration::Discount;

/// Computes the blind-policy bound: one hyperplane `V^{ba}_m(·, a)` per
/// action, obtained by *blindly* following that action forever, with the
/// POMDP bound being `max_a Σ_s π(s)·V^{ba}_m(s, a)`.
///
/// As the paper notes, on undiscounted recovery models **with recovery
/// notification this bound is infinite for most models** — no single
/// action makes progress from every state — so every per-action value
/// diverges and this function returns [`Error::BoundDiverges`]. On
/// models transformed for systems *without* recovery notification, the
/// terminate action `a_T` always yields a finite value, so the bound
/// exists (possibly with just that one hyperplane).
///
/// Actions whose blind value diverges are simply omitted from the set;
/// the remaining hyperplanes are still valid lower bounds.
///
/// # Errors
///
/// * [`Error::BoundDiverges`] when *no* action has a finite blind value.
/// * Propagates MDP solver failures other than divergence.
pub fn blind_bound(
    pomdp: &Pomdp,
    discount: Discount,
    opts: &SolveOpts,
) -> Result<VectorSetBound, Error> {
    let mut set = VectorSetBound::new(pomdp.n_states());
    for result in blind_values(pomdp.mdp(), discount, opts) {
        match result {
            Ok(values) => {
                set.add_vector(values)?;
            }
            Err(bpr_mdp::Error::DivergentValue { .. }) => {}
            Err(e) => return Err(Error::Mdp(e)),
        }
    }
    if set.is_empty() {
        return Err(Error::BoundDiverges {
            bound: "blind-policy bound",
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ValueBound};
    use crate::{Belief, PomdpBuilder};
    use bpr_mdp::MdpBuilder;

    #[test]
    fn diverges_with_recovery_notification() {
        // Neither Restart(a), Restart(b) nor Observe recovers from both
        // fault states, so all blind values diverge (paper §3.1).
        let p = two_server_notified();
        assert!(matches!(
            blind_bound(&p, Discount::Undiscounted, &SolveOpts::default()),
            Err(Error::BoundDiverges { .. })
        ));
    }

    /// Two-server model with a terminate action (Fig. 2b, without
    /// recovery notification): state 3 = s_T, action 3 = a_T.
    fn two_server_terminated() -> Pomdp {
        let top = 4.0; // operator response time in model steps
        let mut mb = MdpBuilder::new(4, 4);
        // Restart/Observe dynamics as in Fig. 1a; Null (state 2) costs
        // 0.5 per restart (no notification: restarts in Null hurt).
        mb.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        mb.transition(2, 0, 2, 1.0).reward(2, 0, -0.5);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        mb.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        mb.transition(2, 1, 2, 1.0).reward(2, 1, -0.5);
        mb.transition(0, 2, 0, 1.0).reward(0, 2, -1.0);
        mb.transition(1, 2, 1, 1.0).reward(1, 2, -1.0);
        mb.transition(2, 2, 2, 1.0).reward(2, 2, 0.0);
        // Terminate action a_T: everything to s_T; termination rewards
        // r(s, a_T) = rate(s) * top.
        mb.transition(0, 3, 3, 1.0).reward(0, 3, -top);
        mb.transition(1, 3, 3, 1.0).reward(1, 3, -top);
        mb.transition(2, 3, 3, 1.0).reward(2, 3, 0.0);
        // s_T absorbing and free.
        for a in 0..4 {
            mb.transition(3, a, 3, 1.0);
        }
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 1);
        for s in 0..4 {
            pb.observation_all_actions(s, 0, 1.0);
        }
        pb.build().unwrap()
    }

    #[test]
    fn terminate_action_gives_finite_blind_bound() {
        let p = two_server_terminated();
        let set = blind_bound(&p, Discount::Undiscounted, &SolveOpts::default()).unwrap();
        // Only a_T converges.
        assert_eq!(set.len(), 1);
        let b = Belief::point(4, 0.into());
        assert!((set.value(&b) + 4.0).abs() < 1e-9);
        // And it is a weaker (or equal) bound than the RA-Bound at the
        // fault vertex? Not necessarily pointwise — just check both exist.
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        assert!(ra.value(&b).is_finite());
    }

    #[test]
    fn discounted_blind_bound_has_all_actions() {
        let p = two_server_notified();
        let set = blind_bound(&p, Discount::Factor(0.9), &SolveOpts::default()).unwrap();
        // All three actions converge under discounting; dominated
        // hyperplanes may be pruned but at least one must survive.
        assert!(!set.is_empty());
        assert!(set.len() <= 3);
        assert!(set.value(&Belief::uniform(3)).is_finite());
    }
}
