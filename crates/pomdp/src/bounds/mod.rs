//! Value-function bounds for POMDPs.
//!
//! All bounds are functions of the belief state. Lower bounds
//! underestimate the optimal value `V*_p(π)` (and therefore
//! *overestimate* recovery cost); upper bounds do the reverse. The
//! paper's central object is the **RA-Bound** ([`ra_bound`]); the
//! BI-POMDP ([`bi_pomdp_bound`]) and blind-policy ([`blind_bound`])
//! bounds are the prior art it is compared against (§3.1), and the
//! QMDP/FIB upper bounds ([`qmdp_bound`], [`fib_bound`]) realise the
//! "generation of upper bounds" extension from the paper's conclusion.

mod bi;
mod blind;
mod pbvi;
pub(crate) mod ra;
mod upper;
mod vector_set;

pub use bi::bi_pomdp_bound;
pub use blind::blind_bound;
pub use pbvi::{pbvi_refine, simplex_grid, PbviOpts};
pub use ra::{ra_bound, ra_values};
pub use upper::{fib_bound, qmdp_bound, FibOpts};
pub use vector_set::VectorSetBound;

use crate::Belief;

/// A real-valued function of the belief state used as a bound on the
/// POMDP value function.
///
/// Implementors promise nothing about *which side* of the value function
/// they sit on; that is a property of how the object was constructed
/// (e.g. [`ra_bound`] returns lower bounds, [`qmdp_bound`] upper
/// bounds).
pub trait ValueBound {
    /// Evaluates the bound at a belief state.
    fn value(&self, belief: &Belief) -> f64;

    /// Evaluates the bound at a belief given as a raw (already
    /// normalised) probability slice.
    ///
    /// Must return exactly the same value as [`ValueBound::value`] on
    /// the [`Belief`] wrapping `weights`. The default implementation
    /// does just that (allocating a temporary belief); bound types on
    /// hot planning paths override it to evaluate allocation-free —
    /// this is what lets the tree kernel score leaves (Eq. 6) straight
    /// from its scratch buffers.
    fn value_weights(&self, weights: &[f64]) -> f64 {
        self.value(&Belief::from_raw(weights.to_vec()))
    }
}

/// A constant bound, independent of the belief.
///
/// `ConstantBound(0.0)` is the trivial upper bound for negative models
/// (all rewards ≤ 0) used on the y-axis of the paper's Figure 5(a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantBound(pub f64);

impl ValueBound for ConstantBound {
    fn value(&self, _belief: &Belief) -> f64 {
        self.0
    }

    fn value_weights(&self, _weights: &[f64]) -> f64 {
        self.0
    }
}

impl<B: ValueBound + ?Sized> ValueBound for &B {
    fn value(&self, belief: &Belief) -> f64 {
        (**self).value(belief)
    }

    fn value_weights(&self, weights: &[f64]) -> f64 {
        (**self).value_weights(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bound_ignores_belief() {
        let c = ConstantBound(-3.5);
        assert_eq!(c.value(&Belief::uniform(2)), -3.5);
        assert_eq!(c.value(&Belief::uniform(17)), -3.5);
    }

    #[test]
    fn references_forward_value() {
        let c = ConstantBound(1.0);
        let r: &dyn ValueBound = &c;
        assert_eq!(r.value(&Belief::uniform(3)), 1.0);
        assert_eq!(c.value(&Belief::uniform(3)), 1.0);
    }
}
