//! Piecewise-linear bounds represented as sets of hyperplanes.

use crate::bounds::ValueBound;
use crate::{Belief, Error};
use bpr_linalg::dense;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide generation source: every hyperplane-set mutation draws
/// a fresh value, so no two distinct bound states — even across clones
/// mutating independently — ever share a generation. The counter's
/// allocation order is scheduling-dependent, but generations only gate
/// cross-decision cache reuse (exact-hit lookups return bit-identical
/// values either way), so decisions never depend on it.
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// A piecewise-linear convex bound `V_B(π) = max_{b ∈ B} b · π`
/// (paper Eq. 6).
///
/// Each vector `b` is a hyperplane over the belief simplex; the bound
/// value at a belief is the best hyperplane there. The RA-Bound starts
/// as a single hyperplane and the incremental backup of
/// [`crate::backup`] grows the set.
///
/// # Examples
///
/// ```
/// use bpr_pomdp::{Belief, bounds::{ValueBound, VectorSetBound}};
///
/// # fn main() -> Result<(), bpr_pomdp::Error> {
/// let mut set = VectorSetBound::new(2);
/// set.add_vector(vec![-2.0, 0.0])?;
/// set.add_vector(vec![0.0, -2.0])?;
/// let mid = Belief::uniform(2);
/// assert_eq!(set.value(&mid), -1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VectorSetBound {
    n_states: usize,
    vectors: Vec<Vec<f64>>,
    /// How many times each vector was the argmax in `best_vector`.
    /// Used by finite-storage eviction (paper §4.3).
    usage: Vec<u64>,
    /// Epoch token for cross-decision caches: changes exactly when the
    /// hyperplane set changes (adds or evictions; usage-counter updates
    /// leave values untouched and keep the generation).
    generation: u64,
}

/// Equality compares the bound's mathematical content (dimension,
/// hyperplanes, usage); the cache-epoch generation is an identity
/// token, not content, so content-equal bounds compare equal even
/// when built through different mutation histories.
impl PartialEq for VectorSetBound {
    fn eq(&self, other: &VectorSetBound) -> bool {
        self.n_states == other.n_states
            && self.vectors == other.vectors
            && self.usage == other.usage
    }
}

impl VectorSetBound {
    /// An empty set over `n_states`-dimensional beliefs.
    ///
    /// An empty set evaluates to `-∞`; add at least one vector before
    /// using it as a leaf bound.
    ///
    /// # Panics
    ///
    /// Panics if `n_states == 0`.
    pub fn new(n_states: usize) -> VectorSetBound {
        assert!(n_states > 0, "bound needs at least one state");
        VectorSetBound {
            n_states,
            vectors: Vec::new(),
            usage: Vec::new(),
            generation: next_generation(),
        }
    }

    /// The cache-epoch generation: a process-unique token that changes
    /// exactly when the hyperplane set changes. Two bounds (or two
    /// snapshots of one bound) with equal generations are guaranteed to
    /// hold bit-identical hyperplanes, so cross-decision caches keyed
    /// on `(model fingerprint, generation)` reuse entries soundly.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A set seeded with one hyperplane.
    ///
    /// # Errors
    ///
    /// Same as [`VectorSetBound::add_vector`].
    pub fn from_vector(vector: Vec<f64>) -> Result<VectorSetBound, Error> {
        let mut set = VectorSetBound::new(vector.len().max(1));
        set.add_vector(vector)?;
        Ok(set)
    }

    /// Dimensionality of the underlying state space.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of hyperplanes currently in the set.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the set holds no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Iterates over the hyperplanes.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.vectors.iter().map(Vec::as_slice)
    }

    /// The hyperplane at `index`, if any (indices are parallel to
    /// [`VectorSetBound::iter`] and [`VectorSetBound::usage_counts`];
    /// policy-graph analyzers use this to name the supporting vector a
    /// decision rested on).
    pub fn vector(&self, index: usize) -> Option<&[f64]> {
        self.vectors.get(index).map(Vec::as_slice)
    }

    /// Adds a hyperplane unless it is pointwise dominated by an existing
    /// one; removes existing hyperplanes the new one pointwise
    /// dominates. Returns whether the vector was actually added.
    ///
    /// Pointwise domination (`b ≤ b'` everywhere) is a cheap sufficient
    /// condition for uselessness; vectors that are dominated only in
    /// combination are kept, matching the paper's remark that extra
    /// hyperplanes "can be discarded" but need not be.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBelief`] if the vector has the wrong
    /// length or non-finite entries.
    pub fn add_vector(&mut self, vector: Vec<f64>) -> Result<bool, Error> {
        if vector.len() != self.n_states {
            return Err(Error::InvalidBelief {
                reason: "bound vector length must equal the number of states",
            });
        }
        if !dense::all_finite(&vector) {
            return Err(Error::InvalidBelief {
                reason: "bound vector entries must be finite",
            });
        }
        const EPS: f64 = 1e-12;
        // Dominated by an existing vector?
        if self
            .vectors
            .iter()
            .any(|b| vector.iter().zip(b).all(|(v, e)| *v <= *e + EPS))
        {
            return Ok(false);
        }
        // Drop existing vectors the new one dominates.
        let keep: Vec<bool> = self
            .vectors
            .iter()
            .map(|b| !b.iter().zip(&vector).all(|(e, v)| *e <= *v + EPS))
            .collect();
        let mut idx = 0;
        self.vectors.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        let mut idx = 0;
        self.usage.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self.vectors.push(vector);
        self.usage.push(0);
        self.generation = next_generation();
        Ok(true)
    }

    /// The best hyperplane at a belief: `(index, value)`.
    ///
    /// Records a usage hit for the winner (interior statistics used by
    /// [`VectorSetBound::evict_to`]). Returns `None` on an empty set.
    ///
    /// # Panics
    ///
    /// Panics if the belief dimension differs from the set's.
    pub fn best_vector(&mut self, belief: &Belief) -> Option<(usize, f64)> {
        let best = self.best_vector_quiet(belief.probs())?;
        self.usage[best.0] += 1;
        Some(best)
    }

    /// The best hyperplane at a (possibly unnormalised) weight vector,
    /// without recording usage.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the set's dimension.
    pub fn best_vector_quiet(&self, weights: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(weights.len(), self.n_states, "weight length mismatch");
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, b)| (i, dense::dot(weights, b)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bound values"))
    }

    /// Records a usage hit for the vector at `index` (interior
    /// statistics used by [`VectorSetBound::evict_to`]). Callers that
    /// select vectors through [`VectorSetBound::best_vector_quiet`]
    /// use this to mark the choices that actually supported a decision.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn record_use(&mut self, index: usize) {
        self.usage[index] += 1;
    }

    /// The per-hyperplane usage counters, parallel to [`VectorSetBound::iter`].
    ///
    /// Eviction under a vector cap is driven by these counters, so
    /// durable checkpoints persist them alongside the hyperplanes —
    /// dropping them would make a resumed run evict differently from an
    /// uninterrupted one.
    pub fn usage_counts(&self) -> &[u64] {
        &self.usage
    }

    /// Overwrites the usage counters (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBelief`] when `counts.len()` differs from
    /// the number of hyperplanes.
    pub fn set_usage_counts(&mut self, counts: &[u64]) -> Result<(), Error> {
        if counts.len() != self.vectors.len() {
            return Err(Error::InvalidBelief {
                reason: "usage counter length must equal the number of bound vectors",
            });
        }
        self.usage.copy_from_slice(counts);
        Ok(())
    }

    /// Shrinks the set to at most `max_len` hyperplanes by discarding
    /// the least-used ones (the finite-storage strategy suggested in
    /// paper §4.3). The most recently added vector is always kept.
    ///
    /// Returns the number of vectors evicted.
    pub fn evict_to(&mut self, max_len: usize) -> usize {
        if self.vectors.len() <= max_len || max_len == 0 {
            return 0;
        }
        let last = self.vectors.len() - 1;
        let mut order: Vec<usize> = (0..self.vectors.len()).collect();
        // Most used first; the newest vector is pinned to the front.
        order.sort_by_key(|&i| (i != last, std::cmp::Reverse(self.usage[i])));
        order.truncate(max_len);
        // Survivors keep their original relative order, so marking them
        // and retaining in place drops the losers without cloning (or
        // even moving the heap storage of) any surviving hyperplane.
        let mut keep = vec![false; self.vectors.len()];
        for &i in &order {
            keep[i] = true;
        }
        let evicted = self.vectors.len() - order.len();
        let mut idx = 0;
        self.vectors.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        let mut idx = 0;
        self.usage.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self.generation = next_generation();
        evicted
    }
}

impl VectorSetBound {
    /// Serialises the hyperplanes as tab-separated text (one vector per
    /// line, full `f64` precision). Usage counts are not persisted.
    ///
    /// Lets a deployment bootstrap once off-line and ship the refined
    /// bound with the controller.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for b in &self.vectors {
            let line: Vec<String> = b.iter().map(|v| format!("{v:?}")).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Parses the output of [`VectorSetBound::to_tsv`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBelief`] for empty input, ragged rows,
    /// or unparseable numbers.
    pub fn from_tsv(n_states: usize, text: &str) -> Result<VectorSetBound, Error> {
        let mut set = VectorSetBound::new(n_states);
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let vector: Result<Vec<f64>, _> =
                line.split('\t').map(|t| t.trim().parse::<f64>()).collect();
            let vector = vector.map_err(|_| Error::InvalidBelief {
                reason: "unparseable bound vector entry",
            })?;
            set.add_vector(vector)?;
        }
        if set.is_empty() {
            return Err(Error::InvalidBelief {
                reason: "serialised bound contained no vectors",
            });
        }
        Ok(set)
    }
}

impl ValueBound for VectorSetBound {
    /// `max_{b ∈ B} b · π`, or `-∞` for an empty set.
    fn value(&self, belief: &Belief) -> f64 {
        self.best_vector_quiet(belief.probs())
            .map_or(f64::NEG_INFINITY, |(_, v)| v)
    }

    /// Same maximisation straight off the weight slice — the planning
    /// kernel's allocation-free leaf evaluation.
    fn value_weights(&self, weights: &[f64]) -> f64 {
        self.best_vector_quiet(weights)
            .map_or(f64::NEG_INFINITY, |(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_negative_infinity() {
        let set = VectorSetBound::new(2);
        assert!(set.is_empty());
        assert_eq!(set.value(&Belief::uniform(2)), f64::NEG_INFINITY);
    }

    #[test]
    fn value_is_max_over_hyperplanes() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-1.0, -3.0]).unwrap();
        set.add_vector(vec![-3.0, -1.0]).unwrap();
        assert_eq!(set.len(), 2);
        let b0 = Belief::point(2, 0.into());
        let b1 = Belief::point(2, 1.into());
        assert_eq!(set.value(&b0), -1.0);
        assert_eq!(set.value(&b1), -1.0);
        assert_eq!(set.value(&Belief::uniform(2)), -2.0);
    }

    #[test]
    fn dominated_vectors_are_rejected() {
        let mut set = VectorSetBound::new(2);
        assert!(set.add_vector(vec![-1.0, -1.0]).unwrap());
        assert!(!set.add_vector(vec![-2.0, -2.0]).unwrap());
        assert_eq!(set.len(), 1);
        // Equal vectors are "dominated" too.
        assert!(!set.add_vector(vec![-1.0, -1.0]).unwrap());
    }

    #[test]
    fn dominating_vector_evicts_old_ones() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-3.0, -3.0]).unwrap();
        set.add_vector(vec![-4.0, -1.0]).unwrap();
        assert!(set.add_vector(vec![-2.0, -1.0]).unwrap());
        // [-2,-1] dominates both previous vectors.
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap(), &[-2.0, -1.0]);
    }

    #[test]
    fn wrong_length_vector_is_rejected() {
        let mut set = VectorSetBound::new(3);
        assert!(set.add_vector(vec![0.0, 0.0]).is_err());
        assert!(set.add_vector(vec![0.0, f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn best_vector_tracks_usage_and_eviction_respects_it() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-1.0, -5.0]).unwrap();
        set.add_vector(vec![-5.0, -1.0]).unwrap();
        set.add_vector(vec![-2.5, -2.5]).unwrap();
        let b0 = Belief::point(2, 0.into());
        for _ in 0..5 {
            let (i, v) = set.best_vector(&b0).unwrap();
            assert_eq!(i, 0);
            assert_eq!(v, -1.0);
        }
        // Evicting to 2 keeps the most-used (index 0) and the newest.
        let evicted = set.evict_to(2);
        assert_eq!(evicted, 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.value(&b0), -1.0);
        let b1 = Belief::point(2, 1.into());
        assert_eq!(set.value(&b1), -2.5);
    }

    #[test]
    fn tsv_roundtrip_preserves_values() {
        let mut set = VectorSetBound::new(3);
        set.add_vector(vec![-1.5, -2.25, 0.0]).unwrap();
        set.add_vector(vec![-3.0, -0.125, -1e-300]).unwrap();
        let text = set.to_tsv();
        let parsed = VectorSetBound::from_tsv(3, &text).unwrap();
        assert_eq!(parsed.len(), set.len());
        for probs in [[1.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.2, 0.3, 0.5]] {
            let b = Belief::from_probs(probs.to_vec()).unwrap();
            assert_eq!(parsed.value(&b), set.value(&b));
        }
    }

    #[test]
    fn tsv_rejects_garbage() {
        assert!(VectorSetBound::from_tsv(2, "").is_err());
        assert!(VectorSetBound::from_tsv(2, "1.0\tx\n").is_err());
        assert!(VectorSetBound::from_tsv(2, "1.0\n").is_err()); // ragged
    }

    #[test]
    fn usage_counters_roundtrip_through_accessors() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-1.0, -5.0]).unwrap();
        set.add_vector(vec![-5.0, -1.0]).unwrap();
        set.best_vector(&Belief::point(2, 0.into())).unwrap();
        assert_eq!(set.usage_counts(), &[1, 0]);
        set.set_usage_counts(&[3, 9]).unwrap();
        assert_eq!(set.usage_counts(), &[3, 9]);
        assert!(set.set_usage_counts(&[1]).is_err());
    }

    #[test]
    fn evict_retains_surviving_vectors_in_place() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-1.0, -5.0]).unwrap();
        set.add_vector(vec![-5.0, -1.0]).unwrap();
        set.add_vector(vec![-4.0, -2.0]).unwrap();
        set.add_vector(vec![-2.5, -2.5]).unwrap();
        for _ in 0..3 {
            set.best_vector(&Belief::point(2, 0.into())).unwrap();
        }
        set.best_vector(&Belief::point(2, 1.into())).unwrap();
        // Survivors: index 0 (most used), index 1 (next), index 3
        // (newest, pinned). Record the heap addresses of their storage.
        let ptr0 = set.iter().next().unwrap().as_ptr();
        let ptr1 = set.iter().nth(1).unwrap().as_ptr();
        let ptr3 = set.iter().nth(3).unwrap().as_ptr();
        let evicted = set.evict_to(3);
        assert_eq!(evicted, 1);
        assert_eq!(set.len(), 3);
        let survivors: Vec<&[f64]> = set.iter().collect();
        assert_eq!(survivors[0], &[-1.0, -5.0]);
        assert_eq!(survivors[1], &[-5.0, -1.0]);
        assert_eq!(survivors[2], &[-2.5, -2.5]);
        // Values preserved and the vector contents were not reallocated:
        // each survivor still lives at its original heap address.
        assert_eq!(survivors[0].as_ptr(), ptr0);
        assert_eq!(survivors[1].as_ptr(), ptr1);
        assert_eq!(survivors[2].as_ptr(), ptr3);
        assert_eq!(set.usage_counts(), &[3, 1, 0]);
    }

    #[test]
    fn value_weights_matches_value() {
        let mut set = VectorSetBound::new(2);
        set.add_vector(vec![-1.0, -3.0]).unwrap();
        set.add_vector(vec![-3.0, -1.0]).unwrap();
        let b = Belief::from_probs(vec![0.25, 0.75]).unwrap();
        assert_eq!(set.value_weights(b.probs()), set.value(&b));
        assert_eq!(
            VectorSetBound::new(2).value_weights(&[0.5, 0.5]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn generation_changes_only_when_hyperplanes_change() {
        let mut set = VectorSetBound::new(2);
        let g0 = set.generation();
        set.add_vector(vec![-1.0, -5.0]).unwrap();
        let g1 = set.generation();
        assert_ne!(g0, g1);
        // A dominated vector is not added: no epoch change.
        assert!(!set.add_vector(vec![-2.0, -6.0]).unwrap());
        assert_eq!(set.generation(), g1);
        // Usage bookkeeping does not change values: no epoch change.
        set.best_vector(&Belief::point(2, 0.into())).unwrap();
        set.set_usage_counts(&[7]).unwrap();
        assert_eq!(set.generation(), g1);
        // A no-op eviction keeps the epoch; a real one bumps it.
        assert_eq!(set.evict_to(5), 0);
        assert_eq!(set.generation(), g1);
        set.add_vector(vec![-5.0, -1.0]).unwrap();
        set.add_vector(vec![-2.5, -2.5]).unwrap();
        let g2 = set.generation();
        assert_eq!(set.evict_to(2), 1);
        assert_ne!(set.generation(), g2);
        // Clones share content and generation until one mutates.
        let mut clone = set.clone();
        assert_eq!(clone.generation(), set.generation());
        assert_eq!(clone, set);
        clone.add_vector(vec![0.0, 0.0]).unwrap();
        assert_ne!(clone.generation(), set.generation());
        // Equality ignores the generation token.
        let a = VectorSetBound::from_vector(vec![-1.0, -2.0]).unwrap();
        let b = VectorSetBound::from_vector(vec![-1.0, -2.0]).unwrap();
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b);
    }

    #[test]
    fn evict_is_noop_when_small() {
        let mut set = VectorSetBound::from_vector(vec![0.0, 0.0]).unwrap();
        assert_eq!(set.evict_to(5), 0);
        assert_eq!(set.evict_to(0), 0);
        assert_eq!(set.len(), 1);
    }
}
