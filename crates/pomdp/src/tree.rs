//! Finite-depth Max-Avg tree expansion (paper Fig. 1(b)).
//!
//! The online controller chooses actions by unrolling the POMDP dynamic
//! programming recursion (Eq. 2) to a small depth from the current
//! belief, evaluating a bound at the leaves, and executing the action
//! that maximises the root value. With a *lower* bound at the leaves the
//! controller inherits the termination guarantees of paper §4.2.
//!
//! # The fused kernel
//!
//! Expansion runs on precomputed fused posterior operators
//! `τ_{a,o} = diag(q(o|·,a)) ∘ P_aᵀ`: one `P_aᵀ π` transpose SpMV per
//! `(node, action)` ([`bpr_linalg::CsrMatrix::matvec_transpose_into`])
//! followed by one sparse diagonal scale per observation
//! ([`bpr_linalg::CsrMatrix::row_scaled_into`] over
//! [`Pomdp::observation_transpose`]). Because the legacy scatter in
//! [`Belief::successors`] writes each `(o, s')` cell exactly once as the
//! single product `q(o|s',a) · pred(s')`, the fused path produces
//! bit-identical `γ` values, posteriors, and branch order — it only
//! removes the per-node rebuild of the `|O|`-slot scatter table. All
//! scratch lives in a caller-provided [`PlanWorkspace`], so steady-state
//! decisions allocate nothing; the pre-fusion implementation is kept
//! verbatim in [`legacy`] as the equivalence/baseline reference.

use crate::bounds::ValueBound;
use crate::plan::{BbEntry, CacheEpoch, PlanWorkspace};
use crate::{Belief, Error, ObservationId, Pomdp};
use bpr_linalg::dense;
use bpr_mdp::ActionId;
use bpr_par::WorkPool;

/// The decision produced by a tree expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The maximising action at the root.
    pub action: ActionId,
    /// The root value under the expansion.
    pub value: f64,
    /// Per-action root values (`q_values[a]` for action `a`).
    pub q_values: Vec<f64>,
    /// Number of belief nodes evaluated (leaves + interior).
    pub nodes_expanded: usize,
}

impl Default for Decision {
    fn default() -> Decision {
        Decision {
            action: ActionId::new(0),
            value: f64::NEG_INFINITY,
            q_values: Vec::new(),
            nodes_expanded: 0,
        }
    }
}

fn depth_zero_error() -> Error {
    Error::IndexOutOfBounds {
        what: "tree depth (must be >= 1)",
        index: 0,
        bound: usize::MAX,
    }
}

/// Expands the recursion to `depth` and returns the best root action.
///
/// `depth` counts action layers: `depth = 1` is the paper's "tree depth
/// one" — choose an action, average over the surviving observation
/// branches, and evaluate the leaf bound at the successor beliefs.
/// `depth = 0` is rejected because it makes no decision.
///
/// Observation branches with probability below `gamma_cutoff` are
/// pruned (their contribution to the average is bounded by the cutoff
/// times the worst bound value); `0.0` disables pruning of everything
/// except genuinely impossible observations.
///
/// # Errors
///
/// * [`Error::IndexOutOfBounds`] if `depth == 0`.
pub fn expand(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
) -> Result<Decision, Error> {
    expand_with_cutoff(pomdp, belief, depth, leaf, beta, 0.0)
}

/// [`expand`] with an explicit observation-probability cutoff.
///
/// Convenience wrapper over [`expand_with_workspace`] that pays one
/// workspace construction per call; controllers making repeated
/// decisions should hold a [`PlanWorkspace`] instead.
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_with_cutoff(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
) -> Result<Decision, Error> {
    let mut ws = PlanWorkspace::new();
    expand_with_workspace(pomdp, belief, depth, leaf, beta, gamma_cutoff, &mut ws)?;
    Ok(ws.take_decision())
}

/// [`expand_with_cutoff`] writing into a reusable [`PlanWorkspace`].
///
/// The result lands in [`PlanWorkspace::decision`]. After the first
/// (warm-up) decision a workspace-backed expansion performs no heap
/// allocation. Values, tie-breaking, and `nodes_expanded` are exactly
/// those of [`legacy::expand_with_cutoff`].
///
/// # Errors
///
/// Same as [`expand`].
#[allow(clippy::too_many_arguments)]
pub fn expand_with_workspace(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    ws: &mut PlanWorkspace,
) -> Result<(), Error> {
    if depth == 0 {
        return Err(depth_zero_error());
    }
    ws.begin();
    expand_root(pomdp, belief, depth, leaf, beta, gamma_cutoff, ws);
    Ok(())
}

/// [`expand_with_workspace`] under an explicit
/// [`CacheEpoch`](crate::plan::CacheEpoch): the workspace's
/// transposition cache survives **across decisions** for as long as
/// the epoch — `(model fingerprint, bound generation, β bits, cutoff
/// bits)` — is unchanged, so consecutive decisions on the same
/// incident replay shared subtrees instead of re-expanding them.
///
/// The caller is responsible for the epoch naming every input the
/// cached values depend on: build it from
/// [`Pomdp::fingerprint`](crate::Pomdp::fingerprint), the leaf bound's
/// [`generation`](crate::bounds::VectorSetBound::generation), and the
/// exact `beta`/`gamma_cutoff` bits passed here. Under that contract
/// the produced [`Decision`] is bit-identical to
/// [`expand_with_workspace`] — cache entries are keyed on exact belief
/// bits and replay deterministic values (see `crate::plan` docs).
///
/// # Errors
///
/// Same as [`expand`].
#[allow(clippy::too_many_arguments)]
pub fn expand_with_workspace_epoch(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    epoch: CacheEpoch,
    ws: &mut PlanWorkspace,
) -> Result<(), Error> {
    if depth == 0 {
        return Err(depth_zero_error());
    }
    ws.begin_epoch(epoch);
    expand_root(pomdp, belief, depth, leaf, beta, gamma_cutoff, ws);
    Ok(())
}

/// Shared root loop of the plain workspace expansions (the caller has
/// already validated `depth` and opened the decision on `ws`).
fn expand_root(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    ws: &mut PlanWorkspace,
) {
    ws.decision_clear();
    let kernel = Kernel {
        pomdp,
        leaf,
        beta,
        cutoff: gamma_cutoff,
        use_cache: true,
        budget: usize::MAX,
    };
    let mut nodes = 0usize;
    // Under epoch semantics the root's per-action values are cached
    // too, keyed `(depth, action, belief)`: repeated decisions on the
    // same belief then skip even the root-level τ computations, which
    // dominate at depth 1 on large models. A hit replays the exact q
    // and node count the subtree would have produced, so the Decision
    // stays bit-identical. Without an epoch the cache is cleared per
    // decision and root entries could never hit, so skip the traffic.
    let cache_root = ws.has_epoch();
    for a in 0..pomdp.n_actions() {
        if cache_root {
            if let Some((q, sub)) = ws.root_cache_get(depth, a, belief.probs()) {
                nodes += sub;
                ws.push_q(q);
                continue;
            }
        }
        let before = nodes;
        let q = kernel
            .action_q(ws, belief.probs(), a, depth, &mut nodes)
            .expect("unbudgeted expansion never aborts");
        if cache_root {
            ws.root_cache_put(depth, a, belief.probs(), q, nodes - before);
        }
        ws.push_q(q);
    }
    let (best_a, best_q) = argmax_last(ws.q_values());
    ws.finish_decision(ActionId::new(best_a), best_q, nodes);
}

/// Root-parallel [`expand_with_cutoff`]: the root actions are expanded
/// concurrently over a [`WorkPool`], each worker holding its own
/// private [`PlanWorkspace`].
///
/// The returned [`Decision`] is **bit-identical** to the sequential
/// path at every pool width: each root action's subtree value is a pure
/// function of `(belief, action, depth)`, transposition-cache hits
/// replay the exact value and node count the subtree would have
/// expanded (so per-action node counts are independent of how actions
/// are grouped onto workers or caches), and the root argmax runs over
/// the index-ordered q-values exactly as in the sequential code.
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_par(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &(dyn ValueBound + Sync),
    beta: f64,
    gamma_cutoff: f64,
    pool: &WorkPool,
) -> Result<Decision, Error> {
    if depth == 0 {
        return Err(depth_zero_error());
    }
    let results: Vec<(f64, usize)> =
        pool.map_indices_with(pomdp.n_actions(), PlanWorkspace::new, |ws, a| {
            let kernel = Kernel {
                pomdp,
                leaf: leaf as &dyn ValueBound,
                beta,
                cutoff: gamma_cutoff,
                use_cache: true,
                budget: usize::MAX,
            };
            let mut nodes = 0usize;
            let q = kernel
                .action_q(ws, belief.probs(), a, depth, &mut nodes)
                .expect("unbudgeted expansion never aborts");
            (q, nodes)
        });
    let q_values: Vec<f64> = results.iter().map(|&(q, _)| q).collect();
    let nodes_expanded = results.iter().map(|&(_, n)| n).sum();
    let (best_a, best_q) = argmax_last(&q_values);
    Ok(Decision {
        action: ActionId::new(best_a),
        value: best_q,
        q_values,
        nodes_expanded,
    })
}

/// Outcome of one budgeted (anytime) expansion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedPass {
    /// Nodes expanded before finishing or aborting.
    pub nodes_spent: usize,
    /// Whether the pass finished within its budget. When `true` the
    /// per-action root values are in [`PlanWorkspace::q_scratch`].
    pub completed: bool,
}

/// One depth-`depth` expansion pass that aborts as soon as more than
/// `budget` nodes have been expanded (the anytime controller's
/// iterative-deepening primitive).
///
/// The transposition cache is **not** used here: a budgeted pass's
/// abort point must depend only on the literal expansion order, so a
/// resumed or re-run pass dies at exactly the same node. Node
/// accounting matches the unbudgeted path: each belief node costs 1,
/// counted before the budget check.
///
/// # Errors
///
/// Same as [`expand`].
#[allow(clippy::too_many_arguments)]
pub fn expand_budgeted(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    budget: usize,
    ws: &mut PlanWorkspace,
) -> Result<BudgetedPass, Error> {
    if depth == 0 {
        return Err(depth_zero_error());
    }
    let kernel = Kernel {
        pomdp,
        leaf,
        beta,
        cutoff: gamma_cutoff,
        use_cache: false,
        budget,
    };
    ws.q_clear();
    let mut nodes = 0usize;
    for a in 0..pomdp.n_actions() {
        match kernel.action_q(ws, belief.probs(), a, depth, &mut nodes) {
            Some(q) => ws.q_push(q),
            None => {
                return Ok(BudgetedPass {
                    nodes_spent: nodes,
                    completed: false,
                })
            }
        }
    }
    Ok(BudgetedPass {
        nodes_spent: nodes,
        completed: true,
    })
}

/// Expands the recursion with **branch-and-bound pruning**: an upper
/// bound orders the actions and prunes those whose optimistic value
/// cannot beat the best action found so far — the use of upper bounds
/// the paper's conclusion proposes as future work.
///
/// Produces exactly the same decision values as
/// [`expand_with_cutoff`] (pruned actions are provably not maximisers;
/// their reported q-value is their upper estimate), typically expanding
/// far fewer nodes.
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_branch_and_bound(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    lower: &dyn ValueBound,
    upper: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
) -> Result<Decision, Error> {
    let mut ws = PlanWorkspace::new();
    expand_branch_and_bound_with_workspace(
        pomdp,
        belief,
        depth,
        lower,
        upper,
        beta,
        gamma_cutoff,
        &mut ws,
    )?;
    Ok(ws.take_decision())
}

/// [`expand_branch_and_bound`] writing into a reusable
/// [`PlanWorkspace`]; the result lands in [`PlanWorkspace::decision`].
///
/// The root and the recursion share one collect-score-prune helper
/// ([`BbKernel::collect`]); they differ only in that the root reports a
/// q-value for every action (pruned ones get their upper estimate)
/// while interior nodes stop at the first prunable entry of the sorted
/// order.
///
/// # Errors
///
/// Same as [`expand`].
#[allow(clippy::too_many_arguments)]
pub fn expand_branch_and_bound_with_workspace(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    lower: &dyn ValueBound,
    upper: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    ws: &mut PlanWorkspace,
) -> Result<(), Error> {
    if depth == 0 {
        return Err(depth_zero_error());
    }
    ws.begin();
    let na = pomdp.n_actions();
    ws.decision_fill(na, f64::NEG_INFINITY);
    let kernel = BbKernel {
        pomdp,
        lower,
        upper,
        beta,
        cutoff: gamma_cutoff,
    };
    let mut nodes = 0usize;
    let mut frame = ws.take_frame(depth);
    kernel.collect(&mut frame, belief.probs());
    let mut best_value = f64::NEG_INFINITY;
    let mut best_action = frame.entries[0].action;
    for idx in 0..frame.entries.len() {
        let e = frame.entries[idx];
        if e.q_ub <= best_value {
            // Provably cannot beat the incumbent: record the optimistic
            // estimate and skip the descent.
            ws.set_q(e.action, e.q_ub);
            continue;
        }
        let mut q = e.reward;
        for i in e.start..e.start + e.len {
            let v = kernel.value(ws, frame.post(i), depth - 1, &mut nodes);
            q += beta * frame.gammas[i] * v;
        }
        ws.set_q(e.action, q);
        if q > best_value {
            best_value = q;
            best_action = e.action;
        }
    }
    ws.put_frame(depth, frame);
    ws.finish_decision(ActionId::new(best_action), best_value, nodes);
    Ok(())
}

/// The fused-operator successor enumeration, as an allocating
/// convenience mirroring [`Belief::successors`]'s signature.
///
/// Bit-identical to the legacy two-pass scatter: same `γ` values, same
/// posteriors, same (ascending-observation) branch order, same
/// cutoff/impossibility filtering. The planning kernel inlines this
/// loop against workspace scratch; this entry point exists for belief
/// consumers and for the equivalence proptests.
pub fn fused_successors(
    pomdp: &Pomdp,
    belief: &Belief,
    action: ActionId,
    gamma_cutoff: f64,
) -> Vec<(ObservationId, f64, Belief)> {
    let n = pomdp.n_states();
    let mut pred = vec![0.0; n];
    pomdp
        .mdp()
        .transition_matrix(action)
        .matvec_transpose_into(belief.probs(), &mut pred)
        .expect("belief length matches model");
    let obs_t = pomdp.observation_transpose(action);
    let mut out = Vec::new();
    for o in 0..pomdp.n_observations() {
        let mut post = vec![0.0; n];
        let gamma = obs_t
            .row_scaled_into(o, &pred, &mut post)
            .expect("prediction length matches model");
        if gamma > gamma_cutoff && gamma > 0.0 {
            if gamma.is_finite() {
                for v in &mut post {
                    *v /= gamma;
                }
            }
            out.push((ObservationId::new(o), gamma, Belief::from_raw(post)));
        }
    }
    out
}

/// `max_by` over the q-values, replicating the iterator's
/// last-maximal-element tie-breaking of the legacy root argmax.
fn argmax_last(q_values: &[f64]) -> (usize, f64) {
    q_values
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite tree values"))
        .expect("model has at least one action")
}

/// The plain (no upper bound) fused expansion engine. `budget` is
/// `usize::MAX` for unbudgeted runs; `use_cache` is off for budgeted
/// passes so abort points stay a function of the literal expansion
/// order.
struct Kernel<'a> {
    pomdp: &'a Pomdp,
    leaf: &'a dyn ValueBound,
    beta: f64,
    cutoff: f64,
    use_cache: bool,
    budget: usize,
}

impl Kernel<'_> {
    /// `Q(belief, a)` at `depth` remaining action layers; `None` if the
    /// node budget ran out mid-subtree.
    fn action_q(
        &self,
        ws: &mut PlanWorkspace,
        belief: &[f64],
        a: usize,
        depth: usize,
        nodes: &mut usize,
    ) -> Option<f64> {
        let action = ActionId::new(a);
        let mut q = dense::dot(belief, self.pomdp.mdp().reward_vector(action));
        let n = self.pomdp.n_states();
        let mut pred = ws.checkout(n);
        // Beliefs and their unnormalised posteriors are non-negative
        // with no -0.0, which is exactly the `*_unchecked` contract
        // (debug-asserted there); the dense-row fast path stays
        // bit-identical to the sparse loop (see bpr_linalg docs).
        self.pomdp
            .mdp()
            .transition_matrix(action)
            .matvec_transpose_into_unchecked(belief, &mut pred);
        let obs_t = self.pomdp.observation_transpose(action);
        let mut post = ws.checkout(n);
        let mut aborted = false;
        for o in 0..self.pomdp.n_observations() {
            let gamma = obs_t.row_scaled_into_unchecked(o, &pred, &mut post);
            if gamma > self.cutoff && gamma > 0.0 {
                if gamma.is_finite() {
                    // normalize_l1's guard: division only for a finite,
                    // non-zero mass (non-zero is established above).
                    for v in post.iter_mut() {
                        *v /= gamma;
                    }
                }
                match self.node_value(ws, &post, depth - 1, nodes) {
                    Some(v) => q += self.beta * gamma * v,
                    None => {
                        aborted = true;
                        break;
                    }
                }
            }
        }
        ws.release(post);
        ws.release(pred);
        if aborted {
            None
        } else {
            Some(q)
        }
    }

    /// `max_a Q(belief, a)` at `depth` remaining layers, or the leaf
    /// bound at depth 0.
    fn node_value(
        &self,
        ws: &mut PlanWorkspace,
        belief: &[f64],
        depth: usize,
        nodes: &mut usize,
    ) -> Option<f64> {
        *nodes += 1;
        if *nodes > self.budget {
            return None;
        }
        if self.use_cache {
            if let Some((value, sub)) = ws.cache_get(depth, belief) {
                *nodes += sub;
                return Some(value);
            }
        }
        let before = *nodes;
        let value = if depth == 0 {
            self.leaf.value_weights(belief)
        } else {
            let mut best = f64::NEG_INFINITY;
            for a in 0..self.pomdp.n_actions() {
                let q = self.action_q(ws, belief, a, depth, nodes)?;
                best = best.max(q);
            }
            best
        };
        if self.use_cache {
            ws.cache_put(depth, belief, value, *nodes - before);
        }
        Some(value)
    }
}

/// The branch-and-bound fused engine: like [`Kernel`] but with an upper
/// bound ordering and pruning the actions of every interior node.
struct BbKernel<'a> {
    pomdp: &'a Pomdp,
    lower: &'a dyn ValueBound,
    upper: &'a dyn ValueBound,
    beta: f64,
    cutoff: f64,
}

impl BbKernel<'_> {
    /// Expands one node's successor set into `frame` and sorts the
    /// per-action entries by descending upper estimate (action index
    /// breaks ties, replicating the legacy stable sort). Shared by the
    /// root and the recursion.
    fn collect(&self, frame: &mut crate::plan::BbFrame, belief: &[f64]) {
        let n = self.pomdp.n_states();
        frame.reset(n);
        for a in 0..self.pomdp.n_actions() {
            let action = ActionId::new(a);
            let reward = dense::dot(belief, self.pomdp.mdp().reward_vector(action));
            self.pomdp
                .mdp()
                .transition_matrix(action)
                .matvec_transpose_into_unchecked(belief, &mut frame.pred);
            let obs_t = self.pomdp.observation_transpose(action);
            let start = frame.branches();
            for o in 0..self.pomdp.n_observations() {
                let gamma = frame.scale_branch(obs_t, o, n);
                if gamma > self.cutoff && gamma > 0.0 {
                    frame.keep_branch(gamma);
                }
            }
            let mut q_ub = reward;
            for i in start..frame.branches() {
                q_ub += self.beta * frame.gammas[i] * self.upper.value_weights(frame.post(i));
            }
            frame.entries.push(BbEntry {
                action: a,
                reward,
                q_ub,
                start,
                len: frame.branches() - start,
            });
        }
        frame.entries.sort_unstable_by(|x, y| {
            y.q_ub
                .partial_cmp(&x.q_ub)
                .expect("finite upper estimates")
                .then(x.action.cmp(&y.action))
        });
    }

    fn value(
        &self,
        ws: &mut PlanWorkspace,
        belief: &[f64],
        depth: usize,
        nodes: &mut usize,
    ) -> f64 {
        *nodes += 1;
        if let Some((value, sub)) = ws.cache_get(depth, belief) {
            *nodes += sub;
            return value;
        }
        let before = *nodes;
        let value = if depth == 0 {
            self.lower.value_weights(belief)
        } else {
            let mut frame = ws.take_frame(depth);
            self.collect(&mut frame, belief);
            let mut best = f64::NEG_INFINITY;
            for idx in 0..frame.entries.len() {
                let e = frame.entries[idx];
                if e.q_ub <= best {
                    break; // sorted: everything after is also prunable
                }
                let mut q = e.reward;
                for i in e.start..e.start + e.len {
                    let v = self.value(ws, frame.post(i), depth - 1, nodes);
                    q += self.beta * frame.gammas[i] * v;
                }
                best = best.max(q);
            }
            ws.put_frame(depth, frame);
            best
        };
        ws.cache_put(depth, belief, value, *nodes - before);
        value
    }
}

/// The pre-fusion tree expansion, retained verbatim.
///
/// These are the implementations the fused kernel replaced: every node
/// re-derives its successors through [`Belief::successors`]'s two-pass
/// scatter and allocates fresh posterior vectors per branch. They are
/// kept as (a) the reference the equivalence tests compare bit-for-bit
/// against, and (b) the in-run baseline of `bench --bin planning`.
pub mod legacy {
    use super::{Decision, Successors};
    use crate::bounds::ValueBound;
    use crate::{Belief, Error, Pomdp};
    use bpr_mdp::ActionId;

    /// Pre-fusion [`super::expand_with_cutoff`].
    ///
    /// # Errors
    ///
    /// Same as [`super::expand`].
    pub fn expand_with_cutoff(
        pomdp: &Pomdp,
        belief: &Belief,
        depth: usize,
        leaf: &dyn ValueBound,
        beta: f64,
        gamma_cutoff: f64,
    ) -> Result<Decision, Error> {
        if depth == 0 {
            return Err(super::depth_zero_error());
        }
        let mut nodes = 0usize;
        let mut q_values = Vec::with_capacity(pomdp.n_actions());
        for a in 0..pomdp.n_actions() {
            let q = action_value(
                pomdp,
                belief,
                ActionId::new(a),
                depth,
                leaf,
                beta,
                gamma_cutoff,
                &mut nodes,
            )?;
            q_values.push(q);
        }
        let (best_a, best_q) = q_values
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite tree values"))
            .expect("model has at least one action");
        Ok(Decision {
            action: ActionId::new(best_a),
            value: best_q,
            q_values,
            nodes_expanded: nodes,
        })
    }

    /// Pre-fusion [`super::expand_branch_and_bound`].
    ///
    /// # Errors
    ///
    /// Same as [`super::expand`].
    pub fn expand_branch_and_bound(
        pomdp: &Pomdp,
        belief: &Belief,
        depth: usize,
        lower: &dyn ValueBound,
        upper: &dyn ValueBound,
        beta: f64,
        gamma_cutoff: f64,
    ) -> Result<Decision, Error> {
        if depth == 0 {
            return Err(super::depth_zero_error());
        }
        let mut nodes = 0usize;
        let na = pomdp.n_actions();
        // Per action: successors plus the optimistic one-step estimate.
        let mut entries: Vec<(usize, f64, Successors)> = Vec::with_capacity(na);
        for a in 0..na {
            let action = ActionId::new(a);
            let succ: Successors = belief
                .successors(pomdp, action, gamma_cutoff)
                .into_iter()
                .map(|(_o, g, b)| (g, b))
                .collect();
            let mut q_ub = belief.expected_reward(pomdp, action);
            for (g, b) in &succ {
                q_ub += beta * g * upper.value(b);
            }
            entries.push((a, q_ub, succ));
        }
        entries.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite upper estimates"));

        let mut q_values = vec![f64::NEG_INFINITY; na];
        let mut best_value = f64::NEG_INFINITY;
        let mut best_action = entries[0].0;
        for (a, q_ub, succ) in entries {
            if q_ub <= best_value {
                // Provably cannot beat the incumbent: record the
                // optimistic estimate and skip the descent.
                q_values[a] = q_ub;
                continue;
            }
            let action = ActionId::new(a);
            let mut q = belief.expected_reward(pomdp, action);
            for (g, b) in succ {
                let v = bb_value(
                    pomdp,
                    &b,
                    depth - 1,
                    lower,
                    upper,
                    beta,
                    gamma_cutoff,
                    &mut nodes,
                )?;
                q += beta * g * v;
            }
            q_values[a] = q;
            if q > best_value {
                best_value = q;
                best_action = a;
            }
        }
        Ok(Decision {
            action: ActionId::new(best_action),
            value: best_value,
            q_values,
            nodes_expanded: nodes,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn bb_value(
        pomdp: &Pomdp,
        belief: &Belief,
        depth: usize,
        lower: &dyn ValueBound,
        upper: &dyn ValueBound,
        beta: f64,
        gamma_cutoff: f64,
        nodes: &mut usize,
    ) -> Result<f64, Error> {
        *nodes += 1;
        if depth == 0 {
            return Ok(lower.value(belief));
        }
        let na = pomdp.n_actions();
        let mut entries: Vec<(f64, Successors, ActionId)> = Vec::with_capacity(na);
        for a in 0..na {
            let action = ActionId::new(a);
            let succ: Successors = belief
                .successors(pomdp, action, gamma_cutoff)
                .into_iter()
                .map(|(_o, g, b)| (g, b))
                .collect();
            let mut q_ub = belief.expected_reward(pomdp, action);
            for (g, b) in &succ {
                q_ub += beta * g * upper.value(b);
            }
            entries.push((q_ub, succ, action));
        }
        entries.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite upper estimates"));
        let mut best = f64::NEG_INFINITY;
        for (q_ub, succ, action) in entries {
            if q_ub <= best {
                break; // sorted: everything after is also prunable
            }
            let mut q = belief.expected_reward(pomdp, action);
            for (g, b) in succ {
                let v = bb_value(
                    pomdp,
                    &b,
                    depth - 1,
                    lower,
                    upper,
                    beta,
                    gamma_cutoff,
                    nodes,
                )?;
                q += beta * g * v;
            }
            best = best.max(q);
        }
        Ok(best)
    }

    /// Value of the belief under the expansion: `max_a Q(π, a, depth)`,
    /// or the leaf bound at depth 0.
    fn belief_value(
        pomdp: &Pomdp,
        belief: &Belief,
        depth: usize,
        leaf: &dyn ValueBound,
        beta: f64,
        gamma_cutoff: f64,
        nodes: &mut usize,
    ) -> Result<f64, Error> {
        *nodes += 1;
        if depth == 0 {
            return Ok(leaf.value(belief));
        }
        let mut best = f64::NEG_INFINITY;
        for a in 0..pomdp.n_actions() {
            let q = action_value(
                pomdp,
                belief,
                ActionId::new(a),
                depth,
                leaf,
                beta,
                gamma_cutoff,
                nodes,
            )?;
            best = best.max(q);
        }
        Ok(best)
    }

    #[allow(clippy::too_many_arguments)]
    fn action_value(
        pomdp: &Pomdp,
        belief: &Belief,
        action: ActionId,
        depth: usize,
        leaf: &dyn ValueBound,
        beta: f64,
        gamma_cutoff: f64,
        nodes: &mut usize,
    ) -> Result<f64, Error> {
        let mut q = belief.expected_reward(pomdp, action);
        for (_o, gamma, next) in belief.successors(pomdp, action, gamma_cutoff) {
            let v = belief_value(pomdp, &next, depth - 1, leaf, beta, gamma_cutoff, nodes)?;
            q += beta * gamma * v;
        }
        Ok(q)
    }
}

/// Successor beliefs of one action: `(γ(o), b')` per surviving
/// observation branch.
type Successors = Vec<(f64, Belief)>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ConstantBound};
    use bpr_mdp::chain::SolveOpts;

    #[test]
    fn depth_zero_is_rejected() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        assert!(expand(&p, &Belief::uniform(3), 0, &bound, 1.0).is_err());
        assert!(legacy::expand_with_cutoff(&p, &Belief::uniform(3), 0, &bound, 1.0, 0.0).is_err());
        let pool = WorkPool::serial();
        assert!(expand_par(&p, &Belief::uniform(3), 0, &bound, 1.0, 0.0, &pool).is_err());
        let mut ws = PlanWorkspace::new();
        assert!(
            expand_budgeted(&p, &Belief::uniform(3), 0, &bound, 1.0, 0.0, 10, &mut ws).is_err()
        );
    }

    #[test]
    fn certain_fault_picks_matching_restart() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::point(3, 0.into()), 1, &bound, 1.0).unwrap();
        assert_eq!(d.action.index(), 0, "q = {:?}", d.q_values);
        let d = expand(&p, &Belief::point(3, 1.into()), 1, &bound, 1.0).unwrap();
        assert_eq!(d.action.index(), 1);
    }

    #[test]
    fn null_belief_prefers_free_observe() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::point(3, 2.into()), 2, &bound, 1.0).unwrap();
        // Observe costs nothing in Null (the looping action with r = 0).
        assert_eq!(d.action.index(), 2, "q = {:?}", d.q_values);
        assert!((d.value - 0.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_trees_never_lower_the_root_value() {
        // With a lower bound at the leaves satisfying V <= Lp V, the
        // root value is non-decreasing in depth (each extra layer
        // applies Lp once more).
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let b = Belief::uniform(3);
        let mut prev = f64::NEG_INFINITY;
        for depth in 1..=4 {
            let d = expand(&p, &b, depth, &bound, 1.0).unwrap();
            assert!(
                d.value + 1e-9 >= prev,
                "depth {depth} lowered value: {prev} -> {}",
                d.value
            );
            prev = d.value;
        }
    }

    #[test]
    fn q_values_are_reported_for_all_actions() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::uniform(3), 1, &bound, 1.0).unwrap();
        assert_eq!(d.q_values.len(), 3);
        assert!(d.q_values.iter().all(|q| q.is_finite()));
        let max = d.q_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(d.value, max);
    }

    #[test]
    fn node_count_grows_with_depth() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let d1 = expand(&p, &b, 1, &bound, 1.0).unwrap();
        let d2 = expand(&p, &b, 2, &bound, 1.0).unwrap();
        assert!(d2.nodes_expanded > d1.nodes_expanded);
    }

    #[test]
    fn cutoff_prunes_rare_observations() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let full = expand_with_cutoff(&p, &b, 2, &bound, 1.0, 0.0).unwrap();
        let pruned = expand_with_cutoff(&p, &b, 2, &bound, 1.0, 0.2).unwrap();
        assert!(pruned.nodes_expanded <= full.nodes_expanded);
    }

    #[test]
    fn branch_and_bound_matches_plain_expansion() {
        use crate::bounds::qmdp_bound;
        use bpr_mdp::value_iteration::Discount;
        let p = two_server_notified();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        for probs in [
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.3, 0.3, 0.4],
            vec![0.05, 0.9, 0.05],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            for depth in 1..=3 {
                let plain = expand(&p, &b, depth, &lower, 1.0).unwrap();
                let bb = expand_branch_and_bound(&p, &b, depth, &lower, &upper, 1.0, 0.0).unwrap();
                assert!(
                    (bb.value - plain.value).abs() < 1e-9,
                    "depth {depth}: {} vs {}",
                    bb.value,
                    plain.value
                );
                // Tie-breaking may differ, but the chosen action must be
                // a maximiser of the plain expansion.
                assert!(
                    (plain.q_values[bb.action.index()] - plain.value).abs() < 1e-9,
                    "depth {depth}: bb picked a non-maximiser"
                );
                assert!(bb.nodes_expanded <= plain.nodes_expanded);
            }
        }
    }

    #[test]
    fn branch_and_bound_rejects_zero_depth() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        assert!(
            expand_branch_and_bound(&p, &Belief::uniform(3), 0, &bound, &bound, 1.0, 0.0).is_err()
        );
    }

    #[test]
    fn expansion_with_trivial_upper_bound_is_optimistic() {
        // Leaf bound 0 (upper) must give a root value >= the value with
        // the RA lower bound at the leaves.
        let p = two_server_notified();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let lo = expand(&p, &b, 2, &lower, 1.0).unwrap();
        let hi = expand(&p, &b, 2, &upper, 1.0).unwrap();
        assert!(hi.value + 1e-9 >= lo.value);
    }

    // ------------------------------------------------------------------
    // Fused-kernel equivalence against the legacy path.

    fn probe_beliefs() -> Vec<Belief> {
        vec![
            Belief::uniform(3),
            Belief::point(3, 0.into()),
            Belief::point(3, 2.into()),
            Belief::from_probs(vec![0.05, 0.9, 0.05]).unwrap(),
            Belief::from_probs(vec![0.3, 0.3, 0.4]).unwrap(),
        ]
    }

    #[test]
    fn fused_successors_are_bit_identical_to_legacy() {
        let p = two_server_notified();
        for b in probe_beliefs() {
            for a in 0..p.n_actions() {
                for cutoff in [0.0, 0.05, 0.3] {
                    let action = ActionId::new(a);
                    let old = b.successors(&p, action, cutoff);
                    let new = fused_successors(&p, &b, action, cutoff);
                    assert_eq!(old.len(), new.len(), "branch count a={a} cutoff={cutoff}");
                    for ((o1, g1, b1), (o2, g2, b2)) in old.iter().zip(&new) {
                        assert_eq!(o1, o2);
                        assert_eq!(g1.to_bits(), g2.to_bits(), "gamma differs at {o1}");
                        assert_eq!(b1.probs(), b2.probs(), "posterior differs at {o1}");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_expansion_matches_legacy_exactly() {
        let p = two_server_notified();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        for b in probe_beliefs() {
            for depth in 1..=3 {
                for cutoff in [0.0, 0.05] {
                    let old = legacy::expand_with_cutoff(&p, &b, depth, &ra, 1.0, cutoff).unwrap();
                    let new = expand_with_cutoff(&p, &b, depth, &ra, 1.0, cutoff).unwrap();
                    assert_eq!(old, new, "depth={depth} cutoff={cutoff}");
                }
            }
        }
    }

    #[test]
    fn fused_branch_and_bound_matches_legacy_exactly() {
        use crate::bounds::qmdp_bound;
        use bpr_mdp::value_iteration::Discount;
        let p = two_server_notified();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        for b in probe_beliefs() {
            for depth in 1..=3 {
                let old = legacy::expand_branch_and_bound(&p, &b, depth, &lower, &upper, 1.0, 0.0)
                    .unwrap();
                let new = expand_branch_and_bound(&p, &b, depth, &lower, &upper, 1.0, 0.0).unwrap();
                assert_eq!(old, new, "depth={depth}");
            }
        }
    }

    #[test]
    fn parallel_root_expansion_is_bit_identical() {
        let p = two_server_notified();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        for b in probe_beliefs() {
            for depth in 1..=3 {
                let sequential = expand_with_cutoff(&p, &b, depth, &ra, 1.0, 0.0).unwrap();
                for width in [1usize, 2, 4] {
                    let pool = WorkPool::new(width).unwrap();
                    let parallel = expand_par(&p, &b, depth, &ra, 1.0, 0.0, &pool).unwrap();
                    assert_eq!(sequential, parallel, "depth={depth} width={width}");
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_is_steady_state() {
        let p = two_server_notified();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        let mut ws = PlanWorkspace::new();
        let b = Belief::uniform(3);
        expand_with_workspace(&p, &b, 3, &ra, 1.0, 0.0, &mut ws).unwrap();
        let first = ws.decision().clone();
        let warm = ws.stats().buffers_allocated;
        for _ in 0..5 {
            expand_with_workspace(&p, &b, 3, &ra, 1.0, 0.0, &mut ws).unwrap();
            assert_eq!(ws.decision(), &first, "decisions drifted across reuse");
        }
        assert_eq!(
            ws.stats().buffers_allocated,
            warm,
            "steady-state decisions allocated fresh buffers"
        );
    }

    #[test]
    fn epoch_expansion_is_bit_identical_and_reuses_across_decisions() {
        let p = two_server_notified();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        let epoch = CacheEpoch {
            model_fingerprint: p.fingerprint(),
            bound_generation: ra.generation(),
            beta_bits: 1.0f64.to_bits(),
            cutoff_bits: 0.0f64.to_bits(),
        };
        let mut plain_ws = PlanWorkspace::new();
        let mut epoch_ws = PlanWorkspace::new();
        for b in probe_beliefs() {
            expand_with_workspace(&p, &b, 3, &ra, 1.0, 0.0, &mut plain_ws).unwrap();
            expand_with_workspace_epoch(&p, &b, 3, &ra, 1.0, 0.0, epoch, &mut epoch_ws).unwrap();
            assert_eq!(plain_ws.decision(), epoch_ws.decision());
        }
        assert_eq!(
            plain_ws.stats().cross_decision_hits,
            0,
            "plain begin() must never reuse across decisions"
        );
        // Replaying the same belief under the same epoch is answered
        // from retained entries.
        let b = Belief::uniform(3);
        expand_with_workspace_epoch(&p, &b, 3, &ra, 1.0, 0.0, epoch, &mut epoch_ws).unwrap();
        let before = epoch_ws.stats().clone();
        expand_with_workspace_epoch(&p, &b, 3, &ra, 1.0, 0.0, epoch, &mut epoch_ws).unwrap();
        let after = epoch_ws.stats();
        assert!(
            after.cross_decision_hits > before.cross_decision_hits,
            "identical decision under an unchanged epoch found no reuse: {after:?}"
        );
        // A changed epoch component invalidates the retained entries.
        let bumped = CacheEpoch {
            bound_generation: epoch.bound_generation + 1,
            ..epoch
        };
        let reuse_before = after.cross_decision_hits;
        expand_with_workspace_epoch(&p, &b, 3, &ra, 1.0, 0.0, bumped, &mut epoch_ws).unwrap();
        assert_eq!(epoch_ws.stats().cross_decision_hits, reuse_before);
        expand_with_workspace(&p, &b, 3, &ra, 1.0, 0.0, &mut plain_ws).unwrap();
        assert_eq!(epoch_ws.decision(), plain_ws.decision());
    }

    #[test]
    fn transposition_cache_fires_on_repeated_posteriors() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        let mut ws = PlanWorkspace::new();
        expand_with_workspace(&p, &Belief::uniform(3), 3, &bound, 1.0, 0.0, &mut ws).unwrap();
        // Restart actions collapse onto identical posteriors, so a
        // depth-3 tree revisits nodes.
        assert!(ws.stats().cache_hits > 0, "stats: {:?}", ws.stats());
    }

    #[test]
    fn budgeted_pass_matches_plain_when_budget_is_generous() {
        let p = two_server_notified();
        let ra = ra_bound(&p, &SolveOpts::default()).unwrap();
        let b = Belief::uniform(3);
        let plain = expand_with_cutoff(&p, &b, 2, &ra, 1.0, 0.0).unwrap();
        let mut ws = PlanWorkspace::new();
        let pass =
            expand_budgeted(&p, &b, 2, &ra, 1.0, 0.0, plain.nodes_expanded, &mut ws).unwrap();
        assert!(pass.completed);
        assert_eq!(pass.nodes_spent, plain.nodes_expanded);
        assert_eq!(ws.q_scratch(), plain.q_values.as_slice());
        // One node fewer and the pass must abort.
        let pass =
            expand_budgeted(&p, &b, 2, &ra, 1.0, 0.0, plain.nodes_expanded - 1, &mut ws).unwrap();
        assert!(!pass.completed);
    }
}
