//! Finite-depth Max-Avg tree expansion (paper Fig. 1(b)).
//!
//! The online controller chooses actions by unrolling the POMDP dynamic
//! programming recursion (Eq. 2) to a small depth from the current
//! belief, evaluating a bound at the leaves, and executing the action
//! that maximises the root value. With a *lower* bound at the leaves the
//! controller inherits the termination guarantees of paper §4.2.

use crate::bounds::ValueBound;
use crate::{Belief, Error, Pomdp};
use bpr_mdp::ActionId;

/// Successor beliefs of one action: `(γ(o), b')` per surviving
/// observation branch.
type Successors = Vec<(f64, Belief)>;

/// The decision produced by a tree expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The maximising action at the root.
    pub action: ActionId,
    /// The root value under the expansion.
    pub value: f64,
    /// Per-action root values (`q_values[a]` for action `a`).
    pub q_values: Vec<f64>,
    /// Number of belief nodes evaluated (leaves + interior).
    pub nodes_expanded: usize,
}

/// Expands the recursion to `depth` and returns the best root action.
///
/// `depth = 0` evaluates the bound directly and picks the action that
/// maximises the one-step lookahead implied by... no: `depth` counts
/// action layers, so `depth = 1` is the paper's "tree depth one"
/// (choose an action, average over observations, evaluate the bound at
/// the successor beliefs). `depth = 0` is rejected because it makes no
/// decision.
///
/// Observation branches with probability below `gamma_cutoff` are
/// pruned (their contribution to the average is bounded by the cutoff
/// times the worst bound value); `0.0` disables pruning of everything
/// except genuinely impossible observations.
///
/// # Errors
///
/// * [`Error::IndexOutOfBounds`] if `depth == 0`.
/// * Propagates belief-update failures (which cannot occur for
///   observations with positive probability).
pub fn expand(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
) -> Result<Decision, Error> {
    expand_with_cutoff(pomdp, belief, depth, leaf, beta, 0.0)
}

/// [`expand`] with an explicit observation-probability cutoff.
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_with_cutoff(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
) -> Result<Decision, Error> {
    if depth == 0 {
        return Err(Error::IndexOutOfBounds {
            what: "tree depth (must be >= 1)",
            index: 0,
            bound: usize::MAX,
        });
    }
    let mut nodes = 0usize;
    let mut q_values = Vec::with_capacity(pomdp.n_actions());
    for a in 0..pomdp.n_actions() {
        let q = action_value(
            pomdp,
            belief,
            ActionId::new(a),
            depth,
            leaf,
            beta,
            gamma_cutoff,
            &mut nodes,
        )?;
        q_values.push(q);
    }
    let (best_a, best_q) = q_values
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite tree values"))
        .expect("model has at least one action");
    Ok(Decision {
        action: ActionId::new(best_a),
        value: best_q,
        q_values,
        nodes_expanded: nodes,
    })
}

/// Expands the recursion with **branch-and-bound pruning**: an upper
/// bound orders the actions and prunes those whose optimistic value
/// cannot beat the best action found so far — the use of upper bounds
/// the paper's conclusion proposes as future work.
///
/// Produces exactly the same decision values as
/// [`expand_with_cutoff`] (pruned actions are provably not maximisers;
/// their reported q-value is their upper estimate), typically expanding
/// far fewer nodes.
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_branch_and_bound(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    lower: &dyn ValueBound,
    upper: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
) -> Result<Decision, Error> {
    if depth == 0 {
        return Err(Error::IndexOutOfBounds {
            what: "tree depth (must be >= 1)",
            index: 0,
            bound: usize::MAX,
        });
    }
    let mut nodes = 0usize;
    let na = pomdp.n_actions();
    // Per action: successors plus the optimistic one-step estimate.
    let mut entries: Vec<(usize, f64, Successors)> = Vec::with_capacity(na);
    for a in 0..na {
        let action = ActionId::new(a);
        let succ: Successors = belief
            .successors(pomdp, action, gamma_cutoff)
            .into_iter()
            .map(|(_o, g, b)| (g, b))
            .collect();
        let mut q_ub = belief.expected_reward(pomdp, action);
        for (g, b) in &succ {
            q_ub += beta * g * upper.value(b);
        }
        entries.push((a, q_ub, succ));
    }
    entries.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite upper estimates"));

    let mut q_values = vec![f64::NEG_INFINITY; na];
    let mut best_value = f64::NEG_INFINITY;
    let mut best_action = entries[0].0;
    for (a, q_ub, succ) in entries {
        if q_ub <= best_value {
            // Provably cannot beat the incumbent: record the optimistic
            // estimate and skip the descent.
            q_values[a] = q_ub;
            continue;
        }
        let action = ActionId::new(a);
        let mut q = belief.expected_reward(pomdp, action);
        for (g, b) in succ {
            let v = bb_value(
                pomdp,
                &b,
                depth - 1,
                lower,
                upper,
                beta,
                gamma_cutoff,
                &mut nodes,
            )?;
            q += beta * g * v;
        }
        q_values[a] = q;
        if q > best_value {
            best_value = q;
            best_action = a;
        }
    }
    Ok(Decision {
        action: ActionId::new(best_action),
        value: best_value,
        q_values,
        nodes_expanded: nodes,
    })
}

#[allow(clippy::too_many_arguments)]
fn bb_value(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    lower: &dyn ValueBound,
    upper: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    nodes: &mut usize,
) -> Result<f64, Error> {
    *nodes += 1;
    if depth == 0 {
        return Ok(lower.value(belief));
    }
    let na = pomdp.n_actions();
    let mut entries: Vec<(f64, Successors, ActionId)> = Vec::with_capacity(na);
    for a in 0..na {
        let action = ActionId::new(a);
        let succ: Successors = belief
            .successors(pomdp, action, gamma_cutoff)
            .into_iter()
            .map(|(_o, g, b)| (g, b))
            .collect();
        let mut q_ub = belief.expected_reward(pomdp, action);
        for (g, b) in &succ {
            q_ub += beta * g * upper.value(b);
        }
        entries.push((q_ub, succ, action));
    }
    entries.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite upper estimates"));
    let mut best = f64::NEG_INFINITY;
    for (q_ub, succ, action) in entries {
        if q_ub <= best {
            break; // sorted: everything after is also prunable
        }
        let mut q = belief.expected_reward(pomdp, action);
        for (g, b) in succ {
            let v = bb_value(
                pomdp,
                &b,
                depth - 1,
                lower,
                upper,
                beta,
                gamma_cutoff,
                nodes,
            )?;
            q += beta * g * v;
        }
        best = best.max(q);
    }
    Ok(best)
}

/// Value of the belief under the expansion: `max_a Q(π, a, depth)`, or
/// the leaf bound at depth 0.
fn belief_value(
    pomdp: &Pomdp,
    belief: &Belief,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    nodes: &mut usize,
) -> Result<f64, Error> {
    *nodes += 1;
    if depth == 0 {
        return Ok(leaf.value(belief));
    }
    let mut best = f64::NEG_INFINITY;
    for a in 0..pomdp.n_actions() {
        let q = action_value(
            pomdp,
            belief,
            ActionId::new(a),
            depth,
            leaf,
            beta,
            gamma_cutoff,
            nodes,
        )?;
        best = best.max(q);
    }
    Ok(best)
}

#[allow(clippy::too_many_arguments)]
fn action_value(
    pomdp: &Pomdp,
    belief: &Belief,
    action: ActionId,
    depth: usize,
    leaf: &dyn ValueBound,
    beta: f64,
    gamma_cutoff: f64,
    nodes: &mut usize,
) -> Result<f64, Error> {
    let mut q = belief.expected_reward(pomdp, action);
    for (_o, gamma, next) in belief.successors(pomdp, action, gamma_cutoff) {
        let v = belief_value(pomdp, &next, depth - 1, leaf, beta, gamma_cutoff, nodes)?;
        q += beta * gamma * v;
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ra::tests::two_server_notified;
    use crate::bounds::{ra_bound, ConstantBound};
    use bpr_mdp::chain::SolveOpts;

    #[test]
    fn depth_zero_is_rejected() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        assert!(expand(&p, &Belief::uniform(3), 0, &bound, 1.0).is_err());
    }

    #[test]
    fn certain_fault_picks_matching_restart() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::point(3, 0.into()), 1, &bound, 1.0).unwrap();
        assert_eq!(d.action.index(), 0, "q = {:?}", d.q_values);
        let d = expand(&p, &Belief::point(3, 1.into()), 1, &bound, 1.0).unwrap();
        assert_eq!(d.action.index(), 1);
    }

    #[test]
    fn null_belief_prefers_free_observe() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::point(3, 2.into()), 2, &bound, 1.0).unwrap();
        // Observe costs nothing in Null (the looping action with r = 0).
        assert_eq!(d.action.index(), 2, "q = {:?}", d.q_values);
        assert!((d.value - 0.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_trees_never_lower_the_root_value() {
        // With a lower bound at the leaves satisfying V <= Lp V, the
        // root value is non-decreasing in depth (each extra layer
        // applies Lp once more).
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let b = Belief::uniform(3);
        let mut prev = f64::NEG_INFINITY;
        for depth in 1..=4 {
            let d = expand(&p, &b, depth, &bound, 1.0).unwrap();
            assert!(
                d.value + 1e-9 >= prev,
                "depth {depth} lowered value: {prev} -> {}",
                d.value
            );
            prev = d.value;
        }
    }

    #[test]
    fn q_values_are_reported_for_all_actions() {
        let p = two_server_notified();
        let bound = ra_bound(&p, &SolveOpts::default()).unwrap();
        let d = expand(&p, &Belief::uniform(3), 1, &bound, 1.0).unwrap();
        assert_eq!(d.q_values.len(), 3);
        assert!(d.q_values.iter().all(|q| q.is_finite()));
        let max = d.q_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(d.value, max);
    }

    #[test]
    fn node_count_grows_with_depth() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let d1 = expand(&p, &b, 1, &bound, 1.0).unwrap();
        let d2 = expand(&p, &b, 2, &bound, 1.0).unwrap();
        assert!(d2.nodes_expanded > d1.nodes_expanded);
    }

    #[test]
    fn cutoff_prunes_rare_observations() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let full = expand_with_cutoff(&p, &b, 2, &bound, 1.0, 0.0).unwrap();
        let pruned = expand_with_cutoff(&p, &b, 2, &bound, 1.0, 0.2).unwrap();
        assert!(pruned.nodes_expanded <= full.nodes_expanded);
    }

    #[test]
    fn branch_and_bound_matches_plain_expansion() {
        use crate::bounds::qmdp_bound;
        use bpr_mdp::value_iteration::Discount;
        let p = two_server_notified();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = qmdp_bound(&p, Discount::Undiscounted).unwrap();
        for probs in [
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.3, 0.3, 0.4],
            vec![0.05, 0.9, 0.05],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            for depth in 1..=3 {
                let plain = expand(&p, &b, depth, &lower, 1.0).unwrap();
                let bb = expand_branch_and_bound(&p, &b, depth, &lower, &upper, 1.0, 0.0).unwrap();
                assert!(
                    (bb.value - plain.value).abs() < 1e-9,
                    "depth {depth}: {} vs {}",
                    bb.value,
                    plain.value
                );
                // Tie-breaking may differ, but the chosen action must be
                // a maximiser of the plain expansion.
                assert!(
                    (plain.q_values[bb.action.index()] - plain.value).abs() < 1e-9,
                    "depth {depth}: bb picked a non-maximiser"
                );
                assert!(bb.nodes_expanded <= plain.nodes_expanded);
            }
        }
    }

    #[test]
    fn branch_and_bound_rejects_zero_depth() {
        let p = two_server_notified();
        let bound = ConstantBound(0.0);
        assert!(
            expand_branch_and_bound(&p, &Belief::uniform(3), 0, &bound, &bound, 1.0, 0.0).is_err()
        );
    }

    #[test]
    fn expansion_with_trivial_upper_bound_is_optimistic() {
        // Leaf bound 0 (upper) must give a root value >= the value with
        // the RA lower bound at the leaves.
        let p = two_server_notified();
        let lower = ra_bound(&p, &SolveOpts::default()).unwrap();
        let upper = ConstantBound(0.0);
        let b = Belief::uniform(3);
        let lo = expand(&p, &b, 2, &lower, 1.0).unwrap();
        let hi = expand(&p, &b, 2, &upper, 1.0).unwrap();
        assert!(hi.value + 1e-9 >= lo.value);
    }
}
