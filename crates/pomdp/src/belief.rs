//! Belief states and the Bayes update (paper Eq. 3–4).

use crate::{Error, ObservationId, Pomdp};
use bpr_linalg::dense;
use bpr_mdp::{ActionId, StateId};

/// A belief state: a probability distribution over the POMDP's states.
///
/// The paper's `π = [π(1), ..., π(|S|)]`. Beliefs are immutable; the
/// Bayes update ([`Belief::update`]) returns a fresh belief together
/// with the probability `γ^{π,a}(o)` of the conditioning observation.
///
/// # Examples
///
/// ```
/// use bpr_pomdp::Belief;
///
/// let b = Belief::uniform(4);
/// assert_eq!(b.prob(2.into()), 0.25);
/// let point = Belief::point(4, 1.into());
/// assert_eq!(point.prob(1.into()), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Belief {
    probs: Vec<f64>,
}

impl Belief {
    /// The uniform belief over `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Belief {
        assert!(n > 0, "belief needs at least one state");
        Belief {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// The belief concentrated on a single state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds or `n == 0`.
    pub fn point(n: usize, state: StateId) -> Belief {
        assert!(state.index() < n, "state out of bounds");
        let mut probs = vec![0.0; n];
        probs[state.index()] = 1.0;
        Belief { probs }
    }

    /// The uniform belief over a subset of states (e.g. "all faults
    /// equally likely", the controller's starting belief in §4).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or contains an out-of-bounds index.
    pub fn uniform_over(n: usize, states: &[StateId]) -> Belief {
        assert!(!states.is_empty(), "subset must be non-empty");
        let mut probs = vec![0.0; n];
        let w = 1.0 / states.len() as f64;
        for s in states {
            assert!(s.index() < n, "state out of bounds");
            probs[s.index()] += w;
        }
        Belief { probs }
    }

    /// Builds a belief from raw probabilities, validating and
    /// re-normalising away floating-point drift.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBelief`] if the vector is empty, has
    /// negative or non-finite entries, or sums to something further than
    /// `1e-6` from 1.
    pub fn from_probs(probs: Vec<f64>) -> Result<Belief, Error> {
        if probs.is_empty() {
            return Err(Error::InvalidBelief {
                reason: "belief must cover at least one state",
            });
        }
        if !dense::all_finite(&probs) || probs.iter().any(|&p| p < 0.0) {
            return Err(Error::InvalidBelief {
                reason: "entries must be finite and non-negative",
            });
        }
        let sum = dense::sum(&probs);
        if (sum - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidBelief {
                reason: "entries must sum to 1",
            });
        }
        let mut probs = probs;
        dense::normalize_l1(&mut probs);
        Ok(Belief { probs })
    }

    /// Wraps an already-normalised probability vector without
    /// validation. Internal constructor for the planning kernel, which
    /// produces posteriors that are normalised by construction.
    pub(crate) fn from_raw(probs: Vec<f64>) -> Belief {
        debug_assert!(!probs.is_empty(), "belief must cover at least one state");
        Belief { probs }
    }

    /// The per-state probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of states covered.
    pub fn n_states(&self) -> usize {
        self.probs.len()
    }

    /// The probability assigned to one state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn prob(&self, state: StateId) -> f64 {
        self.probs[state.index()]
    }

    /// Total probability mass on a set of states (e.g. `P[S_φ]`, the
    /// mass on null-fault states used by the baseline controllers'
    /// termination rule).
    pub fn prob_in(&self, states: &[StateId]) -> f64 {
        states
            .iter()
            .filter(|s| s.index() < self.probs.len())
            .map(|s| self.probs[s.index()])
            .sum()
    }

    /// The most likely state and its probability (ties resolve to the
    /// lowest index) — the "most likely" baseline controller's diagnosis.
    pub fn most_likely(&self) -> (StateId, f64) {
        let (i, p) = dense::argmax(&self.probs).expect("belief is non-empty");
        (StateId::new(i), p)
    }

    /// Shannon entropy in nats; 0 for a point belief.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// The expected single-step reward `π · r(a)`.
    ///
    /// # Panics
    ///
    /// Panics if the belief's dimension differs from the model's.
    pub fn expected_reward(&self, pomdp: &Pomdp, action: ActionId) -> f64 {
        dense::dot(&self.probs, pomdp.mdp().reward_vector(action))
    }

    /// The predicted state distribution after taking `action`, before
    /// observing: `pred(s') = Σ_s p(s'|s, a) π(s)`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch (programming error).
    pub fn predict(&self, pomdp: &Pomdp, action: ActionId) -> Vec<f64> {
        pomdp
            .mdp()
            .transition_matrix(action)
            .matvec_transpose(&self.probs)
            .expect("belief length matches model")
    }

    /// The probability `γ^{π,a}(o)` of each observation after taking
    /// `action` from this belief (paper Eq. 3). Sums to 1.
    pub fn observation_probs(&self, pomdp: &Pomdp, action: ActionId) -> Vec<f64> {
        let pred = self.predict(pomdp, action);
        pomdp
            .observation_matrix(action)
            .matvec_transpose(&pred)
            .expect("prediction length matches model")
    }

    /// Enumerates all possible successors of taking `action`: for every
    /// observation with `γ^{π,a}(o) > gamma_cutoff`, the pair
    /// `(o, γ, posterior)`.
    ///
    /// This computes every posterior in a single pass over the sparse
    /// observation matrix, which is what makes deep tree expansions over
    /// large observation spaces (the EMN model has 2⁷ masks) tractable.
    /// The returned `γ` values over *all* observations sum to 1; entries
    /// at or below the cutoff are omitted.
    pub fn successors(
        &self,
        pomdp: &Pomdp,
        action: ActionId,
        gamma_cutoff: f64,
    ) -> Vec<(ObservationId, f64, Belief)> {
        let n = pomdp.n_states();
        let pred = self.predict(pomdp, action);
        // tau[o][s'] = q(o|s',a) * pred(s'), built sparsely.
        let mut tau: Vec<Vec<f64>> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        tau.resize(pomdp.n_observations(), Vec::new());
        for (s2, &p) in pred.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for (o, q) in pomdp.observations_on_entering(s2, action) {
                let slot = &mut tau[o.index()];
                if slot.is_empty() {
                    slot.resize(n, 0.0);
                    touched.push(o.index());
                }
                slot[s2] += q * p;
            }
        }
        touched.sort_unstable();
        let mut out = Vec::with_capacity(touched.len());
        for o in touched {
            let mut probs = std::mem::take(&mut tau[o]);
            let gamma = dense::normalize_l1(&mut probs);
            if gamma > gamma_cutoff && gamma > 0.0 {
                out.push((ObservationId::new(o), gamma, Belief { probs }));
            }
        }
        out
    }

    /// The Bayes update (paper Eq. 4): the posterior belief after taking
    /// `action` and observing `o`, together with the observation's prior
    /// probability `γ^{π,a}(o)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleObservation`] if `γ^{π,a}(o) = 0`.
    pub fn update(
        &self,
        pomdp: &Pomdp,
        action: ActionId,
        o: ObservationId,
    ) -> Result<(Belief, f64), Error> {
        if o.index() >= pomdp.n_observations() {
            return Err(Error::IndexOutOfBounds {
                what: "observation",
                index: o.index(),
                bound: pomdp.n_observations(),
            });
        }
        let pred = self.predict(pomdp, action);
        let mut unnorm: Vec<f64> = (0..pomdp.n_states())
            .map(|s| pomdp.observation_prob(s, action, o) * pred[s])
            .collect();
        let gamma = dense::normalize_l1(&mut unnorm);
        if gamma <= 0.0 || !gamma.is_finite() {
            return Err(Error::ImpossibleObservation {
                action: action.index(),
                observation: o.index(),
            });
        }
        Ok((Belief { probs: unnorm }, gamma))
    }

    /// The Bayes update hardened for model/world mismatch: where
    /// [`Belief::update`] reports [`Error::ImpossibleObservation`] for a
    /// zero-likelihood observation, this falls back to an
    /// epsilon-mixture observation kernel
    /// `q'(o|s',a) = (1-ε)·q(o|s',a) + ε/|O|`
    /// and renormalises against that mixture — equivalent to admitting
    /// that with probability `ε` the monitor output is arbitrary. The
    /// fallback posterior keeps the *predicted* state distribution's
    /// support instead of crashing the episode, degrading gracefully to
    /// "the observation told us nothing".
    ///
    /// Returns the posterior, the observation probability under the
    /// kernel actually used, and which path was taken
    /// ([`RobustUpdate::Exact`] when the ordinary update succeeded).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidBelief`] if `epsilon` is not in `(0, 1]`.
    /// * [`Error::IndexOutOfBounds`] for an out-of-range observation.
    pub fn update_robust(
        &self,
        pomdp: &Pomdp,
        action: ActionId,
        o: ObservationId,
        epsilon: f64,
    ) -> Result<(Belief, f64, RobustUpdate), Error> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(Error::InvalidBelief {
                reason: "robust-update epsilon must be in (0, 1]",
            });
        }
        match self.update(pomdp, action, o) {
            Ok((next, gamma)) => Ok((next, gamma, RobustUpdate::Exact)),
            Err(Error::ImpossibleObservation { .. }) => {
                let pred = self.predict(pomdp, action);
                let floor = epsilon / pomdp.n_observations() as f64;
                let mut unnorm: Vec<f64> = (0..pomdp.n_states())
                    .map(|s| {
                        let q = (1.0 - epsilon) * pomdp.observation_prob(s, action, o) + floor;
                        q * pred[s]
                    })
                    .collect();
                let gamma = dense::normalize_l1(&mut unnorm);
                debug_assert!(gamma > 0.0, "mixture kernel gives every observation mass");
                Ok((Belief { probs: unnorm }, gamma, RobustUpdate::EpsilonMixed))
            }
            Err(e) => Err(e),
        }
    }
}

/// Which path [`Belief::update_robust`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustUpdate {
    /// The ordinary Bayes update succeeded; the observation had positive
    /// likelihood under the model.
    Exact,
    /// The observation had zero likelihood; the posterior came from the
    /// epsilon-mixture fallback kernel.
    EpsilonMixed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PomdpBuilder;
    use bpr_mdp::MdpBuilder;

    /// Noisy two-state world: action 0 keeps the state; observations
    /// reveal the state with 80 % accuracy.
    fn noisy_pomdp() -> Pomdp {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 0.8);
        pb.observation(0, 0, 1, 0.2);
        pb.observation(1, 0, 0, 0.2);
        pb.observation(1, 0, 1, 0.8);
        pb.build().unwrap()
    }

    #[test]
    fn constructors_land_on_simplex() {
        assert_eq!(Belief::uniform(2).probs(), &[0.5, 0.5]);
        assert_eq!(Belief::point(3, StateId::new(2)).probs(), &[0.0, 0.0, 1.0]);
        let sub = Belief::uniform_over(4, &[StateId::new(1), StateId::new(3)]);
        assert_eq!(sub.probs(), &[0.0, 0.5, 0.0, 0.5]);
    }

    #[test]
    fn from_probs_validates() {
        assert!(Belief::from_probs(vec![]).is_err());
        assert!(Belief::from_probs(vec![0.5, 0.6]).is_err());
        assert!(Belief::from_probs(vec![-0.1, 1.1]).is_err());
        assert!(Belief::from_probs(vec![f64::NAN, 1.0]).is_err());
        let b = Belief::from_probs(vec![0.25, 0.75]).unwrap();
        assert_eq!(b.prob(StateId::new(1)), 0.75);
    }

    #[test]
    fn bayes_update_sharpens_belief() {
        let p = noisy_pomdp();
        let b = Belief::uniform(2);
        let (b2, gamma) = b.update(&p, ActionId::new(0), 0.into()).unwrap();
        assert!((gamma - 0.5).abs() < 1e-12);
        assert!((b2.prob(StateId::new(0)) - 0.8).abs() < 1e-12);
        // Updating again with the same observation sharpens further:
        // 0.8*0.8 / (0.8*0.8 + 0.2*0.2) = 0.941...
        let (b3, _) = b2.update(&p, ActionId::new(0), 0.into()).unwrap();
        assert!((b3.prob(StateId::new(0)) - 0.64 / 0.68).abs() < 1e-12);
    }

    #[test]
    fn observation_probs_sum_to_one() {
        let p = noisy_pomdp();
        let b = Belief::from_probs(vec![0.3, 0.7]).unwrap();
        let gammas = b.observation_probs(&p, ActionId::new(0));
        assert!((gammas.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // gamma(o0) = 0.3*0.8 + 0.7*0.2 = 0.38.
        assert!((gammas[0] - 0.38).abs() < 1e-12);
    }

    #[test]
    fn update_consistency_with_observation_probs() {
        let p = noisy_pomdp();
        let b = Belief::from_probs(vec![0.9, 0.1]).unwrap();
        let gammas = b.observation_probs(&p, ActionId::new(0));
        for (o, &gamma) in gammas.iter().enumerate() {
            let (_, g) = b.update(&p, ActionId::new(0), o.into()).unwrap();
            assert!((g - gamma).abs() < 1e-12);
        }
    }

    #[test]
    fn successors_agree_with_update_and_gammas() {
        let p = noisy_pomdp();
        let b = Belief::from_probs(vec![0.4, 0.6]).unwrap();
        let succ = b.successors(&p, ActionId::new(0), 0.0);
        let gammas = b.observation_probs(&p, ActionId::new(0));
        assert_eq!(succ.len(), 2);
        let total: f64 = succ.iter().map(|(_, g, _)| g).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (o, gamma, next) in &succ {
            assert!((gamma - gammas[o.index()]).abs() < 1e-12);
            let (expect, g2) = b.update(&p, ActionId::new(0), *o).unwrap();
            assert!((g2 - gamma).abs() < 1e-12);
            for (a, b) in next.probs().iter().zip(expect.probs()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn successors_cutoff_drops_rare_observations() {
        let p = noisy_pomdp();
        let b = Belief::point(2, StateId::new(0));
        // gamma(o1) = 0.2 from state 0; a cutoff of 0.5 keeps only o0.
        let succ = b.successors(&p, ActionId::new(0), 0.5);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0.index(), 0);
    }

    #[test]
    fn impossible_observation_is_an_error() {
        // Deterministic observation of the state: observing o1 from a
        // point belief on state 0 is impossible.
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 1.0);
        pb.observation(1, 0, 1, 1.0);
        let p = pb.build().unwrap();
        let b = Belief::point(2, StateId::new(0));
        assert!(matches!(
            b.update(&p, ActionId::new(0), 1.into()),
            Err(Error::ImpossibleObservation { .. })
        ));
    }

    #[test]
    fn out_of_bounds_observation_is_an_error() {
        let p = noisy_pomdp();
        let b = Belief::uniform(2);
        assert!(matches!(
            b.update(&p, ActionId::new(0), 7.into()),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    /// Deterministic observation of the state; observing the "wrong"
    /// symbol has zero likelihood.
    fn deterministic_pomdp() -> Pomdp {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 1.0);
        pb.observation(1, 0, 1, 1.0);
        pb.build().unwrap()
    }

    #[test]
    fn robust_update_matches_exact_update_when_possible() {
        let p = noisy_pomdp();
        let b = Belief::uniform(2);
        let (exact, gamma) = b.update(&p, ActionId::new(0), 0.into()).unwrap();
        let (robust, gamma_r, path) = b
            .update_robust(&p, ActionId::new(0), 0.into(), 0.05)
            .unwrap();
        assert_eq!(path, RobustUpdate::Exact);
        assert_eq!(robust, exact);
        assert_eq!(gamma_r, gamma);
    }

    #[test]
    fn robust_update_survives_impossible_observations() {
        let p = deterministic_pomdp();
        let b = Belief::point(2, StateId::new(0));
        assert!(b.update(&p, ActionId::new(0), 1.into()).is_err());
        let (next, gamma, path) = b
            .update_robust(&p, ActionId::new(0), 1.into(), 0.1)
            .unwrap();
        assert_eq!(path, RobustUpdate::EpsilonMixed);
        assert!(gamma > 0.0);
        // The mixture kernel is state-independent on the impossible
        // branch here, so the posterior keeps the prediction's support.
        assert!((next.prob(StateId::new(0)) - 1.0).abs() < 1e-12);
        assert!((next.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn robust_update_mixture_weighs_likely_states_higher() {
        let p = deterministic_pomdp();
        // Mass on both states: observing o1 is possible (from state 1),
        // so the exact path runs and sharpens onto state 1.
        let b = Belief::from_probs(vec![0.7, 0.3]).unwrap();
        let (next, _, path) = b
            .update_robust(&p, ActionId::new(0), 1.into(), 0.1)
            .unwrap();
        assert_eq!(path, RobustUpdate::Exact);
        assert_eq!(next.prob(StateId::new(1)), 1.0);
    }

    #[test]
    fn robust_update_validates_epsilon_and_bounds() {
        let p = noisy_pomdp();
        let b = Belief::uniform(2);
        assert!(b
            .update_robust(&p, ActionId::new(0), 0.into(), 0.0)
            .is_err());
        assert!(b
            .update_robust(&p, ActionId::new(0), 0.into(), 1.5)
            .is_err());
        assert!(matches!(
            b.update_robust(&p, ActionId::new(0), 7.into(), 0.1),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn expected_reward_is_dot_product() {
        let p = noisy_pomdp();
        let b = Belief::from_probs(vec![0.25, 0.75]).unwrap();
        assert!((b.expected_reward(&p, ActionId::new(0)) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn most_likely_and_mass_queries() {
        let b = Belief::from_probs(vec![0.2, 0.5, 0.3]).unwrap();
        assert_eq!(b.most_likely(), (StateId::new(1), 0.5));
        assert!((b.prob_in(&[StateId::new(0), StateId::new(2)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_behaviour() {
        assert_eq!(Belief::point(3, StateId::new(0)).entropy(), 0.0);
        let u = Belief::uniform(4).entropy();
        assert!((u - (4.0f64).ln()).abs() < 1e-12);
    }
}
