//! Diagnosability analysis: how well do the observations separate
//! states?
//!
//! The paper's premise is that monitoring is imprecise — "one may never
//! know for certain which faults have occurred". This module
//! quantifies that imprecision: divergences between the per-state
//! observation distributions tell you which faults the monitors can
//! localise directly, which are confusable, and roughly how many
//! monitor sweeps separating two hypotheses takes. States with
//! *identical* observation distributions (e.g. two zombie servers
//! behind blind 50/50 routing) can only be told apart by acting —
//! which is exactly why recovery needs decision-theoretic control
//! rather than diagnose-then-fix.

use crate::{Error, Pomdp};
use bpr_mdp::{ActionId, StateId};

/// The dense observation distribution `q(·|s, a)`.
///
/// # Panics
///
/// Panics if an index is out of bounds.
pub fn observation_distribution(pomdp: &Pomdp, s: StateId, a: ActionId) -> Vec<f64> {
    let mut q = vec![0.0; pomdp.n_observations()];
    for (o, p) in pomdp.observations_on_entering(s, a) {
        q[o.index()] = p;
    }
    q
}

/// Total-variation distance `½ Σ_o |p(o) − q(o)|` between two
/// distributions; 0 for identical, 1 for disjoint support.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Kullback–Leibler divergence `Σ_o p(o) ln(p(o)/q(o))` in nats.
/// Returns `f64::INFINITY` when `p` puts mass where `q` has none.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut kl = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a > 0.0 {
            if b <= 0.0 {
                return f64::INFINITY;
            }
            kl += a * (a / b).ln();
        }
    }
    kl.max(0.0)
}

/// Bhattacharyya coefficient `Σ_o √(p(o)·q(o))` — 1 for identical
/// distributions, 0 for disjoint support.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bhattacharyya_coefficient(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter().zip(q).map(|(a, b)| (a * b).sqrt()).sum()
}

/// The pairwise confusion matrix of a model under one (observation)
/// action: entry `[i][j]` is the total-variation distance between
/// `q(·|s_i, a)` and `q(·|s_j, a)`. Zero off-diagonal entries identify
/// state pairs the monitors cannot separate at all.
///
/// # Errors
///
/// Returns [`Error::IndexOutOfBounds`] if `a` is out of bounds.
pub fn confusion_matrix(pomdp: &Pomdp, a: ActionId) -> Result<Vec<Vec<f64>>, Error> {
    if a.index() >= pomdp.n_actions() {
        return Err(Error::IndexOutOfBounds {
            what: "action",
            index: a.index(),
            bound: pomdp.n_actions(),
        });
    }
    let n = pomdp.n_states();
    let dists: Vec<Vec<f64>> = (0..n)
        .map(|s| observation_distribution(pomdp, StateId::new(s), a))
        .collect();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let tv = total_variation(&dists[i], &dists[j]);
            m[i][j] = tv;
            m[j][i] = tv;
        }
    }
    Ok(m)
}

/// A rough estimate of the number of independent monitor sweeps needed
/// to drive the posterior odds between two states from 1:1 to
/// `confidence : (1 − confidence)`, assuming the system sits in the
/// first state: `ln(odds) / KL(q_i ‖ q_j)`.
///
/// Returns `f64::INFINITY` for indistinguishable states and `0.0` when
/// one observation suffices (disjoint supports).
///
/// # Panics
///
/// Panics if `confidence` is not in `(0.5, 1)` or an index is out of
/// bounds.
pub fn sweeps_to_separate(
    pomdp: &Pomdp,
    truth: StateId,
    alternative: StateId,
    a: ActionId,
    confidence: f64,
) -> f64 {
    assert!(
        confidence > 0.5 && confidence < 1.0,
        "confidence must be in (0.5, 1)"
    );
    let p = observation_distribution(pomdp, truth, a);
    let q = observation_distribution(pomdp, alternative, a);
    let kl = kl_divergence(&p, &q);
    if kl == 0.0 {
        return f64::INFINITY;
    }
    let target_odds = confidence / (1.0 - confidence);
    (target_odds.ln() / kl).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PomdpBuilder;
    use bpr_mdp::MdpBuilder;

    fn three_state_pomdp() -> Pomdp {
        // States: 0 and 1 produce distinct observations, 2 mirrors 1.
        let mut mb = MdpBuilder::new(3, 1);
        for s in 0..3 {
            mb.transition(s, 0, s, 1.0);
        }
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 0.9).observation(0, 0, 1, 0.1);
        pb.observation(1, 0, 0, 0.2).observation(1, 0, 1, 0.8);
        pb.observation(2, 0, 0, 0.2).observation(2, 0, 1, 0.8);
        pb.build().unwrap()
    }

    #[test]
    fn divergence_basics() {
        let p = [0.5, 0.5];
        let q = [0.5, 0.5];
        assert_eq!(total_variation(&p, &q), 0.0);
        assert_eq!(kl_divergence(&p, &q), 0.0);
        assert!((bhattacharyya_coefficient(&p, &q) - 1.0).abs() < 1e-12);
        let r = [1.0, 0.0];
        let s = [0.0, 1.0];
        assert_eq!(total_variation(&r, &s), 1.0);
        assert_eq!(kl_divergence(&r, &s), f64::INFINITY);
        assert_eq!(bhattacharyya_coefficient(&r, &s), 0.0);
    }

    #[test]
    fn confusion_matrix_identifies_clones() {
        let p = three_state_pomdp();
        let m = confusion_matrix(&p, ActionId::new(0)).unwrap();
        assert_eq!(m[1][2], 0.0, "states 1 and 2 are observation clones");
        assert!(m[0][1] > 0.5);
        assert_eq!(m[0][1], m[1][0]);
        assert_eq!(m[0][0], 0.0);
        assert!(confusion_matrix(&p, ActionId::new(9)).is_err());
    }

    #[test]
    fn separation_sweeps_behave() {
        let p = three_state_pomdp();
        // Clones can never be separated.
        assert_eq!(
            sweeps_to_separate(&p, StateId::new(1), StateId::new(2), ActionId::new(0), 0.99),
            f64::INFINITY
        );
        // Distinct states separate in a finite number of sweeps that
        // grows with the confidence target.
        let low = sweeps_to_separate(&p, StateId::new(0), StateId::new(1), ActionId::new(0), 0.9);
        let high = sweeps_to_separate(
            &p,
            StateId::new(0),
            StateId::new(1),
            ActionId::new(0),
            0.9999,
        );
        assert!(low.is_finite() && low > 0.0);
        assert!(high > low);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        let p = three_state_pomdp();
        sweeps_to_separate(&p, StateId::new(0), StateId::new(1), ActionId::new(0), 0.4);
    }
}
