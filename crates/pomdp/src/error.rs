use std::fmt;

/// Errors produced by POMDP construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An index (state, action, or observation) was out of bounds.
    IndexOutOfBounds {
        /// What kind of index was offending.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
    },
    /// An observation distribution `q(·|s, a)` does not sum to 1.
    ObservationNotStochastic {
        /// Destination state of the malformed distribution.
        state: usize,
        /// Action of the malformed distribution.
        action: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A belief vector was not a probability distribution.
    InvalidBelief {
        /// Why the belief was rejected.
        reason: &'static str,
    },
    /// A belief update conditioned on an observation of probability 0.
    ImpossibleObservation {
        /// The conditioning action.
        action: usize,
        /// The impossible observation.
        observation: usize,
    },
    /// A requested bound has no finite value on this model (e.g. the
    /// BI-POMDP or blind-policy bound on an undiscounted recovery model).
    BoundDiverges {
        /// Which bound failed to exist.
        bound: &'static str,
    },
    /// An error surfaced from the underlying MDP machinery.
    Mdp(bpr_mdp::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            Error::ObservationNotStochastic { state, action, sum } => write!(
                f,
                "observation distribution for state {state}, action {action} sums to {sum}, not 1"
            ),
            Error::InvalidBelief { reason } => write!(f, "invalid belief state: {reason}"),
            Error::ImpossibleObservation {
                action,
                observation,
            } => write!(
                f,
                "cannot condition on observation {observation} with probability 0 under action {action}"
            ),
            Error::BoundDiverges { bound } => {
                write!(f, "the {bound} has no finite value on this model")
            }
            Error::Mdp(e) => write!(f, "mdp failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mdp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bpr_mdp::Error> for Error {
    fn from(e: bpr_mdp::Error) -> Error {
        Error::Mdp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errs = [
            Error::IndexOutOfBounds {
                what: "observation",
                index: 9,
                bound: 4,
            },
            Error::ObservationNotStochastic {
                state: 1,
                action: 0,
                sum: 0.3,
            },
            Error::InvalidBelief {
                reason: "entries must sum to 1",
            },
            Error::ImpossibleObservation {
                action: 0,
                observation: 2,
            },
            Error::BoundDiverges {
                bound: "BI-POMDP bound",
            },
            Error::Mdp(bpr_mdp::Error::EmptyModel),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn mdp_errors_convert_and_expose_source() {
        use std::error::Error as _;
        let e: Error = bpr_mdp::Error::EmptyModel.into();
        assert!(e.source().is_some());
    }
}
