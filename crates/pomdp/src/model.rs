//! POMDP model representation and validated construction.

use crate::Error;
use bpr_linalg::CsrMatrix;
use bpr_mdp::{ActionId, Mdp, StateId};
use rand::Rng;
use std::fmt;

/// Identifier of an observation (an index into the observation set).
///
/// # Examples
///
/// ```
/// use bpr_pomdp::ObservationId;
///
/// let o = ObservationId::new(5);
/// assert_eq!(o.index(), 5);
/// assert_eq!(o.to_string(), "o5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObservationId(usize);

impl ObservationId {
    /// Wraps a raw observation index.
    pub const fn new(index: usize) -> ObservationId {
        ObservationId(index)
    }

    /// The raw index into the observation set.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ObservationId {
    fn from(index: usize) -> ObservationId {
        ObservationId(index)
    }
}

impl fmt::Display for ObservationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A finite POMDP `(S, A, O, p, q, r)`.
///
/// Wraps an [`Mdp`] core and adds the observation model `q(o | s', a)`:
/// the probability of observing `o` when the system transitions *into*
/// state `s'` as a result of action `a` (paper §2). Construct through
/// [`PomdpBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Pomdp {
    mdp: Mdp,
    n_observations: usize,
    /// `observations[a]` is `n_states x n_observations`; row `s'` holds
    /// `q(· | s', a)`.
    observations: Vec<CsrMatrix>,
    /// `observations_t[a] = observations[a]ᵀ` (`n_observations x
    /// n_states`), precomputed at build time; row `o` is the sparse
    /// diagonal of the fused posterior operator `τ_{a,o}` (see
    /// [`Pomdp::observation_transpose`]).
    observations_t: Vec<CsrMatrix>,
    observation_labels: Vec<String>,
    /// Content hash over dynamics, rewards, and observations, computed
    /// once at build time (see [`Pomdp::fingerprint`]).
    fingerprint: u64,
}

impl Pomdp {
    /// The underlying MDP `(S, A, p, r)`.
    pub fn mdp(&self) -> &Mdp {
        &self.mdp
    }

    /// A content fingerprint (FNV-1a over dimensions, transition and
    /// observation probabilities, rewards, and durations), computed
    /// once at build time. Two models with the same fingerprint have
    /// bit-identical planning-relevant numerics, so the planner's
    /// cross-decision cache uses it as half of its epoch key; labels
    /// are not part of it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.mdp.n_states()
    }

    /// Number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.mdp.n_actions()
    }

    /// Number of observations `|O|`.
    pub fn n_observations(&self) -> usize {
        self.n_observations
    }

    /// Iterates over all observation ids.
    pub fn observations(&self) -> impl Iterator<Item = ObservationId> {
        (0..self.n_observations).map(ObservationId::new)
    }

    /// The probability `q(o | entered, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn observation_prob(
        &self,
        entered: impl Into<StateId>,
        action: impl Into<ActionId>,
        o: impl Into<ObservationId>,
    ) -> f64 {
        self.observations[action.into().index()].get(entered.into().index(), o.into().index())
    }

    /// The sparse observation matrix of one action (rows are entered
    /// states, columns observations).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn observation_matrix(&self, action: impl Into<ActionId>) -> &CsrMatrix {
        &self.observations[action.into().index()]
    }

    /// The transposed observation matrix of one action
    /// (`n_observations x n_states`; row `o` holds `q(o | ·, action)`),
    /// precomputed at build time.
    ///
    /// Row `o` is the sparse diagonal of the fused posterior operator
    /// `τ_{a,o} = diag(q(o|·,a)) ∘ P_aᵀ` (paper Eq. 3–4): the planning
    /// kernel applies `P_aᵀ` once per `(node, action)` via
    /// [`bpr_linalg::CsrMatrix::matvec_transpose_into`] and then derives
    /// every observation branch with one
    /// [`bpr_linalg::CsrMatrix::row_scaled_into`] over these rows —
    /// bit-identical to [`crate::Belief::successors`] but without the
    /// per-branch scatter/rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn observation_transpose(&self, action: impl Into<ActionId>) -> &CsrMatrix {
        &self.observations_t[action.into().index()]
    }

    /// Iterates over the observations `(o, q(o|s', a))` possible when
    /// entering `entered` under `action`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn observations_on_entering(
        &self,
        entered: impl Into<StateId>,
        action: impl Into<ActionId>,
    ) -> impl Iterator<Item = (ObservationId, f64)> + '_ {
        self.observations[action.into().index()]
            .row(entered.into().index())
            .map(|(o, q)| (ObservationId::new(o), q))
    }

    /// The label of an observation (defaults to `"o<i>"`).
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of bounds.
    pub fn observation_label(&self, o: impl Into<ObservationId>) -> &str {
        &self.observation_labels[o.into().index()]
    }

    /// Looks up an observation id by label.
    pub fn observation_by_label(&self, label: &str) -> Option<ObservationId> {
        self.observation_labels
            .iter()
            .position(|l| l == label)
            .map(ObservationId::new)
    }

    /// Samples a successor state `s' ~ p(·|s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn sample_transition<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: StateId,
        action: ActionId,
    ) -> StateId {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last = from;
        for (s2, p) in self.mdp.successors(from, action) {
            acc += p;
            last = s2;
            if u < acc {
                return s2;
            }
        }
        // Floating-point slack: fall back to the last successor.
        last
    }

    /// Samples an observation `o ~ q(·|entered, a)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds, or if the observation row
    /// is empty (the builder guarantees it never is).
    pub fn sample_observation<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entered: StateId,
        action: ActionId,
    ) -> ObservationId {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last = None;
        for (o, q) in self.observations_on_entering(entered, action) {
            acc += q;
            last = Some(o);
            if u < acc {
                return o;
            }
        }
        last.expect("observation distribution must be non-empty")
    }
}

/// Builder for [`Pomdp`] models: an already-built [`Mdp`] plus the
/// observation model.
///
/// # Examples
///
/// ```
/// use bpr_mdp::MdpBuilder;
/// use bpr_pomdp::PomdpBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mb = MdpBuilder::new(2, 1);
/// mb.transition(0, 0, 1, 1.0);
/// mb.transition(1, 0, 1, 1.0);
/// let mut pb = PomdpBuilder::new(mb.build()?, 2);
/// pb.observation(0, 0, 0, 1.0); // entering s0 yields o0
/// pb.observation(1, 0, 0, 0.25); // entering s1: o0 w.p. 1/4 ...
/// pb.observation(1, 0, 1, 0.75); // ... o1 w.p. 3/4
/// let pomdp = pb.build()?;
/// assert_eq!(pomdp.n_observations(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PomdpBuilder {
    mdp: Mdp,
    n_observations: usize,
    triplets: Vec<Vec<(usize, usize, f64)>>,
    observation_labels: Vec<String>,
}

impl PomdpBuilder {
    /// Starts a builder around an MDP core with `n_observations`
    /// possible observations.
    ///
    /// # Panics
    ///
    /// Panics if `n_observations` is zero.
    pub fn new(mdp: Mdp, n_observations: usize) -> PomdpBuilder {
        assert!(n_observations > 0, "POMDP needs at least one observation");
        let n_actions = mdp.n_actions();
        PomdpBuilder {
            mdp,
            n_observations,
            triplets: vec![Vec::new(); n_actions],
            observation_labels: (0..n_observations).map(|i| format!("o{i}")).collect(),
        }
    }

    /// Adds probability mass to `q(o | entered, action)`.
    ///
    /// Mass for the same triple accumulates across calls.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn observation(
        &mut self,
        entered: impl Into<StateId>,
        action: impl Into<ActionId>,
        o: impl Into<ObservationId>,
        q: f64,
    ) -> &mut PomdpBuilder {
        let (s, a, o) = (
            entered.into().index(),
            action.into().index(),
            o.into().index(),
        );
        assert!(s < self.mdp.n_states(), "entered-state {s} out of bounds");
        assert!(a < self.mdp.n_actions(), "action {a} out of bounds");
        assert!(o < self.n_observations, "observation {o} out of bounds");
        self.triplets[a].push((s, o, q));
        self
    }

    /// Declares that entering `entered` under *any* action produces the
    /// same observation distribution entry. A convenience for models
    /// (like the EMN system) whose monitors depend only on the state.
    pub fn observation_all_actions(
        &mut self,
        entered: impl Into<StateId>,
        o: impl Into<ObservationId>,
        q: f64,
    ) -> &mut PomdpBuilder {
        let (s, o) = (entered.into(), o.into());
        for a in 0..self.mdp.n_actions() {
            self.observation(s, a, o, q);
        }
        self
    }

    /// Sets a human-readable label for an observation.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of bounds.
    pub fn observation_label(
        &mut self,
        o: impl Into<ObservationId>,
        label: impl Into<String>,
    ) -> &mut PomdpBuilder {
        let o = o.into().index();
        assert!(o < self.n_observations, "observation {o} out of bounds");
        self.observation_labels[o] = label.into();
        self
    }

    /// Validates the observation model and builds the [`Pomdp`].
    ///
    /// Every `(entered state, action)` pair reachable in principle must
    /// have a full observation distribution; missing or non-unit rows
    /// are rejected.
    ///
    /// # Errors
    ///
    /// * [`Error::ObservationNotStochastic`] if any `q(·|s, a)` row does
    ///   not sum to 1 within `1e-9`.
    /// * [`Error::IndexOutOfBounds`] via the underlying matrix build if
    ///   triplets are malformed (the panicking setters normally prevent
    ///   this).
    pub fn build(&self) -> Result<Pomdp, Error> {
        const TOL: f64 = 1e-9;
        let n = self.mdp.n_states();
        let mut observations = Vec::with_capacity(self.mdp.n_actions());
        for a in 0..self.mdp.n_actions() {
            let m = CsrMatrix::from_triplets(n, self.n_observations, &self.triplets[a])
                .map_err(|e| Error::Mdp(bpr_mdp::Error::Linalg(e)))?;
            for s in 0..n {
                let mut sum = 0.0;
                for (_, q) in m.row(s) {
                    if !q.is_finite() || !(-TOL..=1.0 + TOL).contains(&q) {
                        return Err(Error::ObservationNotStochastic {
                            state: s,
                            action: a,
                            sum: q,
                        });
                    }
                    sum += q;
                }
                if (sum - 1.0).abs() > TOL {
                    return Err(Error::ObservationNotStochastic {
                        state: s,
                        action: a,
                        sum,
                    });
                }
            }
            observations.push(m);
        }
        let observations_t: Vec<CsrMatrix> = observations
            .iter()
            .map(|m| {
                // Row `o` of the transpose is the τ-operator diagonal
                // `q(o|·,a)`; "all quiet" rows are near-dense at fleet
                // scale, so mirror them for the vectorized kernels.
                let mut t = m.transpose();
                t.enable_dense_rows();
                t
            })
            .collect();
        let fingerprint = fingerprint_pomdp(&self.mdp, self.n_observations, &observations);
        Ok(Pomdp {
            mdp: self.mdp.clone(),
            n_observations: self.n_observations,
            observations,
            observations_t,
            observation_labels: self.observation_labels.clone(),
            fingerprint,
        })
    }
}

/// Folds one `u64` into an FNV-1a hash.
fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a content hash over everything that affects planning values:
/// dimensions, transition rows, rewards, durations, observation rows.
fn fingerprint_pomdp(mdp: &Mdp, n_observations: usize, observations: &[CsrMatrix]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv_fold(h, mdp.n_states() as u64);
    h = fnv_fold(h, mdp.n_actions() as u64);
    h = fnv_fold(h, n_observations as u64);
    for (a, q) in observations.iter().enumerate().take(mdp.n_actions()) {
        let p = mdp.transition_matrix(a);
        for s in 0..mdp.n_states() {
            for (s2, v) in p.row(s) {
                h = fnv_fold(h, s as u64);
                h = fnv_fold(h, s2 as u64);
                h = fnv_fold(h, v.to_bits());
            }
        }
        for &r in mdp.reward_vector(a) {
            h = fnv_fold(h, r.to_bits());
        }
        h = fnv_fold(h, mdp.duration(a).to_bits());
        for s in 0..q.nrows() {
            for (o, v) in q.row(s) {
                h = fnv_fold(h, s as u64);
                h = fnv_fold(h, o as u64);
                h = fnv_fold(h, v.to_bits());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_mdp::MdpBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn tiny_pomdp() -> Pomdp {
        // Two states, one action moving 0 -> 1 (1 absorbing), two obs.
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 0.5);
        mb.transition(0, 0, 0, 0.5);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 0.9);
        pb.observation(0, 0, 1, 0.1);
        pb.observation(1, 0, 1, 1.0);
        pb.build().unwrap()
    }

    #[test]
    fn model_accessors() {
        let p = tiny_pomdp();
        assert_eq!(p.n_states(), 2);
        assert_eq!(p.n_actions(), 1);
        assert_eq!(p.n_observations(), 2);
        assert_eq!(p.observation_prob(0, 0, 0), 0.9);
        assert_eq!(p.observation_prob(1, 0, 0), 0.0);
        assert_eq!(p.observation_label(1), "o1");
        assert_eq!(p.observation_by_label("o0"), Some(ObservationId::new(0)));
        assert_eq!(p.observation_by_label("nope"), None);
        assert_eq!(p.observations().count(), 2);
    }

    #[test]
    fn missing_observation_row_is_rejected() {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 1.0);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 1);
        pb.observation(0, 0, 0, 1.0);
        // State 1 has no observation distribution.
        assert!(matches!(
            pb.build(),
            Err(Error::ObservationNotStochastic { state: 1, .. })
        ));
    }

    #[test]
    fn non_unit_observation_row_is_rejected() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 0.5);
        pb.observation(0, 0, 1, 0.4);
        assert!(matches!(
            pb.build(),
            Err(Error::ObservationNotStochastic { .. })
        ));
    }

    #[test]
    fn observation_all_actions_covers_every_action() {
        let mut mb = MdpBuilder::new(1, 3);
        for a in 0..3 {
            mb.transition(0, a, 0, 1.0);
        }
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 1);
        pb.observation_all_actions(0, 0, 1.0);
        let p = pb.build().unwrap();
        for a in 0..3 {
            assert_eq!(p.observation_prob(0, a, 0), 1.0);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "20k sampling draws are too slow under miri")]
    fn sampling_respects_distributions() {
        let p = tiny_pomdp();
        let mut rng = StdRng::seed_from_u64(7);
        let mut to_one = 0usize;
        let mut obs_zero = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let s2 = p.sample_transition(&mut rng, StateId::new(0), ActionId::new(0));
            if s2.index() == 1 {
                to_one += 1;
            }
            let o = p.sample_observation(&mut rng, StateId::new(0), ActionId::new(0));
            if o.index() == 0 {
                obs_zero += 1;
            }
        }
        let frac_one = to_one as f64 / n as f64;
        let frac_obs0 = obs_zero as f64 / n as f64;
        assert!((frac_one - 0.5).abs() < 0.02, "frac_one = {frac_one}");
        assert!((frac_obs0 - 0.9).abs() < 0.02, "frac_obs0 = {frac_obs0}");
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let p = tiny_pomdp();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                p.sample_transition(&mut a, StateId::new(0), ActionId::new(0)),
                p.sample_transition(&mut b, StateId::new(0), ActionId::new(0))
            );
        }
    }

    #[test]
    fn fingerprint_is_content_stable_and_sensitive() {
        assert_eq!(tiny_pomdp().fingerprint(), tiny_pomdp().fingerprint());
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 0.5);
        mb.transition(0, 0, 0, 0.5);
        mb.transition(1, 0, 1, 1.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
        pb.observation(0, 0, 0, 0.8);
        pb.observation(0, 0, 1, 0.2);
        pb.observation(1, 0, 1, 1.0);
        let variant = pb.build().unwrap();
        assert_ne!(tiny_pomdp().fingerprint(), variant.fingerprint());
    }

    #[test]
    fn observation_id_display() {
        assert_eq!(ObservationId::new(3).to_string(), "o3");
        assert_eq!(ObservationId::from(2).index(), 2);
    }
}
