//! Edge-case tests for bound sets, eviction, persistence, and the
//! diagnosis helpers.

use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{
    fib_bound, qmdp_bound, ra_bound, simplex_grid, ValueBound, VectorSetBound,
};
use bpr_pomdp::diagnosis::{
    bhattacharyya_coefficient, confusion_matrix, kl_divergence, total_variation,
};
use bpr_pomdp::{Belief, Pomdp, PomdpBuilder};

fn small_recovery_pomdp() -> Pomdp {
    let mut mb = MdpBuilder::new(3, 3);
    for a in 0..3 {
        mb.transition(0, a, 0, 1.0);
    }
    for s in 1..3 {
        for a in 0..3 {
            if a == s {
                mb.transition(s, a, 0, 1.0);
            } else {
                mb.transition(s, a, s, 1.0);
            }
            mb.reward(s, a, -(1.0 + s as f64 * 0.5));
        }
    }
    let mut pb = PomdpBuilder::new(mb.build().unwrap(), 3);
    for s in 0..3 {
        for o in 0..3 {
            pb.observation_all_actions(s, o, if s == o { 0.8 } else { 0.1 });
        }
    }
    pb.build().unwrap()
}

#[test]
fn eviction_under_churn_preserves_validity() {
    // Hammer a capped set with backups at rotating beliefs; the bound
    // must stay below QMDP at every probe after arbitrary evictions.
    let p = small_recovery_pomdp();
    let upper = qmdp_bound(&p, bpr_mdp::value_iteration::Discount::Undiscounted).unwrap();
    let mut set = ra_bound(&p, &Default::default()).unwrap();
    let probes = simplex_grid(3, 4);
    for round in 0..30 {
        let b = &probes[round % probes.len()];
        incremental_backup(&p, &mut set, b, 1.0).unwrap();
        set.evict_to(3);
        assert!(set.len() <= 3);
        for probe in &probes {
            assert!(
                set.value(probe) <= upper.value(probe) + 1e-7,
                "round {round}: bound crossed QMDP"
            );
        }
    }
}

#[test]
fn tsv_roundtrip_of_a_refined_set() {
    let p = small_recovery_pomdp();
    let mut set = ra_bound(&p, &Default::default()).unwrap();
    for b in simplex_grid(3, 3) {
        incremental_backup(&p, &mut set, &b, 1.0).unwrap();
    }
    let restored = VectorSetBound::from_tsv(3, &set.to_tsv()).unwrap();
    for b in simplex_grid(3, 5) {
        assert!(
            (restored.value(&b) - set.value(&b)).abs() < 1e-12,
            "roundtrip value drift at {b:?}"
        );
    }
}

#[test]
fn fib_refines_qmdp_when_observations_are_noisy() {
    // With genuinely noisy observations and stochastic outcomes FIB can
    // be strictly tighter than QMDP somewhere; at minimum it must never
    // be looser.
    let mut mb = MdpBuilder::new(2, 2);
    mb.transition(0, 0, 0, 0.5);
    mb.transition(0, 0, 1, 0.5);
    mb.reward(0, 0, -1.0);
    mb.transition(0, 1, 1, 1.0).reward(0, 1, -2.0);
    mb.transition(1, 0, 1, 1.0);
    mb.transition(1, 1, 1, 1.0);
    let mut pb = PomdpBuilder::new(mb.build().unwrap(), 2);
    pb.observation_all_actions(0, 0, 0.6);
    pb.observation_all_actions(0, 1, 0.4);
    pb.observation_all_actions(1, 0, 0.4);
    pb.observation_all_actions(1, 1, 0.6);
    let p = pb.build().unwrap();
    let q = qmdp_bound(&p, bpr_mdp::value_iteration::Discount::Undiscounted).unwrap();
    let f = fib_bound(
        &p,
        bpr_mdp::value_iteration::Discount::Undiscounted,
        &Default::default(),
    )
    .unwrap();
    for b in simplex_grid(2, 10) {
        assert!(f.value(&b) <= q.value(&b) + 1e-9);
    }
}

#[test]
fn divergence_measures_are_consistent() {
    let p = small_recovery_pomdp();
    let m = confusion_matrix(&p, ActionId::new(0)).unwrap();
    // Symmetric with zero diagonal.
    for (i, row) in m.iter().enumerate() {
        assert_eq!(row[i], 0.0);
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, m[j][i]);
        }
    }
    // TV and Bhattacharyya orderings agree on this symmetric channel.
    let d0 = bpr_pomdp::diagnosis::observation_distribution(&p, StateId::new(0), ActionId::new(0));
    let d1 = bpr_pomdp::diagnosis::observation_distribution(&p, StateId::new(1), ActionId::new(0));
    let tv = total_variation(&d0, &d1);
    let bc = bhattacharyya_coefficient(&d0, &d1);
    let kl = kl_divergence(&d0, &d1);
    assert!(tv > 0.0 && tv <= 1.0);
    assert!(bc > 0.0 && bc < 1.0);
    assert!(kl > 0.0 && kl.is_finite());
    // Pinsker: TV <= sqrt(KL / 2).
    assert!(tv <= (kl / 2.0).sqrt() + 1e-9);
}

#[test]
fn grid_sizes_match_binomials() {
    // C(r + n - 1, n - 1) points on the grid.
    let binom = |n: u64, k: u64| -> u64 {
        let mut acc = 1u64;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    };
    for n in 1..=4usize {
        for r in 1..=5usize {
            let expect = binom((r + n - 1) as u64, (n - 1) as u64);
            assert_eq!(simplex_grid(n, r).len() as u64, expect, "n={n}, r={r}");
        }
    }
}

#[test]
fn backups_on_point_beliefs_recover_exact_state_values() {
    // Repeated backups at the vertex beliefs converge to the true MDP
    // optimal values there for this fully-observable-per-vertex case...
    // more precisely, the bound at each vertex must reach the value of
    // the best single-action-then-optimal plan, which here equals the
    // MDP optimum because transitions are deterministic.
    let p = small_recovery_pomdp();
    let sol = bpr_mdp::value_iteration::ValueIteration::new(
        bpr_mdp::value_iteration::Discount::Undiscounted,
    )
    .solve(p.mdp())
    .unwrap();
    let mut set = ra_bound(&p, &Default::default()).unwrap();
    for _ in 0..20 {
        for s in 0..3 {
            incremental_backup(&p, &mut set, &Belief::point(3, StateId::new(s)), 1.0).unwrap();
        }
    }
    for s in 0..3 {
        let v = set.value(&Belief::point(3, StateId::new(s)));
        assert!(
            (v - sol.values[s]).abs() < 1e-6,
            "vertex {s}: bound {v} vs optimal {}",
            sol.values[s]
        );
    }
}
