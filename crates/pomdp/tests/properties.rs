//! Property-based tests of the POMDP layer: belief algebra, bound-set
//! invariants, backup monotonicity, and tree-expansion consistency on
//! randomly generated models.

use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ra_bound, ValueBound};
use bpr_pomdp::{tree, Belief, Pomdp, PomdpBuilder};
use proptest::prelude::*;

/// A random POMDP with recovery shape: state 0 absorbing & free, every
/// other state fixable, full-support observation noise.
fn arb_pomdp() -> impl Strategy<Value = Pomdp> {
    (2usize..=5, 2usize..=4, 2usize..=4, 0.55f64..0.95)
        .prop_flat_map(|(n, na, no, acc)| {
            (
                Just(n),
                Just(na),
                Just(no),
                Just(acc),
                proptest::collection::vec(0.1f64..2.0, n * na),
            )
        })
        .prop_map(|(n, na, no, acc, costs)| {
            let mut b = MdpBuilder::new(n, na);
            for a in 0..na {
                b.transition(0, a, 0, 1.0);
            }
            for s in 1..n {
                for a in 0..na {
                    if a == s % na {
                        b.transition(s, a, 0, 1.0);
                    } else {
                        b.transition(s, a, s, 1.0);
                    }
                    b.reward(s, a, -costs[s * na + a]);
                }
            }
            let mdp = b.build().expect("mdp builds");
            let mut pb = PomdpBuilder::new(mdp, no);
            for s in 0..n {
                let truth = s % no;
                let spread = (1.0 - acc) / (no - 1) as f64;
                for o in 0..no {
                    pb.observation_all_actions(s, o, if o == truth { acc } else { spread });
                }
            }
            pb.build().expect("pomdp builds")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn observation_probabilities_are_a_distribution(p in arb_pomdp()) {
        let belief = Belief::uniform(p.n_states());
        for a in 0..p.n_actions() {
            let gammas = belief.observation_probs(&p, ActionId::new(a));
            let total: f64 = gammas.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(gammas.iter().all(|&g| g >= -1e-12));
        }
    }

    #[test]
    fn successors_partition_probability(p in arb_pomdp()) {
        let n = p.n_states();
        let belief = Belief::uniform(n);
        for a in 0..p.n_actions() {
            let succ = belief.successors(&p, ActionId::new(a), 0.0);
            let total: f64 = succ.iter().map(|(_, g, _)| g).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for (_, g, next) in succ {
                prop_assert!(g > 0.0);
                let sum: f64 = next.probs().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bound_set_value_is_max_of_members(p in arb_pomdp()) {
        let ra = ra_bound(&p, &Default::default()).expect("RA exists");
        let belief = Belief::uniform(p.n_states());
        let v = ra.value(&belief);
        let best = ra
            .iter()
            .map(|b| b.iter().zip(belief.probs()).map(|(x, y)| x * y).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((v - best).abs() < 1e-12);
    }

    #[test]
    fn backup_is_monotone_everywhere_not_just_at_the_point(
        p in arb_pomdp(),
        seed in 0u64..50,
    ) {
        // Adding a backup vector can only raise the max over
        // hyperplanes at EVERY belief.
        let mut set = ra_bound(&p, &Default::default()).expect("RA exists");
        let n = p.n_states();
        let probes: Vec<Belief> = (0..n)
            .map(|s| Belief::point(n, StateId::new(s)))
            .chain([Belief::uniform(n)])
            .collect();
        let before: Vec<f64> = probes.iter().map(|b| set.value(b)).collect();
        let backup_at = Belief::point(n, StateId::new((seed as usize) % n));
        incremental_backup(&p, &mut set, &backup_at, 1.0).expect("backup");
        for (probe, old) in probes.iter().zip(before) {
            prop_assert!(set.value(probe) + 1e-12 >= old);
        }
    }

    #[test]
    fn tree_value_is_monotone_in_depth_with_ra_leaves(
        p in arb_pomdp(),
        weights in proptest::collection::vec(0.01f64..1.0, 5),
    ) {
        let n = p.n_states();
        let sum: f64 = weights[..n].iter().sum();
        let b = Belief::from_probs(weights[..n].iter().map(|w| w / sum).collect())
            .expect("valid belief");
        let ra = ra_bound(&p, &Default::default()).expect("RA exists");
        let v1 = tree::expand(&p, &b, 1, &ra, 1.0).expect("d1").value;
        let v2 = tree::expand(&p, &b, 2, &ra, 1.0).expect("d2").value;
        prop_assert!(v2 + 1e-9 >= v1, "depth 2 ({v2}) below depth 1 ({v1})");
        prop_assert!(v1 + 1e-9 >= ra.value(&b), "L_p dropped below the bound");
    }

    #[test]
    fn belief_update_is_bayes_consistent(p in arb_pomdp(), seed in 0u64..100) {
        // After updating on observation o, re-weighting by gamma must
        // recover the predicted distribution: sum_o gamma(o) pi'(s|o)
        // == pred(s).
        let n = p.n_states();
        let belief = Belief::uniform(n);
        let a = ActionId::new((seed as usize) % p.n_actions());
        let pred = belief.predict(&p, a);
        let mut recomposed = vec![0.0; n];
        for (_, gamma, next) in belief.successors(&p, a, 0.0) {
            for (s, q) in next.probs().iter().enumerate() {
                recomposed[s] += gamma * q;
            }
        }
        for s in 0..n {
            prop_assert!((recomposed[s] - pred[s]).abs() < 1e-9);
        }
    }
}
