//! Property-based tests of the linear-algebra substrate.

use bpr_linalg::{dense, lu, solve, CsrMatrix};
use proptest::prelude::*;

/// A random dense matrix as a flat vector plus its dimensions.
fn arb_dense(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c).prop_map(move |data| (r, c, data))
    })
}

/// A random sub-stochastic square matrix (row sums <= `max_mass`).
fn arb_substochastic(max_dim: usize, max_mass: f64) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_dim)
        .prop_flat_map(move |n| {
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, n), n)
                .prop_map(move |rows| (n, rows))
        })
        .prop_map(move |(n, rows)| {
            let mut triplets = Vec::new();
            for (r, row) in rows.iter().enumerate() {
                let sum: f64 = row.iter().sum();
                if sum <= 0.0 {
                    continue;
                }
                let scale = max_mass / sum.max(max_mass);
                for (c, &v) in row.iter().enumerate() {
                    if v > 1e-3 {
                        triplets.push((r, c, v * scale.min(max_mass / sum)));
                    }
                }
            }
            CsrMatrix::from_triplets(n, n, &triplets).expect("triplets in bounds")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_dense((r, c, data) in arb_dense(6)) {
        let m = CsrMatrix::from_dense(r, c, &data).unwrap();
        let back = m.to_dense();
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(m.nrows(), r);
        prop_assert_eq!(m.ncols(), c);
    }

    #[test]
    fn matvec_matches_dense_multiply((r, c, data) in arb_dense(6), seed in 0u64..100) {
        let m = CsrMatrix::from_dense(r, c, &data).unwrap();
        let x: Vec<f64> = (0..c).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let y = m.matvec(&x).unwrap();
        for row in 0..r {
            let expect: f64 = (0..c).map(|col| data[row * c + col] * x[col]).sum();
            prop_assert!((y[row] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive((r, c, data) in arb_dense(5)) {
        let m = CsrMatrix::from_dense(r, c, &data).unwrap();
        let tt = m.transpose().transpose();
        prop_assert_eq!(m.to_dense(), tt.to_dense());
    }

    #[test]
    fn transpose_matvec_agrees((r, c, data) in arb_dense(5), seed in 0u64..50) {
        let m = CsrMatrix::from_dense(r, c, &data).unwrap();
        let x: Vec<f64> = (0..r).map(|i| ((seed + i as u64) % 5) as f64 * 0.5 - 1.0).collect();
        let fast = m.matvec_transpose(&x).unwrap();
        let slow = m.transpose().matvec(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn iterative_solvers_agree_with_lu(m in arb_substochastic(7, 0.85), seed in 0u64..100) {
        let n = m.nrows();
        let b: Vec<f64> = (0..n)
            .map(|i| -(((seed + i as u64) % 9) as f64) / 3.0)
            .collect();
        let exact = solve::direct(&m, &b).unwrap();
        let opts = solve::IterOpts::default();
        let gs = solve::gauss_seidel(&m, &b, &opts).unwrap();
        let jc = solve::jacobi(&m, &b, &opts).unwrap();
        let sr = solve::sor(&m, &b, &opts.clone().with_omega(1.3)).unwrap();
        prop_assert!(dense::dist_inf(&gs, &exact) < 1e-6);
        prop_assert!(dense::dist_inf(&jc, &exact) < 1e-6);
        prop_assert!(dense::dist_inf(&sr, &exact) < 1e-6);
    }

    #[test]
    fn lu_solves_diagonally_dominant(n in 1usize..7, seed in 0u64..200) {
        let mut a = vec![0.0; n * n];
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        for cell in a.iter_mut().take(n * n) {
            *cell = next();
        }
        for i in 0..n {
            a[i * n + i] += n as f64 + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = lu::solve_dense(n, &a, &b).unwrap();
        for r in 0..n {
            let got: f64 = (0..n).map(|c| a[r * n + c] * x[c]).sum();
            prop_assert!((got - b[r]).abs() < 1e-8);
        }
    }

    #[test]
    fn norms_satisfy_standard_inequalities(v in proptest::collection::vec(-5.0f64..5.0, 1..12)) {
        let inf = dense::norm_inf(&v);
        let one = dense::norm_1(&v);
        let two = dense::norm_2(&v);
        let n = v.len() as f64;
        prop_assert!(inf <= one + 1e-12);
        prop_assert!(inf <= two + 1e-12);
        prop_assert!(two <= one + 1e-12);
        prop_assert!(one <= n * inf + 1e-12);
    }

    #[test]
    fn normalize_l1_produces_distributions(v in proptest::collection::vec(0.0f64..5.0, 1..12)) {
        let mut v2 = v.clone();
        let s = dense::normalize_l1(&mut v2);
        if s > 0.0 {
            let total: f64 = v2.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(v2.iter().all(|&p| p >= 0.0));
        } else {
            prop_assert_eq!(v, v2);
        }
    }
}
