//! Dense LU factorisation with partial pivoting.
//!
//! Used for exact solves of small systems — verification of the
//! iterative solvers in tests and exact RA-Bound computation on toy
//! models. Not intended for large matrices; the recovery models that
//! motivate this workspace solve their (sparse) systems with
//! [`crate::solve`] instead.

use crate::Error;

/// A dense LU factorisation `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use bpr_linalg::lu::Lu;
///
/// # fn main() -> Result<(), bpr_linalg::Error> {
/// // Solve [2 1; 1 3] x = [3; 5].
/// let lu = Lu::factor(2, &[2.0, 1.0, 1.0, 3.0])?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Packed LU factors, row-major: `U` on and above the diagonal, the
    /// unit-lower-triangular `L` (without its diagonal) below.
    lu: Vec<f64>,
    /// Row permutation applied to the right-hand side.
    perm: Vec<usize>,
}

impl Lu {
    /// Factors a dense row-major `n x n` matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `a.len() != n * n`.
    /// * [`Error::Singular`] if a pivot column has no usable pivot.
    /// * [`Error::NotFinite`] if the input contains NaN or infinities.
    pub fn factor(n: usize, a: &[f64]) -> Result<Lu, Error> {
        if a.len() != n * n {
            return Err(Error::DimensionMismatch {
                expected: n * n,
                actual: a.len(),
                what: "lu input length",
            });
        }
        if !crate::dense::all_finite(a) {
            return Err(Error::NotFinite { what: "lu input" });
        }
        let mut lu = a.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut piv = k;
            let mut piv_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > piv_val {
                    piv = r;
                    piv_val = v;
                }
            }
            if piv_val < f64::EPSILON * 16.0 {
                return Err(Error::Singular { pivot: k });
            }
            if piv != k {
                for c in 0..n {
                    lu.swap(k * n + c, piv * n + c);
                }
                perm.swap(k, piv);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    lu[r * n + c] -= factor * lu[k * n + c];
                }
            }
        }
        Ok(Lu { n, lu, perm })
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // substitution indexes `x` and the packed factor together
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, Error> {
        let n = self.n;
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: b.len(),
                what: "lu rhs length",
            });
        }
        // Forward substitution on the permuted rhs (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[r * n + c] * x[c];
            }
            x[r] = acc;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[r * n + c] * x[c];
            }
            x[r] = acc / self.lu[r * n + r];
        }
        Ok(x)
    }
}

/// Convenience wrapper: factor and solve in one call.
///
/// # Errors
///
/// Propagates the errors of [`Lu::factor`] and [`Lu::solve`].
pub fn solve_dense(n: usize, a: &[f64], b: &[f64]) -> Result<Vec<f64>, Error> {
    Lu::factor(n, a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // A = [[4, 3], [6, 3]], b = [10, 12] => x = [1, 2].
        let x = solve_dense(2, &[4.0, 3.0, 6.0, 3.0], &[10.0, 12.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading entry zero forces a row swap.
        let x = solve_dense(2, &[0.0, 1.0, 1.0, 0.0], &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let err = solve_dense(2, &[1.0, 2.0, 2.0, 4.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, Error::Singular { .. }));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        assert!(matches!(
            Lu::factor(2, &[1.0, 2.0, 3.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        let lu = Lu::factor(1, &[2.0]).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_input_is_reported() {
        assert!(matches!(
            Lu::factor(1, &[f64::NAN]),
            Err(Error::NotFinite { .. })
        ));
    }

    #[test]
    fn reproduces_identity_action() {
        let lu = Lu::factor(3, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let b = [1.5, -2.5, 0.25];
        assert_eq!(lu.solve(&b).unwrap(), b.to_vec());
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn random_systems_roundtrip() {
        // Deterministic pseudo-random matrices; verify A * solve(b) == b.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in 1..=8 {
            let mut a: Vec<f64> = (0..n * n).map(|_| next()).collect();
            // Diagonal dominance guarantees non-singularity.
            for i in 0..n {
                a[i * n + i] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve_dense(n, &a, &b).unwrap();
            for r in 0..n {
                let got: f64 = (0..n).map(|c| a[r * n + c] * x[c]).sum();
                assert!((got - b[r]).abs() < 1e-9, "n={n} row={r}");
            }
        }
    }
}
