//! Compressed sparse row (CSR) matrices.

use crate::Error;

/// A sparse matrix in compressed sparse row format.
///
/// The matrix is immutable once built; construct it from triplets with
/// [`CsrMatrix::from_triplets`] (duplicate entries are summed) or from a
/// dense row-major slice with [`CsrMatrix::from_dense`].
///
/// # Examples
///
/// ```
/// use bpr_linalg::CsrMatrix;
///
/// # fn main() -> Result<(), bpr_linalg::Error> {
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.get(0, 2), 2.0);
/// assert_eq!(m.get(1, 0), 0.0);
/// let y = m.matvec(&[1.0, 1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` pairs are summed; exact zeros are kept out
    /// of the structure. Triplets may be in any order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any triplet lies outside
    /// `nrows x ncols`, and [`Error::NotFinite`] if any value is NaN or
    /// infinite.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<CsrMatrix, Error> {
        for &(r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(Error::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            if !v.is_finite() {
                return Err(Error::NotFinite {
                    what: "matrix triplet value",
                });
            }
        }
        // Sort triplet indices by (row, col); equal keys end up adjacent
        // so duplicates can be merged in a single pass.
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        order.sort_unstable_by_key(|&i| (triplets[i].0, triplets[i].1));

        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut cur_row = 0usize;
        for &i in &order {
            let (r, c, v) = triplets[i];
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr.len() == r + 1) {
                if last_c == c && !values.is_empty() && col_idx.len() > row_ptr[r] {
                    *values.last_mut().expect("nonempty") += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while cur_row < nrows {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        debug_assert_eq!(row_ptr.len(), nrows + 1);

        // Drop exact zeros produced by cancellation.
        let mut m = CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        m.prune_zeros();
        Ok(m)
    }

    /// Creates a matrix from a dense row-major slice.
    ///
    /// Entries with absolute value `0.0` are not stored.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Result<CsrMatrix, Error> {
        if data.len() != nrows * ncols {
            return Err(Error::DimensionMismatch {
                expected: nrows * ncols,
                actual: data.len(),
                what: "dense data length",
            });
        }
        let mut triplets = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(nrows, ncols, &triplets)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> CsrMatrix {
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &triplets).expect("identity triplets are in bounds")
    }

    /// Creates an `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> CsrMatrix {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    fn prune_zeros(&mut self) {
        if !self.values.contains(&0.0) {
            return;
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        row_ptr.push(0);
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.values[k] != 0.0 {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if it is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates over the stored `(col, value)` pairs of one row, in
    /// ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row(&self, row: usize) -> RowIter<'_> {
        assert!(row < self.nrows, "row out of bounds");
        RowIter {
            matrix: self,
            pos: self.row_ptr[row],
            end: self.row_ptr[row + 1],
        }
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, Error> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = self * x`, writing into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.ncols()`
    /// or `y.len() != self.nrows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), Error> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
                what: "matvec input",
            });
        }
        if y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
                what: "matvec output",
            });
        }
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Computes `y = selfᵀ * x` (equivalently `xᵀ · self`).
    ///
    /// This is the kernel of the belief propagation step
    /// `π'(s) ∝ Σ_{s'} p(s|s',a) π(s')`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.nrows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, Error> {
        let mut y = vec![0.0; self.ncols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = selfᵀ * x`, writing into a caller-provided buffer.
    ///
    /// Bit-identical to [`CsrMatrix::matvec_transpose`] (same traversal
    /// and accumulation order); the buffer variant exists so hot loops
    /// can reuse scratch instead of allocating per call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.nrows()`
    /// or `y.len() != self.ncols()`.
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), Error> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                expected: self.nrows,
                actual: x.len(),
                what: "transpose matvec input",
            });
        }
        if y.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: y.len(),
                what: "transpose matvec output",
            });
        }
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[k]] += self.values[k] * xr;
            }
        }
        Ok(())
    }

    /// Fused row gather-and-scale: writes `out[c] = self[row, c] * x[c]`
    /// for every stored entry of `row` (zero elsewhere) and returns the
    /// sum of those products, accumulated in ascending column order.
    ///
    /// This is the diagonal-scale half of a fused posterior operator
    /// `τ = diag(row) ∘ M`: apply `M` once with
    /// [`CsrMatrix::matvec_transpose_into`], then this per row. Since
    /// the skipped columns contribute exactly `+0.0` and every product
    /// here is a plain `v * x[c]`, the returned sum equals a dense
    /// left-to-right sum over `out` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if `row >= self.nrows()` and
    /// [`Error::DimensionMismatch`] if `x` or `out` is not `ncols` long.
    pub fn row_scaled_into(&self, row: usize, x: &[f64], out: &mut [f64]) -> Result<f64, Error> {
        if row >= self.nrows {
            return Err(Error::IndexOutOfBounds {
                row,
                col: 0,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
                what: "row_scaled input",
            });
        }
        if out.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: out.len(),
                what: "row_scaled output",
            });
        }
        out.fill(0.0);
        let mut acc = 0.0;
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            let c = self.col_idx[k];
            let t = self.values[k] * x[c];
            out[c] = t;
            acc += t;
        }
        Ok(acc)
    }

    /// Returns the explicit transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                triplets.push((self.col_idx[k], r, self.values[k]));
            }
        }
        CsrMatrix::from_triplets(self.ncols, self.nrows, &triplets)
            .expect("transposed triplets are in bounds")
    }

    /// Sum of the stored entries of each row.
    ///
    /// For a stochastic matrix every row sum is `1.0`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Returns a copy with every entry multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> CsrMatrix {
        let mut m = self.clone();
        for v in &mut m.values {
            *v *= factor;
        }
        m.prune_zeros();
        m
    }

    /// Converts to a dense row-major `Vec` (for tests and tiny models).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                d[r * self.ncols + self.col_idx[k]] = self.values[k];
            }
        }
        d
    }

    /// True if every row sums to `1.0 ± tol` and all entries are in
    /// `[0, 1 + tol]` — i.e. the matrix is (row-)stochastic.
    pub fn is_stochastic(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| (-tol..=1.0 + tol).contains(&v))
            && self.row_sums().iter().all(|&s| (s - 1.0).abs() <= tol)
    }
}

/// Iterator over the `(column, value)` pairs of a single matrix row.
///
/// Produced by [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    matrix: &'a CsrMatrix,
    pos: usize,
    end: usize,
}

impl Iterator for RowIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        if self.pos >= self.end {
            return None;
        }
        let item = (self.matrix.col_idx[self.pos], self.matrix.values[self.pos]);
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_roundtrip_dense() {
        let dense = [1.0, 0.0, 2.0, 0.0, 0.0, -3.0];
        let m = CsrMatrix::from_dense(2, 3, &dense).unwrap();
        assert_eq!(m.to_dense(), dense.to_vec());
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 0.5), (0, 1, 0.25), (0, 0, 1.0)]).unwrap();
        assert_eq!(m.get(0, 1), 0.75);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn cancelled_duplicates_are_pruned() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        let err = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, Error::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn non_finite_triplet_is_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).unwrap_err();
        assert!(matches!(err, Error::NotFinite { .. }));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, -1.0, 4.0]).unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![5.0, 10.0]);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let m = CsrMatrix::identity(2);
        assert!(matches!(
            m.matvec(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_matvec_agrees_with_explicit_transpose() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.5, 0.0, 4.0]).unwrap();
        let x = [3.0, -1.0];
        let via_kernel = m.matvec_transpose(&x).unwrap();
        let via_transpose = m.transpose().matvec(&x).unwrap();
        assert_eq!(via_kernel, via_transpose);
    }

    #[test]
    fn identity_is_stochastic() {
        assert!(CsrMatrix::identity(4).is_stochastic(1e-12));
    }

    #[test]
    fn row_iterator_is_sorted_and_exact() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 1, 2.0), (0, 0, 3.0)]).unwrap();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 3.0), (1, 2.0), (3, 1.0)]);
        assert_eq!(m.row(0).len(), 3);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0, 1.0]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn scaled_multiplies_entries() {
        let m = CsrMatrix::identity(2).scaled(2.5);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 1), 2.5);
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let m = CsrMatrix::from_dense(2, 2, &[0.25, 0.75, 1.0, 0.0]).unwrap();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert!(m.is_stochastic(1e-12));
    }
}
