//! Compressed sparse row (CSR) matrices.
//!
//! # SIMD layout notes
//!
//! The planning hot path (`bpr-pomdp`'s fused τ-operator) runs two
//! kernels per tree node: a transposed SpMV (belief prediction) and a
//! fused row gather-and-scale (observation posterior). Both have
//! `*_unchecked` variants that skip the `Result`-returning dimension
//! validation (`debug_assert!`ed instead — the workspace forbids
//! `unsafe`, so "unchecked" here means "no `Result` plumbing", all
//! slice accesses stay bounds-checked by the compiler and the inner
//! loops are written as slice zips so those checks vectorize away).
//!
//! High-fill rows additionally carry a *dense mirror*: rows whose fill
//! ratio reaches [`CsrMatrix::DENSE_ROW_MIN_FILL`] (on matrices of at
//! least [`CsrMatrix::DENSE_ROW_MIN_COLS`] columns, opted in via
//! [`CsrMatrix::enable_dense_rows`]) are stored a second time as
//! contiguous value lanes padded to a multiple of 8 so consecutive
//! rows start on 64-byte boundaries. On those rows the indirect
//! `y[col[k]] += v·x` scatter becomes a contiguous `y[j] += d[j]·x`
//! axpy and the gather-scale becomes an elementwise product — both
//! autovectorize. Reductions (`row_scaled` sums) stay a single scalar
//! accumulator in ascending column order: the dense mirror only adds
//! `+0.0` terms at padded positions, which is bitwise inert because
//! every stored value is `> 0` (enforced at mirror build time) and the
//! inputs are non-negative (debug-asserted) — so results are
//! bit-identical to the sparse path.

use crate::Error;

/// A sparse matrix in compressed sparse row format.
///
/// The matrix is immutable once built; construct it from triplets with
/// [`CsrMatrix::from_triplets`] (duplicate entries are summed) or from a
/// dense row-major slice with [`CsrMatrix::from_dense`].
///
/// # Examples
///
/// ```
/// use bpr_linalg::CsrMatrix;
///
/// # fn main() -> Result<(), bpr_linalg::Error> {
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.get(0, 2), 2.0);
/// assert_eq!(m.get(1, 0), 0.0);
/// let y = m.matvec(&[1.0, 1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Padded dense mirrors of high-fill rows (see module docs); an
    /// acceleration structure, never part of the matrix's identity.
    dense: Option<DenseRows>,
}

/// Equality is over the logical matrix only — whether a dense-row
/// mirror has been enabled does not affect it.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &CsrMatrix) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

/// Contiguous padded storage for the dense mirrors of high-fill rows.
#[derive(Debug, Clone)]
struct DenseRows {
    /// Row stride: `ncols` rounded up to a multiple of
    /// [`CsrMatrix::DENSE_ROW_LANE`], so every mirrored row starts
    /// lane-aligned.
    stride: usize,
    /// Per-row offset into `values`, or [`NO_DENSE_ROW`].
    offsets: Vec<u32>,
    values: Vec<f64>,
}

/// Sentinel in [`DenseRows::offsets`] for rows without a mirror.
const NO_DENSE_ROW: u32 = u32::MAX;

impl CsrMatrix {
    /// Creates a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` pairs are summed; exact zeros are kept out
    /// of the structure. Triplets may be in any order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any triplet lies outside
    /// `nrows x ncols`, and [`Error::NotFinite`] if any value is NaN or
    /// infinite.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<CsrMatrix, Error> {
        for &(r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(Error::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            if !v.is_finite() {
                return Err(Error::NotFinite {
                    what: "matrix triplet value",
                });
            }
        }
        // Sort triplet indices by (row, col); equal keys end up adjacent
        // so duplicates can be merged in a single pass.
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        order.sort_unstable_by_key(|&i| (triplets[i].0, triplets[i].1));

        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut cur_row = 0usize;
        for &i in &order {
            let (r, c, v) = triplets[i];
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr.len() == r + 1) {
                if last_c == c && !values.is_empty() && col_idx.len() > row_ptr[r] {
                    *values.last_mut().expect("nonempty") += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while cur_row < nrows {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        debug_assert_eq!(row_ptr.len(), nrows + 1);

        // Drop exact zeros produced by cancellation.
        let mut m = CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            dense: None,
        };
        m.prune_zeros();
        Ok(m)
    }

    /// Creates a matrix from a dense row-major slice.
    ///
    /// Entries with absolute value `0.0` are not stored.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Result<CsrMatrix, Error> {
        if data.len() != nrows * ncols {
            return Err(Error::DimensionMismatch {
                expected: nrows * ncols,
                actual: data.len(),
                what: "dense data length",
            });
        }
        let mut triplets = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(nrows, ncols, &triplets)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> CsrMatrix {
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &triplets).expect("identity triplets are in bounds")
    }

    /// Creates an `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> CsrMatrix {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
            dense: None,
        }
    }

    fn prune_zeros(&mut self) {
        // Structure is about to change; any dense mirror is stale.
        self.dense = None;
        if !self.values.contains(&0.0) {
            return;
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        row_ptr.push(0);
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.values[k] != 0.0 {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if it is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates over the stored `(col, value)` pairs of one row, in
    /// ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row(&self, row: usize) -> RowIter<'_> {
        assert!(row < self.nrows, "row out of bounds");
        RowIter {
            matrix: self,
            pos: self.row_ptr[row],
            end: self.row_ptr[row + 1],
        }
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, Error> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = self * x`, writing into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.ncols()`
    /// or `y.len() != self.nrows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), Error> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
                what: "matvec input",
            });
        }
        if y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
                what: "matvec output",
            });
        }
        for (r, out) in y.iter_mut().enumerate() {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            // Single accumulator in ascending column order — the
            // summation order is part of the bit-identity contract.
            let mut acc = 0.0;
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                acc += v * x[c];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Computes `y = selfᵀ * x` (equivalently `xᵀ · self`).
    ///
    /// This is the kernel of the belief propagation step
    /// `π'(s) ∝ Σ_{s'} p(s|s',a) π(s')`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.nrows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, Error> {
        let mut y = vec![0.0; self.ncols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = selfᵀ * x`, writing into a caller-provided buffer.
    ///
    /// Bit-identical to [`CsrMatrix::matvec_transpose`] (same traversal
    /// and accumulation order); the buffer variant exists so hot loops
    /// can reuse scratch instead of allocating per call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.nrows()`
    /// or `y.len() != self.ncols()`.
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), Error> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                expected: self.nrows,
                actual: x.len(),
                what: "transpose matvec input",
            });
        }
        if y.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: y.len(),
                what: "transpose matvec output",
            });
        }
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                y[c] += v * xr;
            }
        }
        Ok(())
    }

    /// [`CsrMatrix::matvec_transpose_into`] without the `Result`
    /// plumbing, for validated hot loops: dimensions are
    /// `debug_assert!`ed, and rows with a dense mirror (see
    /// [`CsrMatrix::enable_dense_rows`]) use a contiguous axpy instead
    /// of the indirect scatter.
    ///
    /// Bit-identical to the checked variant **provided `x` is
    /// non-negative with no `-0.0` entries** (debug-asserted): the
    /// mirror's padded positions contribute `+0.0`, which cannot flip
    /// the sign bit of a non-negative accumulation.
    pub fn matvec_transpose_into_unchecked(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows, "transpose matvec input length");
        debug_assert_eq!(y.len(), self.ncols, "transpose matvec output length");
        debug_assert!(
            x.iter().all(|&v| v > 0.0 || v.to_bits() == 0),
            "unchecked transpose matvec requires non-negative input without -0.0"
        );
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            if let Some(d) = self.dense_row(r) {
                for (yj, &vj) in y.iter_mut().zip(d) {
                    *yj += vj * xr;
                }
            } else {
                let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
                for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                    y[c] += v * xr;
                }
            }
        }
    }

    /// Fused row gather-and-scale: writes `out[c] = self[row, c] * x[c]`
    /// for every stored entry of `row` (zero elsewhere) and returns the
    /// sum of those products, accumulated in ascending column order.
    ///
    /// This is the diagonal-scale half of a fused posterior operator
    /// `τ = diag(row) ∘ M`: apply `M` once with
    /// [`CsrMatrix::matvec_transpose_into`], then this per row. Since
    /// the skipped columns contribute exactly `+0.0` and every product
    /// here is a plain `v * x[c]`, the returned sum equals a dense
    /// left-to-right sum over `out` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if `row >= self.nrows()` and
    /// [`Error::DimensionMismatch`] if `x` or `out` is not `ncols` long.
    pub fn row_scaled_into(&self, row: usize, x: &[f64], out: &mut [f64]) -> Result<f64, Error> {
        if row >= self.nrows {
            return Err(Error::IndexOutOfBounds {
                row,
                col: 0,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
                what: "row_scaled input",
            });
        }
        if out.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                expected: self.ncols,
                actual: out.len(),
                what: "row_scaled output",
            });
        }
        out.fill(0.0);
        let (s, e) = (self.row_ptr[row], self.row_ptr[row + 1]);
        let mut acc = 0.0;
        for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
            let t = v * x[c];
            out[c] = t;
            acc += t;
        }
        Ok(acc)
    }

    /// [`CsrMatrix::row_scaled_into`] without the `Result` plumbing,
    /// for validated hot loops: bounds are `debug_assert!`ed, and rows
    /// with a dense mirror split into a vectorizable elementwise
    /// product followed by a scalar left-to-right sum (the short-row
    /// sparse tail keeps the original fused scalar loop).
    ///
    /// Bit-identical to the checked variant **provided `x` is
    /// non-negative with no `-0.0` entries** (debug-asserted): the sum
    /// then only ever adds `+0.0` at positions the sparse path skips.
    pub fn row_scaled_into_unchecked(&self, row: usize, x: &[f64], out: &mut [f64]) -> f64 {
        debug_assert!(row < self.nrows, "row_scaled row out of bounds");
        debug_assert_eq!(x.len(), self.ncols, "row_scaled input length");
        debug_assert_eq!(out.len(), self.ncols, "row_scaled output length");
        debug_assert!(
            x.iter().all(|&v| v > 0.0 || v.to_bits() == 0),
            "unchecked row_scaled requires non-negative input without -0.0"
        );
        if let Some(d) = self.dense_row(row) {
            for ((o, &vj), &xj) in out.iter_mut().zip(d).zip(x) {
                *o = vj * xj;
            }
            let mut acc = 0.0;
            for &t in out.iter() {
                acc += t;
            }
            acc
        } else {
            out.fill(0.0);
            let (s, e) = (self.row_ptr[row], self.row_ptr[row + 1]);
            let mut acc = 0.0;
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                let t = v * x[c];
                out[c] = t;
                acc += t;
            }
            acc
        }
    }

    /// Minimum fill ratio (`nnz / ncols`) for a row to get a dense
    /// mirror under [`CsrMatrix::enable_dense_rows`].
    pub const DENSE_ROW_MIN_FILL: f64 = 0.5;

    /// Minimum column count for dense mirrors to be considered at all —
    /// below this the scalar sparse loop wins regardless of fill.
    pub const DENSE_ROW_MIN_COLS: usize = 16;

    /// Lane width the dense mirrors pad to (f64 elements).
    pub const DENSE_ROW_LANE: usize = 8;

    /// Builds padded dense mirrors for high-fill rows, used by the
    /// `*_unchecked` kernels (see module docs for the layout and the
    /// bit-identity argument). A no-op unless every stored value is
    /// strictly positive — the `+0.0`-padding argument needs a
    /// non-negative accumulation domain — and at least one row clears
    /// the fill threshold. Any mutation drops the mirror.
    pub fn enable_dense_rows(&mut self) {
        self.dense = None;
        if self.ncols < CsrMatrix::DENSE_ROW_MIN_COLS || self.values.iter().any(|&v| v <= 0.0) {
            return;
        }
        let lane = CsrMatrix::DENSE_ROW_LANE;
        let stride = self.ncols.div_ceil(lane) * lane;
        let min_nnz = (CsrMatrix::DENSE_ROW_MIN_FILL * self.ncols as f64).ceil() as usize;
        let mut offsets = vec![NO_DENSE_ROW; self.nrows];
        let mut values = Vec::new();
        for (r, offset) in offsets.iter_mut().enumerate() {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if e - s < min_nnz || values.len() + stride > NO_DENSE_ROW as usize {
                continue;
            }
            let start = values.len();
            *offset = start as u32;
            values.resize(start + stride, 0.0);
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                values[start + c] = v;
            }
        }
        if !values.is_empty() {
            self.dense = Some(DenseRows {
                stride,
                offsets,
                values,
            });
        }
    }

    /// Whether [`CsrMatrix::enable_dense_rows`] produced any mirrors.
    pub fn has_dense_rows(&self) -> bool {
        self.dense.is_some()
    }

    /// The dense mirror of `row` (length `ncols`), if it has one.
    fn dense_row(&self, row: usize) -> Option<&[f64]> {
        let d = self.dense.as_ref()?;
        let off = d.offsets[row];
        if off == NO_DENSE_ROW {
            return None;
        }
        let off = off as usize;
        debug_assert!(d.stride >= self.ncols);
        Some(&d.values[off..off + self.ncols])
    }

    /// Returns the explicit transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                triplets.push((self.col_idx[k], r, self.values[k]));
            }
        }
        CsrMatrix::from_triplets(self.ncols, self.nrows, &triplets)
            .expect("transposed triplets are in bounds")
    }

    /// Sum of the stored entries of each row.
    ///
    /// For a stochastic matrix every row sum is `1.0`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Returns a copy with every entry multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> CsrMatrix {
        let mut m = self.clone();
        for v in &mut m.values {
            *v *= factor;
        }
        m.prune_zeros();
        m
    }

    /// Converts to a dense row-major `Vec` (for tests and tiny models).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                d[r * self.ncols + self.col_idx[k]] = self.values[k];
            }
        }
        d
    }

    /// True if every row sums to `1.0 ± tol` and all entries are in
    /// `[0, 1 + tol]` — i.e. the matrix is (row-)stochastic.
    pub fn is_stochastic(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| (-tol..=1.0 + tol).contains(&v))
            && self.row_sums().iter().all(|&s| (s - 1.0).abs() <= tol)
    }
}

/// Iterator over the `(column, value)` pairs of a single matrix row.
///
/// Produced by [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    matrix: &'a CsrMatrix,
    pos: usize,
    end: usize,
}

impl Iterator for RowIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        if self.pos >= self.end {
            return None;
        }
        let item = (self.matrix.col_idx[self.pos], self.matrix.values[self.pos]);
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_roundtrip_dense() {
        let dense = [1.0, 0.0, 2.0, 0.0, 0.0, -3.0];
        let m = CsrMatrix::from_dense(2, 3, &dense).unwrap();
        assert_eq!(m.to_dense(), dense.to_vec());
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 0.5), (0, 1, 0.25), (0, 0, 1.0)]).unwrap();
        assert_eq!(m.get(0, 1), 0.75);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn cancelled_duplicates_are_pruned() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        let err = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, Error::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn non_finite_triplet_is_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).unwrap_err();
        assert!(matches!(err, Error::NotFinite { .. }));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, -1.0, 4.0]).unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![5.0, 10.0]);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let m = CsrMatrix::identity(2);
        assert!(matches!(
            m.matvec(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_matvec_agrees_with_explicit_transpose() {
        let m = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.5, 0.0, 4.0]).unwrap();
        let x = [3.0, -1.0];
        let via_kernel = m.matvec_transpose(&x).unwrap();
        let via_transpose = m.transpose().matvec(&x).unwrap();
        assert_eq!(via_kernel, via_transpose);
    }

    #[test]
    fn identity_is_stochastic() {
        assert!(CsrMatrix::identity(4).is_stochastic(1e-12));
    }

    #[test]
    fn row_iterator_is_sorted_and_exact() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 1, 2.0), (0, 0, 3.0)]).unwrap();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 3.0), (1, 2.0), (3, 1.0)]);
        assert_eq!(m.row(0).len(), 3);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0, 1.0]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn scaled_multiplies_entries() {
        let m = CsrMatrix::identity(2).scaled(2.5);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 1), 2.5);
    }

    /// A 20-column stochastic-ish matrix with one dense row (every
    /// column) and several sparse rows, all values strictly positive.
    fn mixed_fill_matrix() -> CsrMatrix {
        let mut triplets = Vec::new();
        for c in 0..20 {
            triplets.push((0, c, 0.01 + c as f64 * 0.003));
        }
        triplets.extend([
            (1, 3, 0.9),
            (1, 17, 0.1),
            (2, 0, 1.0),
            (3, 5, 0.4),
            (3, 6, 0.6),
        ]);
        CsrMatrix::from_triplets(4, 20, &triplets).unwrap()
    }

    #[test]
    fn dense_mirrors_only_cover_high_fill_positive_rows() {
        let mut m = mixed_fill_matrix();
        assert!(!m.has_dense_rows());
        m.enable_dense_rows();
        assert!(m.has_dense_rows());
        assert!(m.dense_row(0).is_some());
        assert!(m.dense_row(1).is_none(), "2/20 fill must stay sparse");

        // Matrices with any non-positive value refuse mirrors.
        let mut neg = CsrMatrix::from_triplets(
            1,
            20,
            &(0..20)
                .map(|c| (0usize, c, if c == 7 { -1.0 } else { 1.0 }))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        neg.enable_dense_rows();
        assert!(!neg.has_dense_rows());

        // Narrow matrices refuse mirrors regardless of fill.
        let mut narrow = CsrMatrix::from_dense(1, 2, &[0.5, 0.5]).unwrap();
        narrow.enable_dense_rows();
        assert!(!narrow.has_dense_rows());
    }

    #[test]
    fn equality_ignores_dense_mirrors() {
        let plain = mixed_fill_matrix();
        let mut mirrored = mixed_fill_matrix();
        mirrored.enable_dense_rows();
        assert_eq!(plain, mirrored);
    }

    #[test]
    fn unchecked_transpose_matvec_is_bit_identical() {
        let mut m = mixed_fill_matrix();
        let x: Vec<f64> = (0..4).map(|i| 0.1 + 0.2 * i as f64).collect();
        let mut reference = vec![0.0; 20];
        m.matvec_transpose_into(&x, &mut reference).unwrap();
        let mut fast = vec![1.0; 20];
        m.matvec_transpose_into_unchecked(&x, &mut fast);
        assert!(reference
            .iter()
            .zip(&fast)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        m.enable_dense_rows();
        m.matvec_transpose_into_unchecked(&x, &mut fast);
        assert!(reference
            .iter()
            .zip(&fast)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Zero entries in x (exactly +0.0) are skipped identically.
        let x0 = [0.0, 0.3, 0.0, 0.7];
        m.matvec_transpose_into(&x0, &mut reference).unwrap();
        m.matvec_transpose_into_unchecked(&x0, &mut fast);
        assert!(reference
            .iter()
            .zip(&fast)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn unchecked_row_scaled_is_bit_identical() {
        let mut m = mixed_fill_matrix();
        let x: Vec<f64> = (0..20)
            .map(|c| if c % 3 == 0 { 0.0 } else { 0.05 * c as f64 })
            .collect();
        let mut reference = vec![0.0; 20];
        let mut fast = vec![2.0; 20];
        for row in 0..4 {
            let acc_ref = m.row_scaled_into(row, &x, &mut reference).unwrap();
            let acc = m.row_scaled_into_unchecked(row, &x, &mut fast);
            assert_eq!(acc_ref.to_bits(), acc.to_bits(), "row {row}");
            assert!(reference
                .iter()
                .zip(&fast)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        m.enable_dense_rows();
        for row in 0..4 {
            let acc_ref = m.row_scaled_into(row, &x, &mut reference).unwrap();
            let acc = m.row_scaled_into_unchecked(row, &x, &mut fast);
            assert_eq!(acc_ref.to_bits(), acc.to_bits(), "row {row} (dense mirror)");
            assert!(reference
                .iter()
                .zip(&fast)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn mutation_drops_dense_mirrors() {
        let mut m = mixed_fill_matrix();
        m.enable_dense_rows();
        assert!(m.has_dense_rows());
        let scaled = m.scaled(2.0);
        assert!(!scaled.has_dense_rows());
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let m = CsrMatrix::from_dense(2, 2, &[0.25, 0.75, 1.0, 0.0]).unwrap();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert!(m.is_stochastic(1e-12));
    }
}
