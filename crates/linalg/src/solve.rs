//! Iterative fixed-point solvers for `x = b + M·x`.
//!
//! The RA-Bound linear system (paper Eq. 5) has exactly this shape:
//! `V⁻ = r̄ + P̄·V⁻` where `P̄` is the random-action transition matrix
//! restricted to transient states and `r̄` the averaged one-step reward.
//! The paper solves it with "Gauss-Seidel iterations with successive
//! over-relaxation"; [`sor`] is that solver, with [`jacobi`] and
//! [`gauss_seidel`] as simpler reference implementations.
//!
//! All solvers detect divergence (non-finite iterates or residual blow-up)
//! and report it as [`Error::Diverged`] — this is how the workspace
//! demonstrates that the BI-POMDP and blind-policy bounds fail to exist
//! on undiscounted recovery models.

use crate::{dense, CsrMatrix, Error};

/// Options controlling an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterOpts {
    /// Maximum number of sweeps before reporting [`Error::NotConverged`].
    pub max_iters: usize,
    /// Convergence threshold on the `ℓ∞` change between sweeps.
    pub tol: f64,
    /// Relaxation factor for [`sor`] (`1.0` = plain Gauss–Seidel).
    pub omega: f64,
    /// Residual magnitude beyond which the solve is declared divergent.
    pub divergence_threshold: f64,
}

impl Default for IterOpts {
    fn default() -> IterOpts {
        IterOpts {
            max_iters: 100_000,
            tol: 1e-10,
            omega: 1.0,
            divergence_threshold: 1e18,
        }
    }
}

impl IterOpts {
    /// Returns options with the given relaxation factor.
    pub fn with_omega(mut self, omega: f64) -> IterOpts {
        self.omega = omega;
        self
    }

    /// Returns options with the given convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> IterOpts {
        self.tol = tol;
        self
    }

    /// Returns options with the given iteration budget.
    pub fn with_max_iters(mut self, max_iters: usize) -> IterOpts {
        self.max_iters = max_iters;
        self
    }
}

fn check_shape(m: &CsrMatrix, b: &[f64]) -> Result<(), Error> {
    if m.nrows() != m.ncols() {
        return Err(Error::DimensionMismatch {
            expected: m.nrows(),
            actual: m.ncols(),
            what: "fixed-point matrix (must be square)",
        });
    }
    if b.len() != m.nrows() {
        return Err(Error::DimensionMismatch {
            expected: m.nrows(),
            actual: b.len(),
            what: "fixed-point rhs",
        });
    }
    Ok(())
}

/// Solves `x = b + M·x` by Jacobi sweeps starting from `x = 0`.
///
/// Starting from zero matters for undiscounted negative models: the
/// iterates are exactly the finite-horizon values `(L⁻)ᵏ·0` of the
/// paper's Lemma 3.1, so they increase in accuracy monotonically toward
/// the infinite-horizon value when it exists.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `M` is not square or `b` has the
///   wrong length.
/// * [`Error::NotConverged`] when the iteration budget is exhausted.
/// * [`Error::Diverged`] when iterates become non-finite or exceed the
///   divergence threshold (the fixed point does not exist).
pub fn jacobi(m: &CsrMatrix, b: &[f64], opts: &IterOpts) -> Result<Vec<f64>, Error> {
    check_shape(m, b)?;
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for it in 0..opts.max_iters {
        m.matvec_into(&x, &mut next)?;
        for i in 0..n {
            next[i] += b[i];
        }
        let delta = dense::dist_inf(&x, &next);
        std::mem::swap(&mut x, &mut next);
        if !dense::all_finite(&x) || dense::norm_inf(&x) > opts.divergence_threshold {
            return Err(Error::Diverged { iteration: it });
        }
        if delta <= opts.tol {
            return Ok(x);
        }
    }
    Err(Error::NotConverged {
        iterations: opts.max_iters,
        residual: dense::dist_inf(&x, &next),
    })
}

/// Solves `x = b + M·x` by Gauss–Seidel sweeps starting from `x = 0`.
///
/// Equivalent to [`sor`] with `omega = 1`.
///
/// # Errors
///
/// Same as [`jacobi`].
pub fn gauss_seidel(m: &CsrMatrix, b: &[f64], opts: &IterOpts) -> Result<Vec<f64>, Error> {
    let opts = opts.clone().with_omega(1.0);
    sor(m, b, &opts)
}

/// Solves `x = b + M·x` by Gauss–Seidel with successive over-relaxation.
///
/// Each sweep updates in place:
/// `x_i ← (1−ω)·x_i + ω·(b_i + Σ_{j≠i} M_ij·x_j) / (1 − M_ii)`.
/// A diagonal entry `M_ii = 1` would make state `i` absorbing with
/// non-zero reward — the divergent case — and is reported as
/// [`Error::Diverged`] immediately.
///
/// This is the solver the paper uses for the RA-Bound system (§3.1).
///
/// # Errors
///
/// Same as [`jacobi`], plus immediate divergence when `1 − M_ii` is not
/// safely invertible.
pub fn sor(m: &CsrMatrix, b: &[f64], opts: &IterOpts) -> Result<Vec<f64>, Error> {
    check_shape(m, b)?;
    if !(opts.omega > 0.0 && opts.omega < 2.0) {
        return Err(Error::NotFinite {
            what: "sor relaxation factor (must be in (0, 2))",
        });
    }
    let n = b.len();
    // Pre-extract diagonal so each sweep can skip it.
    let mut diag = vec![0.0; n];
    for (i, d) in diag.iter_mut().enumerate() {
        for (j, v) in m.row(i) {
            if j == i {
                *d = v;
            }
        }
        if (1.0 - *d).abs() < 1e-14 {
            // A self-loop with probability 1 and (implicitly) non-zero
            // reward has no finite fixed point.
            return Err(Error::Diverged { iteration: 0 });
        }
    }
    let mut x = vec![0.0; n];
    for it in 0..opts.max_iters {
        let mut delta = 0.0f64;
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in m.row(i) {
                if j != i {
                    acc += v * x[j];
                }
            }
            let gs = acc / (1.0 - diag[i]);
            let new = (1.0 - opts.omega) * x[i] + opts.omega * gs;
            delta = delta.max((new - x[i]).abs());
            x[i] = new;
        }
        if !dense::all_finite(&x) || dense::norm_inf(&x) > opts.divergence_threshold {
            return Err(Error::Diverged { iteration: it });
        }
        if delta <= opts.tol {
            return Ok(x);
        }
    }
    Err(Error::NotConverged {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

/// Solves `x = b + M·x` exactly via dense LU on `(I − M)`.
///
/// Only suitable for small systems; used to cross-check the iterative
/// solvers and for toy models.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] on shape mismatch.
/// * [`Error::Singular`] when `(I − M)` is singular (no unique fixed
///   point — e.g. a recurrent class with non-zero reward).
pub fn direct(m: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, Error> {
    check_shape(m, b)?;
    let n = b.len();
    let mut a = m.to_dense();
    for v in &mut a {
        *v = -*v;
    }
    for i in 0..n {
        a[i * n + i] += 1.0;
    }
    crate::lu::solve_dense(n, &a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_matrix() -> CsrMatrix {
        // 0 -> 1 w.p. 1; 1 -> (absorbing, outside) w.p. 1.
        CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap()
    }

    #[test]
    fn jacobi_solves_chain() {
        let v = jacobi(&chain_matrix(), &[-1.0, -2.0], &IterOpts::default()).unwrap();
        assert!((v[0] + 3.0).abs() < 1e-9);
        assert!((v[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_seidel_solves_chain() {
        let v = gauss_seidel(&chain_matrix(), &[-1.0, -2.0], &IterOpts::default()).unwrap();
        assert!((v[0] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn sor_matches_direct_on_random_substochastic() {
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in 2..=10 {
            let mut triplets = Vec::new();
            for r in 0..n {
                // Random sub-stochastic row: total outgoing mass <= 0.9.
                let mut remaining = 0.9 * next();
                for c in 0..n {
                    let share = remaining * next() * 0.5;
                    if share > 1e-3 {
                        triplets.push((r, c, share));
                        remaining -= share;
                    }
                }
            }
            let m = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
            let b: Vec<f64> = (0..n).map(|_| -next()).collect();
            let exact = direct(&m, &b).unwrap();
            for omega in [0.8, 1.0, 1.3] {
                let opts = IterOpts::default().with_omega(omega);
                let v = sor(&m, &b, &opts).unwrap();
                assert!(
                    crate::dense::dist_inf(&v, &exact) < 1e-7,
                    "n={n} omega={omega}"
                );
            }
        }
    }

    #[test]
    fn divergent_self_loop_is_detected() {
        // State 0 loops on itself w.p. 1 with reward -1: value is -inf.
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        let b = [-1.0];
        assert!(matches!(
            sor(&m, &b, &IterOpts::default()),
            Err(Error::Diverged { .. })
        ));
        // Jacobi grinds toward -inf and must also notice.
        let opts = IterOpts {
            divergence_threshold: 1e3,
            ..IterOpts::default()
        };
        assert!(matches!(jacobi(&m, &b, &opts), Err(Error::Diverged { .. })));
    }

    #[test]
    fn divergent_two_cycle_is_detected() {
        // 0 <-> 1 recurrent with negative rewards: no finite fixed point.
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let b = [-1.0, -1.0];
        let opts = IterOpts {
            divergence_threshold: 1e6,
            max_iters: 10_000_000,
            ..IterOpts::default()
        };
        assert!(matches!(sor(&m, &b, &opts), Err(Error::Diverged { .. })));
    }

    #[test]
    fn zero_reward_recurrent_class_converges_to_zero() {
        // Recurrent but reward-free: fixed point exists (x = anything with
        // x0 = x1; iteration from 0 yields 0). Gauss-Seidel stays at 0.
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let v = gauss_seidel(&m, &[0.0, 0.0], &IterOpts::default()).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn not_converged_is_reported() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 0.999_999), (1, 0, 0.999_999)]).unwrap();
        let opts = IterOpts {
            max_iters: 3,
            tol: 1e-14,
            ..IterOpts::default()
        };
        assert!(matches!(
            jacobi(&m, &[-1.0, -1.0], &opts),
            Err(Error::NotConverged { .. })
        ));
    }

    #[test]
    fn invalid_omega_is_rejected() {
        let m = CsrMatrix::zeros(1, 1);
        for omega in [0.0, -1.0, 2.0, f64::NAN] {
            let opts = IterOpts::default().with_omega(omega);
            assert!(sor(&m, &[1.0], &opts).is_err(), "omega={omega}");
        }
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let m = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            jacobi(&m, &[0.0, 0.0], &IterOpts::default()),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn direct_reports_singular_recurrent_system() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(direct(&m, &[-1.0]), Err(Error::Singular { .. })));
    }
}
