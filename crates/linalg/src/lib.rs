//! Dense and sparse linear algebra for the `bpr` workspace.
//!
//! This crate is the numerical substrate underneath the MDP/POMDP layers:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices built from triplets,
//!   the representation used for per-action transition matrices.
//! * [`dense`] — small helpers on `&[f64]` slices (dot products, norms,
//!   axpy) shared by the value-iteration and belief-update kernels.
//! * [`solve`] — iterative fixed-point solvers (Jacobi, Gauss–Seidel,
//!   successive over-relaxation) for systems of the form `x = b + M·x`,
//!   which is exactly the shape of the RA-Bound linear system (Eq. 5 of
//!   the paper), plus a dense LU factorisation used for verification and
//!   for exact solves on small models.
//!
//! # Examples
//!
//! Solving the expected accumulated reward of a tiny absorbing Markov
//! chain, `v = r + P·v`:
//!
//! ```
//! use bpr_linalg::{CsrMatrix, solve::{self, IterOpts}};
//!
//! # fn main() -> Result<(), bpr_linalg::Error> {
//! // Two transient states feeding an absorbing state (not represented):
//! // state 0 -> state 1 w.p. 1, state 1 -> absorbing w.p. 1.
//! let p = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)])?;
//! let r = vec![-1.0, -2.0];
//! let v = solve::gauss_seidel(&p, &r, &IterOpts::default())?;
//! assert!((v[0] - (-3.0)).abs() < 1e-9);
//! assert!((v[1] - (-2.0)).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
mod error;
pub mod lu;
pub mod solve;
mod sparse;

pub use error::Error;
pub use sparse::{CsrMatrix, RowIter};
