//! Small dense-vector helpers shared across the workspace.
//!
//! All functions operate on `&[f64]` slices so callers keep control of
//! allocation. Dimension mismatches are programming errors and panic.

/// Dot product `Σ_i x[i]·y[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(bpr_linalg::dense::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// `ℓ∞` norm: the largest absolute entry (0 for an empty slice).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// `ℓ1` norm: the sum of absolute entries.
pub fn norm_1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `ℓ2` (Euclidean) norm.
pub fn norm_2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// `ℓ∞` distance between two vectors: `max_i |x[i] − y[i]|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dist_inf(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist_inf: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// Normalises `x` in place so its entries sum to 1.
///
/// Returns the original sum. If the sum is zero or non-finite, `x` is
/// left untouched and the sum is returned so the caller can decide how
/// to recover (belief updates treat this as an impossible observation).
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let s = sum(x);
    if s != 0.0 && s.is_finite() {
        for v in x.iter_mut() {
            *v /= s;
        }
    }
    s
}

/// True if all entries are finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Index and value of the maximum entry, or `None` for an empty slice.
///
/// Ties resolve to the smallest index. NaN entries are skipped.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index and value of the minimum entry, or `None` for an empty slice.
///
/// Ties resolve to the smallest index. NaN entries are skipped.
pub fn argmin(x: &[f64]) -> Option<(usize, f64)> {
    argmax(&x.iter().map(|v| -v).collect::<Vec<_>>()).map(|(i, v)| (i, -v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, -2.0, 3.0];
        let mut y = [0.5, 0.5, 0.5];
        assert_eq!(dot(&x, &y), 1.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [2.5, -3.5, 6.5]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_1(&x), 7.0);
        assert_eq!(norm_2(&x), 5.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn dist_inf_symmetric() {
        let a = [1.0, 2.0];
        let b = [1.5, 0.0];
        assert_eq!(dist_inf(&a, &b), 2.0);
        assert_eq!(dist_inf(&b, &a), 2.0);
        assert_eq!(dist_inf(&a, &a), 0.0);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut x = [1.0, 3.0];
        let s = normalize_l1(&mut x);
        assert_eq!(s, 4.0);
        assert_eq!(x, [0.25, 0.75]);
    }

    #[test]
    fn normalize_l1_leaves_zero_vector() {
        let mut x = [0.0, 0.0];
        let s = normalize_l1(&mut x);
        assert_eq!(s, 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn argmax_ties_resolve_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some((1, 3.0)));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some((1, 2.0)));
    }

    #[test]
    fn argmin_mirrors_argmax() {
        assert_eq!(argmin(&[2.0, -1.0, 0.0]), Some((1, -1.0)));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
