use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A triplet or index referred to a row/column outside the matrix.
    ///
    /// Carries the offending `(row, col)` pair and the matrix shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
        /// Human-readable description of which operand mismatched.
        what: &'static str,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm when the budget ran out.
        residual: f64,
    },
    /// An iterative solver produced non-finite values (the underlying
    /// fixed point does not exist, e.g. a divergent undiscounted bound).
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
    },
    /// A direct solver hit a (numerically) singular matrix.
    Singular {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// A value that must be a finite number was NaN or infinite.
    NotFinite {
        /// Description of the offending quantity.
        what: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            Error::DimensionMismatch {
                expected,
                actual,
                what,
            } => write!(f, "dimension mismatch for {what}: expected {expected}, got {actual}"),
            Error::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Error::Diverged { iteration } => {
                write!(f, "iterative solver diverged at iteration {iteration}")
            }
            Error::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot in column {pivot})")
            }
            Error::NotFinite { what } => write!(f, "non-finite value encountered in {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errs = [
            Error::IndexOutOfBounds {
                row: 3,
                col: 4,
                nrows: 2,
                ncols: 2,
            },
            Error::DimensionMismatch {
                expected: 4,
                actual: 3,
                what: "rhs",
            },
            Error::NotConverged {
                iterations: 10,
                residual: 1.0,
            },
            Error::Diverged { iteration: 5 },
            Error::Singular { pivot: 0 },
            Error::NotFinite { what: "solution" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
