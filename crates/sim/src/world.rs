//! Ground-truth simulation of a recovery model.

use bpr_core::RecoveryModel;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::ObservationId;
use rand::Rng;

/// The simulated "real system": holds the true fault state hidden from
/// the controller and samples the model's transition and observation
/// kernels.
///
/// # Examples
///
/// ```
/// use bpr_emn::two_server;
/// use bpr_sim::World;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = two_server::default_model()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut world = World::new(&model, 0.into());
/// // Restarting server a fixes Fault(a).
/// let (state, _obs) = world.step(&mut rng, 0.into());
/// assert_eq!(state.index(), two_server::NULL);
/// assert!(world.is_recovered());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct World<'a> {
    model: &'a RecoveryModel,
    state: StateId,
}

impl<'a> World<'a> {
    /// Creates a world with the given true state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds for the model.
    pub fn new(model: &'a RecoveryModel, state: StateId) -> World<'a> {
        assert!(
            state.index() < model.base().n_states(),
            "world state out of bounds"
        );
        World { model, state }
    }

    /// The (hidden) true state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// True if the world currently sits in a null-fault state.
    pub fn is_recovered(&self) -> bool {
        self.model.is_null(self.state)
    }

    /// Executes `action`: samples the successor state and the monitor
    /// observation generated on entering it.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        action: ActionId,
    ) -> (StateId, ObservationId) {
        let next = self.model.base().sample_transition(rng, self.state, action);
        let obs = self.model.base().sample_observation(rng, next, action);
        self.state = next;
        (next, obs)
    }

    /// Samples a monitor observation of the *current* state without
    /// changing it — the "failure detected" observation that triggers
    /// recovery (uses the model's observe action when one is tagged).
    pub fn observe_in_place<R: Rng + ?Sized>(&self, rng: &mut R) -> ObservationId {
        let action = self
            .model
            .observe_actions()
            .first()
            .copied()
            .unwrap_or(ActionId::new(0));
        self.model.base().sample_observation(rng, self.state, action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_emn::two_server;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wrong_restart_leaves_the_fault() {
        let model = two_server::default_model().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut world = World::new(&model, StateId::new(two_server::FAULT_A));
        let (s, _) = world.step(&mut rng, ActionId::new(two_server::RESTART_B));
        assert_eq!(s.index(), two_server::FAULT_A);
        assert!(!world.is_recovered());
    }

    #[test]
    fn observation_distribution_tracks_state() {
        let model = two_server::default_model().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let world = World::new(&model, StateId::new(two_server::FAULT_B));
        let n = 5_000;
        let mut blame_b = 0usize;
        for _ in 0..n {
            if world.observe_in_place(&mut rng).index() == two_server::OBS_B_FAILED {
                blame_b += 1;
            }
        }
        let frac = blame_b as f64 / n as f64;
        assert!((frac - 0.85).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_state_panics() {
        let model = two_server::default_model().unwrap();
        let _ = World::new(&model, StateId::new(17));
    }
}
