//! Campaign-level aggregation of episode metrics.

use crate::harness::EpisodeOutcome;

/// Per-fault averages over a fault-injection campaign — one row of the
/// paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Controller name the campaign was run with.
    pub controller: String,
    /// Number of episodes aggregated.
    pub episodes: usize,
    /// Mean accumulated cost (requests dropped) per fault.
    pub mean_cost: f64,
    /// Mean wall-clock seconds until the controller terminated.
    pub mean_recovery_time: f64,
    /// Mean wall-clock seconds the fault was present.
    pub mean_residual_time: f64,
    /// Mean seconds of controller compute per fault.
    pub mean_algorithm_time: f64,
    /// Mean recovery actions per fault.
    pub mean_actions: f64,
    /// Mean monitor invocations per fault.
    pub mean_monitor_calls: f64,
    /// Episodes that ended with the fault still present.
    pub unrecovered: usize,
    /// Episodes cut off by the step cap before the controller
    /// terminated.
    pub unterminated: usize,
    /// Mean perturbation events per episode (degraded campaigns only).
    pub mean_perturbations: f64,
    /// Mean hardening-layer retries per episode.
    pub mean_retries: f64,
    /// Mean escalation-ladder steps per episode.
    pub mean_escalations: f64,
    /// Mean belief re-initialisations per episode.
    pub mean_belief_resets: f64,
}

impl CampaignSummary {
    /// Aggregates a slice of episode outcomes.
    ///
    /// An empty slice yields a zeroed summary (0 episodes).
    pub fn from_outcomes(controller: &str, outcomes: &[EpisodeOutcome]) -> CampaignSummary {
        let n = outcomes.len();
        let mean = |f: &dyn Fn(&EpisodeOutcome) -> f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                outcomes.iter().map(f).sum::<f64>() / n as f64
            }
        };
        CampaignSummary {
            controller: controller.to_string(),
            episodes: n,
            mean_cost: mean(&|o| o.cost),
            mean_recovery_time: mean(&|o| o.recovery_time),
            mean_residual_time: mean(&|o| o.residual_time),
            mean_algorithm_time: mean(&|o| o.algorithm_time),
            mean_actions: mean(&|o| o.actions as f64),
            mean_monitor_calls: mean(&|o| o.monitor_calls as f64),
            unrecovered: outcomes.iter().filter(|o| !o.recovered).count(),
            unterminated: outcomes.iter().filter(|o| !o.terminated).count(),
            mean_perturbations: mean(&|o| o.perturbations.total() as f64),
            mean_retries: mean(&|o| o.retries as f64),
            mean_escalations: mean(&|o| o.escalations as f64),
            mean_belief_resets: mean(&|o| o.belief_resets as f64),
        }
    }

    /// Fraction of episodes that ended recovered.
    pub fn recovery_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            (self.episodes - self.unrecovered) as f64 / self.episodes as f64
        }
    }

    /// Formats the summary as a row matching the layout of the paper's
    /// Table 1 (algorithm time in milliseconds).
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>10.2} {:>14.2} {:>14.2} {:>14.3} {:>8.2} {:>14.2}",
            self.controller,
            self.mean_cost,
            self.mean_recovery_time,
            self.mean_residual_time,
            self.mean_algorithm_time * 1e3,
            self.mean_actions,
            self.mean_monitor_calls,
        )
    }

    /// The header matching [`CampaignSummary::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>10} {:>14} {:>14} {:>14} {:>8} {:>14}",
            "Algorithm",
            "Cost",
            "RecoveryT(s)",
            "ResidualT(s)",
            "AlgT(ms)",
            "Actions",
            "MonitorCalls"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_mdp::StateId;

    fn outcome(cost: f64, recovered: bool) -> EpisodeOutcome {
        EpisodeOutcome {
            fault: StateId::new(1),
            cost,
            recovery_time: 2.0 * cost,
            residual_time: cost,
            algorithm_time: 0.001,
            actions: 2,
            monitor_calls: 5,
            recovered,
            terminated: true,
            perturbations: crate::PerturbationCounts {
                failed_actions: 1,
                ..Default::default()
            },
            retries: 3,
            escalations: 1,
            belief_resets: 0,
        }
    }

    #[test]
    fn aggregation_computes_means() {
        let s = CampaignSummary::from_outcomes("x", &[outcome(1.0, true), outcome(3.0, false)]);
        assert_eq!(s.episodes, 2);
        assert_eq!(s.mean_cost, 2.0);
        assert_eq!(s.mean_recovery_time, 4.0);
        assert_eq!(s.mean_residual_time, 2.0);
        assert_eq!(s.mean_actions, 2.0);
        assert_eq!(s.mean_monitor_calls, 5.0);
        assert_eq!(s.unrecovered, 1);
        assert_eq!(s.unterminated, 0);
        assert_eq!(s.mean_perturbations, 1.0);
        assert_eq!(s.mean_retries, 3.0);
        assert_eq!(s.mean_escalations, 1.0);
        assert_eq!(s.mean_belief_resets, 0.0);
        assert_eq!(s.recovery_rate(), 0.5);
    }

    #[test]
    fn empty_campaign_is_zeroed() {
        let s = CampaignSummary::from_outcomes("none", &[]);
        assert_eq!(s.episodes, 0);
        assert_eq!(s.mean_cost, 0.0);
    }

    #[test]
    fn table_row_aligns_with_header() {
        let s = CampaignSummary::from_outcomes("bounded", &[outcome(1.0, true)]);
        let header = CampaignSummary::table_header();
        let row = s.table_row();
        assert!(!header.is_empty());
        assert!(row.starts_with("bounded"));
        assert!(row.contains("1.00"));
    }
}
