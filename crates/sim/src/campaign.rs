//! The deterministic parallel campaign engine.
//!
//! [`Campaign`] is the session API behind every expensive
//! fault-injection loop in the workspace (paper Table 1 runs 10 000
//! injections per controller). Episodes of a campaign are
//! *independent given their seeds*: episode `i` draws its world
//! randomness from the stream `(master_seed, i)` (via
//! [`rand::split_seed`]), gets a controller freshly built by the
//! session's factory, and — for degraded campaigns — a perturbation
//! plan on stream `(plan.seed, i)`. Because nothing is threaded
//! through the loop, episodes schedule freely across a
//! [`bpr_par::WorkPool`], and the canonical results (see
//! [`EpisodeOutcome::canonical`]) are **bit-identical for every thread
//! count**, including 1.
//!
//! Contrast with [`crate::harness::run_campaign`], the serial stateful
//! protocol in which one controller carries its state (e.g. online
//! bound refinement) across episodes on a single shared RNG stream.

use crate::harness::{EpisodeOutcome, EpisodeRunner, HarnessConfig};
use crate::metrics::CampaignSummary;
use crate::PerturbationPlan;
use bpr_core::{Error, RecoveryController, RecoveryModel};
use bpr_mdp::StateId;
use bpr_par::WorkPool;
use rand::rngs::StdRng;
use rand::{split_seed, SeedableRng};
use std::time::Instant;

/// A configured campaign session. Build with [`Campaign::new`] plus the
/// chained setters, then execute with [`Campaign::run`].
///
/// ```ignore
/// let report = Campaign::new(&model)
///     .population(&zombies)
///     .episodes(10_000)
///     .seed(7)
///     .threads(8)
///     .run(|_episode| MostLikelyController::new(model.clone(), 0.9999))?;
/// println!("{}", report.summary.table_row());
/// ```
#[derive(Debug, Clone)]
pub struct Campaign<'m> {
    model: &'m RecoveryModel,
    population: Vec<StateId>,
    episodes: usize,
    config: HarnessConfig,
    plan: Option<PerturbationPlan>,
    master_seed: u64,
    threads: usize,
    abort_tolerant: bool,
}

/// What a campaign run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-fault averages (the Table 1 row).
    pub summary: CampaignSummary,
    /// One outcome per episode, in episode order — stable whatever the
    /// thread count. Aborted episodes (abort-tolerant sessions only)
    /// appear as zeroed unrecovered/unterminated outcomes.
    pub outcomes: Vec<EpisodeOutcome>,
    /// Episodes whose controller errored out instead of terminating
    /// (always 0 unless the session is [`Campaign::abort_tolerant`]).
    pub aborted: usize,
    /// Worker threads the campaign ran on.
    pub threads: usize,
    /// Wall-clock seconds the campaign took.
    pub wall_seconds: f64,
}

impl CampaignReport {
    /// Episodes per wall-clock second — the scaling metric of
    /// `BENCH_scaling.json`.
    pub fn episodes_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.outcomes.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The outcomes with wall-clock fields zeroed; two runs of the same
    /// session are equal under this view regardless of thread count.
    pub fn canonical_outcomes(&self) -> Vec<EpisodeOutcome> {
        self.outcomes
            .iter()
            .map(EpisodeOutcome::canonical)
            .collect()
    }
}

impl<'m> Campaign<'m> {
    /// Creates a session with default harness config, no degradation,
    /// seed 0, and a single worker.
    pub fn new(model: &'m RecoveryModel) -> Campaign<'m> {
        Campaign {
            model,
            population: Vec::new(),
            episodes: 0,
            config: HarnessConfig::default(),
            plan: None,
            master_seed: 0,
            threads: 1,
            abort_tolerant: false,
        }
    }

    /// Sets the fault population episodes cycle through round-robin.
    pub fn population(mut self, population: &[StateId]) -> Campaign<'m> {
        self.population = population.to_vec();
        self
    }

    /// Sets the number of fault injections.
    pub fn episodes(mut self, episodes: usize) -> Campaign<'m> {
        self.episodes = episodes;
        self
    }

    /// Replaces the harness configuration.
    pub fn config(mut self, config: &HarnessConfig) -> Campaign<'m> {
        self.config = config.clone();
        self
    }

    /// Sets the per-episode step cap.
    pub fn max_steps(mut self, max_steps: usize) -> Campaign<'m> {
        self.config.max_steps = max_steps;
        self
    }

    /// Runs every episode against a degraded world. Episode `i` gets an
    /// independent perturbation stream: `plan.seed` is re-derived as
    /// `split_seed(plan.seed, i)`.
    pub fn degraded(mut self, plan: &PerturbationPlan) -> Campaign<'m> {
        self.plan = Some(plan.clone());
        self
    }

    /// Sets the master seed all per-episode streams derive from.
    pub fn seed(mut self, master_seed: u64) -> Campaign<'m> {
        self.master_seed = master_seed;
        self
    }

    /// Sets the worker count (the result does not depend on it).
    pub fn threads(mut self, threads: usize) -> Campaign<'m> {
        self.threads = threads;
        self
    }

    /// Tolerate controller aborts: an episode whose controller errors
    /// out (instead of terminating) is recorded as unrecovered and
    /// unterminated with zeroed metrics and counted in
    /// [`CampaignReport::aborted`], rather than failing the campaign.
    /// Controllers built for the idealised model *do* abort in degraded
    /// worlds — robustness sweeps treat that failure mode as data.
    pub fn abort_tolerant(mut self, tolerate: bool) -> Campaign<'m> {
        self.abort_tolerant = tolerate;
        self
    }

    /// Runs the campaign. `factory` builds the controller for each
    /// episode from its index; it must be deterministic per index
    /// (cloning a pre-built prototype is the usual, cheap pattern).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for an empty population, a zero thread
    ///   count, an invalid harness config, or an invalid plan.
    /// * Factory failures, and — unless the session is
    ///   [`Campaign::abort_tolerant`] — episode failures (the
    ///   lowest-index one, whatever the thread count).
    pub fn run<C, F>(&self, factory: F) -> Result<CampaignReport, Error>
    where
        C: RecoveryController,
        F: Fn(usize) -> Result<C, Error> + Sync,
    {
        if self.population.is_empty() {
            return Err(Error::InvalidInput {
                detail: "fault population must be non-empty".into(),
            });
        }
        self.config.validate()?;
        if let Some(plan) = &self.plan {
            plan.validate(self.model)?;
        }
        let pool = WorkPool::new(self.threads).map_err(|e| Error::InvalidInput {
            detail: e.to_string(),
        })?;
        // The report is labelled with the controller's name; build one
        // up front so an empty campaign is labelled too, and factory
        // errors surface before any threads spawn.
        let name = factory(0)?.name().to_string();

        let start = Instant::now();
        let results: Vec<Result<EpisodeOutcome, Error>> =
            pool.map_indices(self.episodes, |i| self.run_one(i, &factory));
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut outcomes = Vec::with_capacity(self.episodes);
        let mut aborted = 0usize;
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) if !self.abort_tolerant => return Err(e),
                Err(_) => {
                    aborted += 1;
                    outcomes.push(EpisodeOutcome {
                        fault: self.population[i % self.population.len()],
                        cost: 0.0,
                        recovery_time: 0.0,
                        residual_time: 0.0,
                        algorithm_time: 0.0,
                        actions: 0,
                        monitor_calls: 0,
                        recovered: false,
                        terminated: false,
                        perturbations: Default::default(),
                        retries: 0,
                        escalations: 0,
                        belief_resets: 0,
                    });
                }
            }
        }
        Ok(CampaignReport {
            summary: CampaignSummary::from_outcomes(&name, &outcomes),
            outcomes,
            aborted,
            threads: pool.threads(),
            wall_seconds,
        })
    }

    /// Episode `i`, a pure function of `(self, i)` — the determinism
    /// contract of [`WorkPool::map_indices`].
    fn run_one<C, F>(&self, i: usize, factory: &F) -> Result<EpisodeOutcome, Error>
    where
        C: RecoveryController,
        F: Fn(usize) -> Result<C, Error> + Sync,
    {
        let fault = self.population[i % self.population.len()];
        let mut controller = factory(i)?;
        let mut rng = StdRng::seed_from_stream(self.master_seed, i as u64);
        let mut runner = EpisodeRunner::new(self.model).config(&self.config);
        if let Some(plan) = &self.plan {
            let episode_plan = PerturbationPlan {
                seed: split_seed(plan.seed, i as u64),
                ..plan.clone()
            };
            runner = runner.degraded(&episode_plan);
        }
        runner.run_with_rng(&mut controller, fault, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::baselines::{MostLikelyController, OracleController};
    use bpr_emn::two_server;

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    fn population() -> Vec<StateId> {
        vec![
            StateId::new(two_server::FAULT_A),
            StateId::new(two_server::FAULT_B),
        ]
    }

    #[test]
    fn empty_population_is_rejected() {
        let m = model();
        let err = Campaign::new(&m)
            .episodes(3)
            .run(|_| Ok(OracleController::new(m.clone())));
        assert!(err.is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let m = model();
        let err = Campaign::new(&m)
            .population(&population())
            .episodes(3)
            .threads(0)
            .run(|_| Ok(OracleController::new(m.clone())));
        assert!(err.is_err());
    }

    #[test]
    fn episode_order_is_stable_and_faults_cycle() {
        let m = model();
        let pop = population();
        let report = Campaign::new(&m)
            .population(&pop)
            .episodes(9)
            .seed(3)
            .threads(4)
            .run(|_| Ok(OracleController::new(m.clone())))
            .unwrap();
        assert_eq!(report.outcomes.len(), 9);
        assert_eq!(report.summary.episodes, 9);
        assert_eq!(report.aborted, 0);
        for (i, out) in report.outcomes.iter().enumerate() {
            assert_eq!(out.fault, pop[i % pop.len()], "episode {i}");
        }
    }

    #[test]
    fn parallel_campaign_matches_serial_bit_for_bit() {
        let m = model();
        let pop = population();
        let session = |threads: usize| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(12)
                .seed(11)
                .threads(threads)
                .run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        let serial = session(1);
        let wide = session(4);
        assert_eq!(serial.canonical_outcomes(), wide.canonical_outcomes());
        assert_eq!(serial.summary.mean_cost, wide.summary.mean_cost);
    }

    #[test]
    fn degraded_campaign_is_thread_count_invariant_and_aborts_count() {
        let m = model();
        let pop = population();
        let plan = PerturbationPlan {
            seed: 9,
            monitor_dropout_prob: 0.4,
            action_failure_prob: 0.3,
            ..PerturbationPlan::none()
        };
        let session = |threads: usize| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(10)
                .max_steps(60)
                .degraded(&plan)
                .seed(5)
                .threads(threads)
                .abort_tolerant(true)
                .run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        let serial = session(1);
        let wide = session(3);
        assert_eq!(serial.canonical_outcomes(), wide.canonical_outcomes());
        assert_eq!(serial.aborted, wide.aborted);
        // The perturbations actually fired on some episode.
        assert!(serial
            .outcomes
            .iter()
            .any(|o| o.perturbations.total() > 0 || !o.terminated));
    }

    #[test]
    fn empty_campaign_yields_a_named_zero_summary() {
        let m = model();
        let report = Campaign::new(&m)
            .population(&population())
            .run(|_| Ok(OracleController::new(m.clone())))
            .unwrap();
        assert_eq!(report.summary.episodes, 0);
        assert_eq!(report.summary.controller, "oracle");
        assert_eq!(report.episodes_per_sec(), 0.0);
    }
}
