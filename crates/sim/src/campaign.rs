//! The deterministic parallel campaign engine.
//!
//! [`Campaign`] is the session API behind every expensive
//! fault-injection loop in the workspace (paper Table 1 runs 10 000
//! injections per controller). Episodes of a campaign are
//! *independent given their seeds*: episode `i` draws its world
//! randomness from the stream `(master_seed, i)` (via
//! [`rand::split_seed`]), gets a controller freshly built by the
//! session's factory, and — for degraded campaigns — a perturbation
//! plan on stream `(plan.seed, i)`. Because nothing is threaded
//! through the loop, episodes schedule freely across a
//! [`bpr_par::WorkPool`], and the canonical results (see
//! [`EpisodeOutcome::canonical`]) are **bit-identical for every thread
//! count**, including 1.
//!
//! Contrast with [`crate::harness::run_campaign`], the serial stateful
//! protocol in which one controller carries its state (e.g. online
//! bound refinement) across episodes on a single shared RNG stream.

use crate::harness::{EpisodeOutcome, EpisodeRunner, HarnessConfig};
use crate::metrics::CampaignSummary;
use crate::PerturbationPlan;
use bpr_core::snapshot::{fnv1a64, read_snapshot, write_snapshot, CheckpointPolicy, SnapshotError};
use bpr_core::{Error, RecoveryController, RecoveryModel};
use bpr_mdp::StateId;
use bpr_par::WorkPool;
use rand::rngs::StdRng;
use rand::{split_seed, SeedableRng};
use std::path::Path;
use std::time::Instant;

/// A configured campaign session. Build with [`Campaign::new`] plus the
/// chained setters, then execute with [`Campaign::run`].
///
/// ```ignore
/// let report = Campaign::new(&model)
///     .population(&zombies)
///     .episodes(10_000)
///     .seed(7)
///     .threads(8)
///     .run(|_episode| MostLikelyController::new(model.clone(), 0.9999))?;
/// println!("{}", report.summary.table_row());
/// ```
#[derive(Debug, Clone)]
pub struct Campaign<'m> {
    model: &'m RecoveryModel,
    population: Vec<StateId>,
    episodes: usize,
    config: HarnessConfig,
    plan: Option<PerturbationPlan>,
    master_seed: u64,
    threads: usize,
    abort_tolerant: bool,
    checkpoint: Option<CheckpointPolicy>,
}

/// An episode whose controller panicked and was quarantined by the
/// pool's isolation layer instead of tearing down the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedEpisode {
    /// Index of the poisoned episode.
    pub episode: usize,
    /// The fault it was injecting.
    pub fault: StateId,
    /// The episode's derived RNG seed (`split_seed(master, episode)`) —
    /// enough to replay the panic in isolation.
    pub seed: u64,
    /// The captured panic payload (control characters replaced by
    /// spaces so the report stays line-safe).
    pub payload: String,
}

impl std::fmt::Display for QuarantinedEpisode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "episode {} (fault {}, seed {:#018x}) panicked: {}",
            self.episode,
            self.fault.index(),
            self.seed,
            self.payload
        )
    }
}

/// What a campaign run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-fault averages (the Table 1 row).
    pub summary: CampaignSummary,
    /// One outcome per episode, in episode order — stable whatever the
    /// thread count. Aborted episodes (abort-tolerant sessions only)
    /// appear as zeroed unrecovered/unterminated outcomes.
    pub outcomes: Vec<EpisodeOutcome>,
    /// Episodes whose controller errored out or panicked instead of
    /// terminating (always 0 unless the session is
    /// [`Campaign::abort_tolerant`]). Panicked episodes are aborted
    /// episodes that additionally appear in
    /// [`CampaignReport::quarantined`].
    pub aborted: usize,
    /// Episodes whose controller panicked; the isolation layer
    /// quarantined them (with fault, seed, and panic payload) instead
    /// of tearing down the campaign.
    pub quarantined: Vec<QuarantinedEpisode>,
    /// Worker threads the campaign ran on.
    pub threads: usize,
    /// Wall-clock seconds the campaign took.
    pub wall_seconds: f64,
    /// Episode index the run resumed from, when a compatible checkpoint
    /// was loaded (`None` for a fresh run).
    pub resumed_from: Option<usize>,
    /// Why a present-but-unusable checkpoint was discarded, if that
    /// happened; the campaign then ran fresh from episode 0.
    pub snapshot_error: Option<SnapshotError>,
    /// Checkpoints written during this run.
    pub checkpoints_written: usize,
}

impl CampaignReport {
    /// Episodes per wall-clock second — the scaling metric of
    /// `BENCH_scaling.json`.
    pub fn episodes_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.outcomes.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The outcomes with wall-clock fields zeroed; two runs of the same
    /// session are equal under this view regardless of thread count.
    pub fn canonical_outcomes(&self) -> Vec<EpisodeOutcome> {
        self.outcomes
            .iter()
            .map(EpisodeOutcome::canonical)
            .collect()
    }
}

impl<'m> Campaign<'m> {
    /// Creates a session with default harness config, no degradation,
    /// seed 0, and a single worker.
    pub fn new(model: &'m RecoveryModel) -> Campaign<'m> {
        Campaign {
            model,
            population: Vec::new(),
            episodes: 0,
            config: HarnessConfig::default(),
            plan: None,
            master_seed: 0,
            threads: 1,
            abort_tolerant: false,
            checkpoint: None,
        }
    }

    /// Sets the fault population episodes cycle through round-robin.
    pub fn population(mut self, population: &[StateId]) -> Campaign<'m> {
        self.population = population.to_vec();
        self
    }

    /// Sets the number of fault injections.
    pub fn episodes(mut self, episodes: usize) -> Campaign<'m> {
        self.episodes = episodes;
        self
    }

    /// Replaces the harness configuration.
    pub fn config(mut self, config: &HarnessConfig) -> Campaign<'m> {
        self.config = config.clone();
        self
    }

    /// Sets the per-episode step cap.
    pub fn max_steps(mut self, max_steps: usize) -> Campaign<'m> {
        self.config.max_steps = max_steps;
        self
    }

    /// Runs every episode against a degraded world. Episode `i` gets an
    /// independent perturbation stream: `plan.seed` is re-derived as
    /// `split_seed(plan.seed, i)`.
    pub fn degraded(mut self, plan: &PerturbationPlan) -> Campaign<'m> {
        self.plan = Some(plan.clone());
        self
    }

    /// Sets the master seed all per-episode streams derive from.
    pub fn seed(mut self, master_seed: u64) -> Campaign<'m> {
        self.master_seed = master_seed;
        self
    }

    /// Sets the worker count (the result does not depend on it).
    pub fn threads(mut self, threads: usize) -> Campaign<'m> {
        self.threads = threads;
        self
    }

    /// Tolerate controller aborts: an episode whose controller errors
    /// out (instead of terminating) is recorded as unrecovered and
    /// unterminated with zeroed metrics and counted in
    /// [`CampaignReport::aborted`], rather than failing the campaign.
    /// Controllers built for the idealised model *do* abort in degraded
    /// worlds — robustness sweeps treat that failure mode as data.
    ///
    /// Panicking episodes are handled the same way (and additionally
    /// reported in [`CampaignReport::quarantined`]); without tolerance
    /// a panic fails the campaign with [`Error::Panicked`].
    pub fn abort_tolerant(mut self, tolerate: bool) -> Campaign<'m> {
        self.abort_tolerant = tolerate;
        self
    }

    /// Checkpoints campaign progress to `path` every `every` episodes
    /// (and at completion), and resumes from a compatible checkpoint at
    /// `path` if one exists when [`Campaign::run`] starts.
    ///
    /// Because episodes are pure functions of `(master_seed, index)`,
    /// a killed-and-resumed campaign reproduces the uninterrupted run's
    /// [`CampaignReport::canonical_outcomes`] bit-for-bit, at any
    /// thread count. A checkpoint written by a *different* session
    /// (other seed, population, config, or plan) is rejected as
    /// incompatible; a corrupted one is discarded with a typed
    /// [`SnapshotError`] — either way the campaign runs fresh from
    /// episode 0 and reports why in [`CampaignReport::snapshot_error`].
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>, every: usize) -> Campaign<'m> {
        self.checkpoint = Some(CheckpointPolicy::new(path, every));
        self
    }

    /// Runs the campaign. `factory` builds the controller for each
    /// episode from its index; it must be deterministic per index
    /// (cloning a pre-built prototype is the usual, cheap pattern).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for an empty population, a zero thread
    ///   count, an invalid harness config, or an invalid plan.
    /// * Factory failures, and — unless the session is
    ///   [`Campaign::abort_tolerant`] — episode failures (the
    ///   lowest-index one, whatever the thread count).
    pub fn run<C, F>(&self, factory: F) -> Result<CampaignReport, Error>
    where
        C: RecoveryController,
        F: Fn(usize) -> Result<C, Error> + Sync,
    {
        if self.population.is_empty() {
            return Err(Error::InvalidInput {
                detail: "fault population must be non-empty".into(),
            });
        }
        self.config.validate()?;
        if let Some(plan) = &self.plan {
            plan.validate(self.model)?;
        }
        let pool = WorkPool::new(self.threads).map_err(|e| Error::InvalidInput {
            detail: e.to_string(),
        })?;
        if let Some(policy) = &self.checkpoint {
            policy.validate()?;
        }
        // The report is labelled with the controller's name; build one
        // up front so an empty campaign is labelled too, and factory
        // errors surface before any threads spawn.
        let name = factory(0)?.name().to_string();

        let start = Instant::now();
        let mut outcomes: Vec<EpisodeOutcome> = Vec::with_capacity(self.episodes);
        let mut aborted_flags: Vec<bool> = Vec::with_capacity(self.episodes);
        let mut quarantined: Vec<QuarantinedEpisode> = Vec::new();
        let mut resumed_from = None;
        let mut snapshot_error = None;
        let mut checkpoints_written = 0usize;

        if let Some(policy) = &self.checkpoint {
            match CampaignCheckpoint::load(&policy.path) {
                Ok(None) => {}
                Ok(Some(cp)) => {
                    if cp.fingerprint != self.fingerprint() {
                        snapshot_error = Some(SnapshotError::Incompatible {
                            detail: "checkpoint was written by a different campaign session".into(),
                        });
                    } else {
                        // A checkpoint ahead of a shorter target is
                        // fine: its prefix IS the shorter run.
                        let take = cp.outcomes.len().min(self.episodes);
                        outcomes = cp.outcomes[..take].to_vec();
                        aborted_flags = cp.aborted_flags[..take].to_vec();
                        quarantined = cp
                            .quarantined
                            .into_iter()
                            .filter(|q| q.episode < take)
                            .collect();
                        resumed_from = Some(take);
                    }
                }
                // A present-but-untrustworthy checkpoint must never
                // kill the campaign: record why and run fresh.
                Err(e) => snapshot_error = Some(e),
            }
        }

        while outcomes.len() < self.episodes {
            let next = outcomes.len();
            let round = match &self.checkpoint {
                Some(policy) => policy.every.min(self.episodes - next),
                None => self.episodes - next,
            };
            let results =
                pool.map_indices_isolated(round, |offset| self.run_one(next + offset, &factory));
            for (offset, result) in results.into_iter().enumerate() {
                let i = next + offset;
                match result {
                    Ok(Ok(outcome)) => {
                        outcomes.push(outcome);
                        aborted_flags.push(false);
                    }
                    Ok(Err(e)) if !self.abort_tolerant => return Err(e),
                    Ok(Err(_)) => {
                        outcomes.push(self.aborted_outcome(i));
                        aborted_flags.push(true);
                    }
                    Err(q) => {
                        let entry = QuarantinedEpisode {
                            episode: i,
                            fault: self.population[i % self.population.len()],
                            seed: split_seed(self.master_seed, i as u64),
                            payload: sanitize_payload(&q.payload),
                        };
                        if !self.abort_tolerant {
                            return Err(Error::Panicked {
                                detail: entry.to_string(),
                            });
                        }
                        quarantined.push(entry);
                        outcomes.push(self.aborted_outcome(i));
                        aborted_flags.push(true);
                    }
                }
            }
            if let Some(policy) = &self.checkpoint {
                CampaignCheckpoint {
                    fingerprint: self.fingerprint(),
                    outcomes: outcomes.iter().map(EpisodeOutcome::canonical).collect(),
                    aborted_flags: aborted_flags.clone(),
                    quarantined: quarantined.clone(),
                }
                .save(&policy.path)?;
                checkpoints_written += 1;
            }
        }
        let wall_seconds = start.elapsed().as_secs_f64();

        Ok(CampaignReport {
            summary: CampaignSummary::from_outcomes(&name, &outcomes),
            aborted: aborted_flags.iter().filter(|&&f| f).count(),
            outcomes,
            quarantined,
            threads: pool.threads(),
            wall_seconds,
            resumed_from,
            snapshot_error,
            checkpoints_written,
        })
    }

    /// The zeroed outcome recorded for an aborted or quarantined
    /// episode under [`Campaign::abort_tolerant`].
    fn aborted_outcome(&self, i: usize) -> EpisodeOutcome {
        EpisodeOutcome {
            fault: self.population[i % self.population.len()],
            cost: 0.0,
            recovery_time: 0.0,
            residual_time: 0.0,
            algorithm_time: 0.0,
            actions: 0,
            monitor_calls: 0,
            recovered: false,
            terminated: false,
            perturbations: Default::default(),
            retries: 0,
            escalations: 0,
            belief_resets: 0,
        }
    }

    /// Hash of everything that determines per-episode results *except*
    /// the episode target and thread count — so a run killed short of a
    /// longer target, or resumed on different hardware, still matches.
    /// The controller factory cannot be hashed; resuming with a
    /// different factory is the caller's bug.
    fn fingerprint(&self) -> u64 {
        fnv1a64(
            format!(
                "seed={} population={:?} max_steps={} plan={:?} tolerant={} n_states={}",
                self.master_seed,
                self.population,
                self.config.max_steps,
                self.plan,
                self.abort_tolerant,
                self.model.base().n_states(),
            )
            .as_bytes(),
        )
    }

    /// Episode `i`, a pure function of `(self, i)` — the determinism
    /// contract of [`WorkPool::map_indices_isolated`].
    fn run_one<C, F>(&self, i: usize, factory: &F) -> Result<EpisodeOutcome, Error>
    where
        C: RecoveryController,
        F: Fn(usize) -> Result<C, Error> + Sync,
    {
        let fault = self.population[i % self.population.len()];
        let mut controller = factory(i)?;
        let mut rng = StdRng::seed_from_stream(self.master_seed, i as u64);
        let mut runner = EpisodeRunner::new(self.model).config(&self.config);
        if let Some(plan) = &self.plan {
            let episode_plan = PerturbationPlan {
                seed: split_seed(plan.seed, i as u64),
                ..plan.clone()
            };
            runner = runner.degraded(&episode_plan);
        }
        runner.run_with_rng(&mut controller, fault, &mut rng)
    }
}

/// Replaces control characters (tabs, newlines, …) with spaces so a
/// panic payload stays confined to its line/field in the checkpoint
/// and in log output.
fn sanitize_payload(payload: &str) -> String {
    payload
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

/// Snapshot kind tag for campaign checkpoints.
const CAMPAIGN_KIND: &str = "campaign";

/// Everything needed to resume a campaign: the session fingerprint and
/// the canonical per-episode results so far. Stored through the
/// checksummed [`bpr_core::snapshot`] container.
#[derive(Debug, Clone, PartialEq)]
struct CampaignCheckpoint {
    fingerprint: u64,
    outcomes: Vec<EpisodeOutcome>,
    aborted_flags: Vec<bool>,
    quarantined: Vec<QuarantinedEpisode>,
}

impl CampaignCheckpoint {
    fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("next {}\n", self.outcomes.len()));
        for q in &self.quarantined {
            out.push_str(&format!(
                "quarantined {}\t{}\t{:016x}\t{}\n",
                q.episode,
                q.fault.index(),
                q.seed,
                sanitize_payload(&q.payload),
            ));
        }
        for (outcome, &aborted) in self.outcomes.iter().zip(&self.aborted_flags) {
            let p = &outcome.perturbations;
            out.push_str(&format!(
                "outcome {}\t{:?}\t{:?}\t{:?}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                outcome.fault.index(),
                outcome.cost,
                outcome.recovery_time,
                outcome.residual_time,
                outcome.actions,
                outcome.monitor_calls,
                u8::from(outcome.recovered),
                u8::from(outcome.terminated),
                u8::from(aborted),
                p.failed_actions,
                p.dropped_observations,
                p.corrupted_observations,
                p.injected_faults,
                outcome.retries,
                outcome.escalations,
                outcome.belief_resets,
            ));
        }
        out
    }

    fn decode(payload: &str) -> Result<CampaignCheckpoint, SnapshotError> {
        fn malformed(detail: impl Into<String>) -> SnapshotError {
            SnapshotError::Malformed {
                detail: detail.into(),
            }
        }
        let mut lines = payload.lines();
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| malformed("campaign checkpoint missing fingerprint line"))?;
        let declared: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("next "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| malformed("campaign checkpoint missing next line"))?;
        let mut quarantined = Vec::new();
        let mut outcomes = Vec::new();
        let mut aborted_flags = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("quarantined ") {
                let fields: Vec<&str> = rest.splitn(4, '\t').collect();
                if fields.len() != 4 {
                    return Err(malformed("quarantined line needs 4 fields"));
                }
                quarantined.push(QuarantinedEpisode {
                    episode: fields[0]
                        .parse()
                        .map_err(|_| malformed("bad quarantined episode index"))?,
                    fault: StateId::new(
                        fields[1]
                            .parse()
                            .map_err(|_| malformed("bad quarantined fault index"))?,
                    ),
                    seed: u64::from_str_radix(fields[2], 16)
                        .map_err(|_| malformed("bad quarantined seed"))?,
                    payload: fields[3].to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("outcome ") {
                let fields: Vec<&str> = rest.split('\t').collect();
                if fields.len() != 16 {
                    return Err(malformed("outcome line needs 16 fields"));
                }
                let int = |i: usize| -> Result<usize, SnapshotError> {
                    fields[i]
                        .parse()
                        .map_err(|_| malformed(format!("bad integer in outcome field {i}")))
                };
                let float = |i: usize| -> Result<f64, SnapshotError> {
                    fields[i]
                        .parse()
                        .map_err(|_| malformed(format!("bad float in outcome field {i}")))
                };
                let flag = |i: usize| -> Result<bool, SnapshotError> {
                    match fields[i] {
                        "0" => Ok(false),
                        "1" => Ok(true),
                        _ => Err(malformed(format!("bad flag in outcome field {i}"))),
                    }
                };
                outcomes.push(EpisodeOutcome {
                    fault: StateId::new(int(0)?),
                    cost: float(1)?,
                    recovery_time: float(2)?,
                    residual_time: float(3)?,
                    algorithm_time: 0.0,
                    actions: int(4)?,
                    monitor_calls: int(5)?,
                    recovered: flag(6)?,
                    terminated: flag(7)?,
                    perturbations: crate::PerturbationCounts {
                        failed_actions: int(9)?,
                        dropped_observations: int(10)?,
                        corrupted_observations: int(11)?,
                        injected_faults: int(12)?,
                    },
                    retries: int(13)?,
                    escalations: int(14)?,
                    belief_resets: int(15)?,
                });
                aborted_flags.push(flag(8)?);
            } else {
                return Err(malformed("unrecognised campaign checkpoint line"));
            }
        }
        if outcomes.len() != declared {
            return Err(malformed(format!(
                "campaign checkpoint declares {declared} outcomes but carries {}",
                outcomes.len()
            )));
        }
        Ok(CampaignCheckpoint {
            fingerprint,
            outcomes,
            aborted_flags,
            quarantined,
        })
    }

    fn save(&self, path: &Path) -> Result<(), Error> {
        write_snapshot(path, CAMPAIGN_KIND, &self.encode()).map_err(Error::from)
    }

    fn load(path: &Path) -> Result<Option<CampaignCheckpoint>, SnapshotError> {
        match read_snapshot(path, CAMPAIGN_KIND)? {
            Some(payload) => Ok(Some(CampaignCheckpoint::decode(&payload)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::baselines::{MostLikelyController, OracleController};
    use bpr_core::Step;
    use bpr_emn::two_server;
    use bpr_mdp::ActionId;
    use bpr_pomdp::{Belief, ObservationId};

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bpr_campaign_{}_{name}", std::process::id()))
    }

    /// An oracle that panics inside `decide()` when poisoned — the
    /// fixture for the quarantine tests.
    struct PanickyController {
        inner: OracleController,
        poisoned: bool,
    }

    impl RecoveryController for PanickyController {
        fn name(&self) -> &str {
            "panicky"
        }
        fn begin(&mut self, initial: Belief, true_fault: Option<StateId>) -> Result<(), Error> {
            self.inner.begin(initial, true_fault)
        }
        fn decide(&mut self) -> Result<Step, Error> {
            assert!(!self.poisoned, "poisoned episode");
            self.inner.decide()
        }
        fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
            self.inner.observe(action, o)
        }
        fn belief(&self) -> Option<Belief> {
            self.inner.belief()
        }
        fn uses_monitors(&self) -> bool {
            self.inner.uses_monitors()
        }
    }

    fn population() -> Vec<StateId> {
        vec![
            StateId::new(two_server::FAULT_A),
            StateId::new(two_server::FAULT_B),
        ]
    }

    #[test]
    fn empty_population_is_rejected() {
        let m = model();
        let err = Campaign::new(&m)
            .episodes(3)
            .run(|_| Ok(OracleController::new(m.clone())));
        assert!(err.is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let m = model();
        let err = Campaign::new(&m)
            .population(&population())
            .episodes(3)
            .threads(0)
            .run(|_| Ok(OracleController::new(m.clone())));
        assert!(err.is_err());
    }

    #[test]
    fn episode_order_is_stable_and_faults_cycle() {
        let m = model();
        let pop = population();
        let report = Campaign::new(&m)
            .population(&pop)
            .episodes(9)
            .seed(3)
            .threads(4)
            .run(|_| Ok(OracleController::new(m.clone())))
            .unwrap();
        assert_eq!(report.outcomes.len(), 9);
        assert_eq!(report.summary.episodes, 9);
        assert_eq!(report.aborted, 0);
        for (i, out) in report.outcomes.iter().enumerate() {
            assert_eq!(out.fault, pop[i % pop.len()], "episode {i}");
        }
    }

    #[test]
    fn parallel_campaign_matches_serial_bit_for_bit() {
        let m = model();
        let pop = population();
        let session = |threads: usize| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(12)
                .seed(11)
                .threads(threads)
                .run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        let serial = session(1);
        let wide = session(4);
        assert_eq!(serial.canonical_outcomes(), wide.canonical_outcomes());
        assert_eq!(serial.summary.mean_cost, wide.summary.mean_cost);
    }

    #[test]
    fn degraded_campaign_is_thread_count_invariant_and_aborts_count() {
        let m = model();
        let pop = population();
        let plan = PerturbationPlan {
            seed: 9,
            monitor_dropout_prob: 0.4,
            action_failure_prob: 0.3,
            ..PerturbationPlan::none()
        };
        let session = |threads: usize| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(10)
                .max_steps(60)
                .degraded(&plan)
                .seed(5)
                .threads(threads)
                .abort_tolerant(true)
                .run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        let serial = session(1);
        let wide = session(3);
        assert_eq!(serial.canonical_outcomes(), wide.canonical_outcomes());
        assert_eq!(serial.aborted, wide.aborted);
        // The perturbations actually fired on some episode.
        assert!(serial
            .outcomes
            .iter()
            .any(|o| o.perturbations.total() > 0 || !o.terminated));
    }

    #[test]
    fn killed_campaign_resumes_bit_identically_across_thread_counts() {
        let m = model();
        let pop = population();
        let path = scratch("kill_resume");
        let _ = std::fs::remove_file(&path);
        let session = |episodes: usize, threads: usize, checkpointed: bool| {
            let mut c = Campaign::new(&m)
                .population(&pop)
                .episodes(episodes)
                .seed(23)
                .threads(threads);
            if checkpointed {
                c = c.checkpoint(&path, 2);
            }
            c.run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        let reference = session(12, 1, false);

        // "Kill" at episode 5 by running a shorter target, then resume
        // to the full target on a different thread count.
        let killed = session(5, 2, true);
        assert_eq!(killed.checkpoints_written, 3);
        assert_eq!(killed.resumed_from, None);
        let resumed = session(12, 4, true);
        assert_eq!(resumed.resumed_from, Some(5));
        assert_eq!(resumed.snapshot_error, None);
        assert_eq!(resumed.canonical_outcomes(), reference.canonical_outcomes());
        // Summaries agree on everything but the wall-clock mean.
        assert_eq!(resumed.summary.mean_cost, reference.summary.mean_cost);
        assert_eq!(resumed.summary.unrecovered, reference.summary.unrecovered);

        // A third run finds the finished checkpoint and replays it
        // without re-running a single episode.
        let replayed = session(12, 1, true);
        assert_eq!(replayed.resumed_from, Some(12));
        assert_eq!(replayed.checkpoints_written, 0);
        assert_eq!(
            replayed.canonical_outcomes(),
            reference.canonical_outcomes()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_campaign_checkpoint_is_discarded_with_a_typed_error() {
        let m = model();
        let pop = population();
        let path = scratch("corrupt");
        let _ = std::fs::remove_file(&path);
        let session = |checkpointed: bool| {
            let mut c = Campaign::new(&m)
                .population(&pop)
                .episodes(6)
                .seed(31)
                .threads(2);
            if checkpointed {
                c = c.checkpoint(&path, 3);
            }
            c.run(|_| MostLikelyController::new(m.clone(), 0.95))
                .unwrap()
        };
        session(true);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let report = session(true);
        assert!(matches!(
            report.snapshot_error,
            Some(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(report.resumed_from, None);
        assert_eq!(
            report.canonical_outcomes(),
            session(false).canonical_outcomes()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_campaign_checkpoint_is_rejected_as_incompatible() {
        let m = model();
        let pop = population();
        let path = scratch("foreign");
        let _ = std::fs::remove_file(&path);
        let session = |seed: u64| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(4)
                .seed(seed)
                .checkpoint(&path, 2)
                .run(|_| Ok(OracleController::new(m.clone())))
                .unwrap()
        };
        session(1);
        let report = session(2);
        assert!(matches!(
            report.snapshot_error,
            Some(SnapshotError::Incompatible { .. })
        ));
        assert_eq!(report.resumed_from, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_episode_is_quarantined_when_tolerant() {
        let m = model();
        let pop = population();
        let path = scratch("quarantine");
        let _ = std::fs::remove_file(&path);
        let session = |threads: usize| {
            Campaign::new(&m)
                .population(&pop)
                .episodes(8)
                .seed(7)
                .threads(threads)
                .abort_tolerant(true)
                .checkpoint(&path, 4)
                .run(|i| {
                    Ok(PanickyController {
                        inner: OracleController::new(m.clone()),
                        poisoned: i == 3,
                    })
                })
                .unwrap()
        };
        for threads in [1usize, 3] {
            let _ = std::fs::remove_file(&path);
            let report = session(threads);
            assert_eq!(report.aborted, 1, "threads {threads}");
            assert_eq!(report.quarantined.len(), 1);
            let q = &report.quarantined[0];
            assert_eq!(q.episode, 3);
            assert_eq!(q.fault, pop[3 % pop.len()]);
            assert_eq!(q.seed, split_seed(7, 3));
            assert!(
                q.payload.contains("poisoned episode"),
                "payload: {}",
                q.payload
            );
            assert!(!report.outcomes[3].terminated);
            assert!(report.outcomes[2].terminated, "healthy episodes survive");
        }

        // The quarantine survives a checkpoint round-trip.
        let replayed = session(1);
        assert_eq!(replayed.resumed_from, Some(8));
        assert_eq!(replayed.quarantined.len(), 1);
        assert_eq!(replayed.quarantined[0].episode, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_episode_fails_an_intolerant_campaign_with_a_typed_error() {
        let m = model();
        let pop = population();
        let err = Campaign::new(&m)
            .population(&pop)
            .episodes(6)
            .seed(7)
            .threads(2)
            .run(|i| {
                Ok(PanickyController {
                    inner: OracleController::new(m.clone()),
                    poisoned: i == 2,
                })
            })
            .unwrap_err();
        match err {
            Error::Panicked { detail } => {
                assert!(detail.contains("episode 2"), "detail: {detail}");
                assert!(detail.contains("poisoned episode"), "detail: {detail}");
            }
            other => panic!("expected Error::Panicked, got {other:?}"),
        }
    }

    #[test]
    fn empty_campaign_yields_a_named_zero_summary() {
        let m = model();
        let report = Campaign::new(&m)
            .population(&population())
            .run(|_| Ok(OracleController::new(m.clone())))
            .unwrap();
        assert_eq!(report.summary.episodes, 0);
        assert_eq!(report.summary.controller, "oracle");
        assert_eq!(report.episodes_per_sec(), 0.0);
    }
}
