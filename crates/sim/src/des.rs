//! A small discrete-event simulation engine.
//!
//! Events are arbitrary payloads scheduled at f64 timestamps; the queue
//! pops them in time order with FIFO tie-breaking (insertion order for
//! equal timestamps), which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time, then insertion order.
///
/// # Examples
///
/// ```
/// use bpr_sim::des::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        // BinaryHeap is a max-heap: invert to get earliest-first, with
        // lower sequence numbers winning ties.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at 0.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current clock
    /// (events cannot be scheduled in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Schedules `event` `delay` seconds after the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation clock (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.schedule_in(7.5, ());
        assert_eq!(q.peek_time(), Some(5.0));
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.pop();
        assert_eq!(q.now(), 7.5);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
