//! Degraded-world simulation: fault injection *into the fault
//! injector* (robustness extension, beyond the paper).
//!
//! The paper's evaluation drives controllers against a [`World`] that
//! honours the model exactly: every recovery action lands, every
//! monitor answers, every observation comes from the model's kernel.
//! [`DegradedWorld`] wraps a [`World`] and perturbs that contract under
//! a seeded [`PerturbationPlan`]:
//!
//! * **Action failures** — a recovery action is executed but the system
//!   silently stays where it was (a restart that did not clear the
//!   fault).
//! * **Monitor dropout** — the action runs but no observation reaches
//!   the controller.
//! * **Observation corruption** — the monitor answers, but with a
//!   different observation than the kernel produced.
//! * **Secondary faults** — after the system reaches a null-fault
//!   state, a fresh fault may be injected mid-episode.
//!
//! Perturbation randomness comes from the plan's own seeded stream, so
//! a zero plan leaves the primary RNG stream byte-identical to a plain
//! [`World`] run: episodes under `PerturbationPlan::none()` reproduce
//! undegraded episodes exactly (property-tested in
//! `tests/robustness_properties.rs`).

use crate::World;
use bpr_core::{Error, RecoveryModel};
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::ObservationId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded description of how the world deviates from the model.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbationPlan {
    /// Seed of the plan's private RNG stream (independent of the
    /// episode RNG, so turning perturbations on or off never shifts the
    /// nominal sampling sequence).
    pub seed: u64,
    /// Probability that a non-observe action silently does nothing.
    pub action_failure_prob: f64,
    /// Probability that an executed action's observation is dropped.
    pub monitor_dropout_prob: f64,
    /// Probability that a delivered observation is corrupted.
    pub obs_corruption_prob: f64,
    /// Per-step probability of injecting a secondary fault once the
    /// system sits in a null-fault state.
    pub secondary_fault_prob: f64,
    /// Cap on secondary faults per episode.
    pub max_secondary_faults: usize,
    /// Faults eligible for secondary injection; empty means all of the
    /// model's fault states.
    pub secondary_faults: Vec<StateId>,
}

impl PerturbationPlan {
    /// The identity plan: no perturbations at all.
    pub fn none() -> PerturbationPlan {
        PerturbationPlan {
            seed: 0,
            action_failure_prob: 0.0,
            monitor_dropout_prob: 0.0,
            obs_corruption_prob: 0.0,
            secondary_fault_prob: 0.0,
            max_secondary_faults: 0,
            secondary_faults: Vec::new(),
        }
    }

    /// True when the plan perturbs nothing.
    pub fn is_zero(&self) -> bool {
        self.action_failure_prob == 0.0
            && self.monitor_dropout_prob == 0.0
            && self.obs_corruption_prob == 0.0
            && self.secondary_fault_prob == 0.0
    }

    /// Validates the plan against a model.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for probabilities outside `[0, 1]` or
    /// secondary faults that are out of bounds / not fault states.
    pub fn validate(&self, model: &RecoveryModel) -> Result<(), Error> {
        let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        if !prob_ok(self.action_failure_prob)
            || !prob_ok(self.monitor_dropout_prob)
            || !prob_ok(self.obs_corruption_prob)
            || !prob_ok(self.secondary_fault_prob)
        {
            return Err(Error::InvalidInput {
                detail: "perturbation probabilities must be in [0, 1]".into(),
            });
        }
        let faults = model.fault_states();
        for &s in &self.secondary_faults {
            if !faults.contains(&s) {
                return Err(Error::InvalidInput {
                    detail: format!("secondary fault {} is not a fault state", s.index()),
                });
            }
        }
        if self.secondary_fault_prob > 0.0
            && self.max_secondary_faults > 0
            && self.secondary_faults.is_empty()
            && faults.is_empty()
        {
            return Err(Error::InvalidInput {
                detail: "secondary injection enabled but no fault states exist".into(),
            });
        }
        Ok(())
    }
}

impl Default for PerturbationPlan {
    fn default() -> PerturbationPlan {
        PerturbationPlan::none()
    }
}

/// Perturbations that actually occurred during an episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerturbationCounts {
    /// Actions that silently failed.
    pub failed_actions: usize,
    /// Observations dropped before reaching the controller.
    pub dropped_observations: usize,
    /// Observations delivered corrupted.
    pub corrupted_observations: usize,
    /// Secondary faults injected mid-episode.
    pub injected_faults: usize,
}

impl PerturbationCounts {
    /// Total number of perturbation events.
    pub fn total(&self) -> usize {
        self.failed_actions
            + self.dropped_observations
            + self.corrupted_observations
            + self.injected_faults
    }
}

/// What one (possibly degraded) world step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepResult {
    /// The true state after the step.
    pub state: StateId,
    /// The observation delivered to the controller; `None` on monitor
    /// dropout.
    pub observation: Option<ObservationId>,
    /// Whether the action silently failed.
    pub action_failed: bool,
    /// Whether the delivered observation was corrupted.
    pub observation_corrupted: bool,
    /// The secondary fault injected at the end of this step, if any.
    pub injected_fault: Option<StateId>,
}

/// The world interface the episode harness drives — implemented by the
/// faithful [`World`] and by [`DegradedWorld`].
pub trait SimWorld {
    /// The (hidden) true state.
    fn true_state(&self) -> StateId;

    /// True if the world currently sits in a null-fault state.
    fn recovered(&self) -> bool;

    /// Executes `action` and reports what the controller gets to see.
    fn step_world<R: Rng + ?Sized>(&mut self, rng: &mut R, action: ActionId) -> StepResult;

    /// Samples the detection observation that triggers recovery, if the
    /// monitors deliver one.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] if the model tags no observe action.
    fn detect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Option<ObservationId>, Error>;

    /// Perturbations seen so far this episode.
    fn perturbations(&self) -> PerturbationCounts;
}

impl SimWorld for World<'_> {
    fn true_state(&self) -> StateId {
        self.state()
    }

    fn recovered(&self) -> bool {
        self.is_recovered()
    }

    fn step_world<R: Rng + ?Sized>(&mut self, rng: &mut R, action: ActionId) -> StepResult {
        let (state, obs) = self.step(rng, action);
        StepResult {
            state,
            observation: Some(obs),
            action_failed: false,
            observation_corrupted: false,
            injected_fault: None,
        }
    }

    fn detect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Option<ObservationId>, Error> {
        self.observe_in_place(rng).map(Some)
    }

    fn perturbations(&self) -> PerturbationCounts {
        PerturbationCounts::default()
    }
}

/// A [`World`] whose contract with the controller degrades according
/// to a [`PerturbationPlan`]; see the module docs.
#[derive(Debug, Clone)]
pub struct DegradedWorld<'a> {
    world: World<'a>,
    plan: PerturbationPlan,
    /// The plan's private randomness; never shared with the episode RNG.
    prng: StdRng,
    counts: PerturbationCounts,
}

impl<'a> DegradedWorld<'a> {
    /// Creates a degraded world with the given true state.
    ///
    /// The model passes through the inner [`World::new`] lint gate: a
    /// model with an error-severity lint finding is rejected before
    /// any degraded episode can run on it. Because a
    /// [`PerturbationPlan`] degrades the *world contract* (dropped
    /// observations, failed actions, injected faults) and never edits
    /// the model's matrices, a model accepted here stays lint-clean at
    /// error level for the entire episode, whatever the plan does —
    /// property-tested in `tests/robustness_properties.rs`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for an out-of-bounds state or an
    ///   invalid plan (see [`PerturbationPlan::validate`]).
    /// * [`Error::Lint`] if the model has an error-severity lint
    ///   finding.
    pub fn new(
        model: &'a RecoveryModel,
        state: StateId,
        plan: PerturbationPlan,
    ) -> Result<DegradedWorld<'a>, Error> {
        plan.validate(model)?;
        let world = World::new(model, state)?;
        let prng = StdRng::seed_from_u64(plan.seed);
        Ok(DegradedWorld {
            world,
            plan,
            prng,
            counts: PerturbationCounts::default(),
        })
    }

    /// The plan driving the degradation.
    pub fn plan(&self) -> &PerturbationPlan {
        &self.plan
    }

    /// The non-fatal lint findings of the underlying model, collected
    /// by the inner [`World`]'s construction-time gate.
    pub fn lint_warnings(&self) -> &[bpr_core::lint::Diagnostic] {
        self.world.lint_warnings()
    }

    /// Replaces `obs` with a different observation id, drawn from the
    /// plan's stream. With a power-of-two observation space (monitor
    /// bitmasks) a single random bit is flipped — one monitor lied;
    /// otherwise a different id is drawn uniformly.
    fn corrupt(&mut self, obs: ObservationId) -> ObservationId {
        let n = self.world.model().base().n_observations();
        if n <= 1 {
            return obs;
        }
        if n.is_power_of_two() {
            let bit = self.prng.gen_range(0..n.trailing_zeros() as usize);
            ObservationId::new(obs.index() ^ (1 << bit))
        } else {
            let raw = self.prng.gen_range(0..n - 1);
            ObservationId::new(if raw >= obs.index() { raw + 1 } else { raw })
        }
    }

    /// Dropout/corruption pipeline shared by steps and detection.
    fn deliver(&mut self, obs: ObservationId) -> (Option<ObservationId>, bool) {
        if self.plan.monitor_dropout_prob > 0.0
            && self.prng.gen_bool(self.plan.monitor_dropout_prob)
        {
            self.counts.dropped_observations += 1;
            return (None, false);
        }
        if self.plan.obs_corruption_prob > 0.0 && self.prng.gen_bool(self.plan.obs_corruption_prob)
        {
            let corrupted = self.corrupt(obs);
            if corrupted != obs {
                self.counts.corrupted_observations += 1;
                return (Some(corrupted), true);
            }
        }
        (Some(obs), false)
    }

    /// Rolls the secondary-fault dice; only fires from a null state.
    fn maybe_inject(&mut self) -> Option<StateId> {
        if !self.world.is_recovered()
            || self.counts.injected_faults >= self.plan.max_secondary_faults
            || self.plan.secondary_fault_prob == 0.0
            || !self.prng.gen_bool(self.plan.secondary_fault_prob)
        {
            return None;
        }
        let model = self.world.model();
        let pool = if self.plan.secondary_faults.is_empty() {
            model.fault_states()
        } else {
            self.plan.secondary_faults.clone()
        };
        if pool.is_empty() {
            return None;
        }
        let fault = pool[self.prng.gen_range(0..pool.len())];
        // Plan validation makes an out-of-range fault unreachable;
        // treat one as "no injection" rather than poisoning the episode.
        if self.world.force_state(fault).is_err() {
            return None;
        }
        self.counts.injected_faults += 1;
        Some(fault)
    }
}

impl SimWorld for DegradedWorld<'_> {
    fn true_state(&self) -> StateId {
        self.world.state()
    }

    fn recovered(&self) -> bool {
        self.world.is_recovered()
    }

    fn step_world<R: Rng + ?Sized>(&mut self, rng: &mut R, action: ActionId) -> StepResult {
        let model = self.world.model();
        // Observe actions cannot "fail" — monitor dropout models their
        // failure mode. The probability gates keep the plan stream
        // untouched under a zero plan.
        let action_failed = !model.is_observe(action)
            && self.plan.action_failure_prob > 0.0
            && self.prng.gen_bool(self.plan.action_failure_prob);
        let raw_obs = if action_failed {
            self.counts.failed_actions += 1;
            // The system stays put; the monitors still report on the
            // (unchanged) current state.
            model
                .base()
                .sample_observation(rng, self.world.state(), action)
        } else {
            self.world.step(rng, action).1
        };
        let (observation, observation_corrupted) = self.deliver(raw_obs);
        let injected_fault = self.maybe_inject();
        StepResult {
            state: self.world.state(),
            observation,
            action_failed,
            observation_corrupted,
            injected_fault,
        }
    }

    fn detect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Option<ObservationId>, Error> {
        let obs = self.world.observe_in_place(rng)?;
        let (delivered, _) = self.deliver(obs);
        Ok(delivered)
    }

    fn perturbations(&self) -> PerturbationCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_emn::two_server;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    fn plan(seed: u64) -> PerturbationPlan {
        PerturbationPlan {
            seed,
            ..PerturbationPlan::none()
        }
    }

    #[test]
    fn zero_plan_reproduces_the_plain_world_stream() {
        let m = model();
        let fault = StateId::new(two_server::FAULT_A);
        let mut plain = World::new_unchecked(&m, fault);
        let mut degraded = DegradedWorld::new(&m, fault, plan(99)).unwrap();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for step in 0..50 {
            let action = ActionId::new(step % 3);
            let a = SimWorld::step_world(&mut plain, &mut rng_a, action);
            let b = degraded.step_world(&mut rng_b, action);
            assert_eq!(a, b, "divergence at step {step}");
        }
        assert_eq!(degraded.perturbations().total(), 0);
    }

    #[test]
    fn plan_validation_rejects_bad_inputs() {
        let m = model();
        let fault = StateId::new(two_server::FAULT_A);
        let bad_prob = PerturbationPlan {
            action_failure_prob: 1.5,
            ..plan(1)
        };
        assert!(DegradedWorld::new(&m, fault, bad_prob).is_err());
        let bad_fault = PerturbationPlan {
            secondary_faults: vec![StateId::new(two_server::NULL)],
            ..plan(1)
        };
        assert!(DegradedWorld::new(&m, fault, bad_fault).is_err());
    }

    #[test]
    fn certain_action_failure_freezes_the_state() {
        let m = model();
        let p = PerturbationPlan {
            action_failure_prob: 1.0,
            ..plan(3)
        };
        let mut w = DegradedWorld::new(&m, StateId::new(two_server::FAULT_A), p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let r = w.step_world(&mut rng, ActionId::new(two_server::RESTART_A));
            assert!(r.action_failed);
            assert_eq!(r.state.index(), two_server::FAULT_A);
        }
        assert_eq!(w.perturbations().failed_actions, 20);
        assert!(!w.recovered());
    }

    #[test]
    fn observe_actions_do_not_fail() {
        let m = model();
        let p = PerturbationPlan {
            action_failure_prob: 1.0,
            ..plan(3)
        };
        let mut w = DegradedWorld::new(&m, StateId::new(two_server::FAULT_A), p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let r = w.step_world(&mut rng, ActionId::new(two_server::OBSERVE));
        assert!(!r.action_failed);
        assert_eq!(w.perturbations().failed_actions, 0);
    }

    #[test]
    fn certain_dropout_hides_every_observation() {
        let m = model();
        let p = PerturbationPlan {
            monitor_dropout_prob: 1.0,
            ..plan(5)
        };
        let mut w = DegradedWorld::new(&m, StateId::new(two_server::FAULT_B), p).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(w.detect(&mut rng).unwrap(), None);
        for _ in 0..10 {
            let r = w.step_world(&mut rng, ActionId::new(two_server::OBSERVE));
            assert_eq!(r.observation, None);
        }
        assert_eq!(w.perturbations().dropped_observations, 11);
    }

    #[test]
    fn corruption_changes_the_observation_and_counts() {
        let m = model();
        let p = PerturbationPlan {
            obs_corruption_prob: 1.0,
            ..plan(17)
        };
        let mut w = DegradedWorld::new(&m, StateId::new(two_server::FAULT_A), p).unwrap();
        // Replay the same step on a plain world with the same episode
        // RNG to learn what the uncorrupted observation would have been.
        let mut w_ref = World::new_unchecked(&m, StateId::new(two_server::FAULT_A));
        let mut corrupted = 0usize;
        for round in 0..30 {
            let mut rng_a = StdRng::seed_from_u64(round);
            let mut rng_b = StdRng::seed_from_u64(round);
            let r = w.step_world(&mut rng_a, ActionId::new(two_server::OBSERVE));
            let (_, raw) = w_ref.step(&mut rng_b, ActionId::new(two_server::OBSERVE));
            let delivered = r.observation.expect("no dropout in this plan");
            if delivered != raw {
                assert!(r.observation_corrupted);
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, w.perturbations().corrupted_observations);
        assert!(corrupted >= 25, "only {corrupted}/30 corrupted");
    }

    #[test]
    fn secondary_faults_reignite_recovered_systems() {
        let m = model();
        let p = PerturbationPlan {
            secondary_fault_prob: 1.0,
            max_secondary_faults: 2,
            secondary_faults: vec![StateId::new(two_server::FAULT_B)],
            ..plan(23)
        };
        let mut w = DegradedWorld::new(&m, StateId::new(two_server::FAULT_A), p).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        // Fix fault A; the step ends in Null, so injection fires.
        let r = w.step_world(&mut rng, ActionId::new(two_server::RESTART_A));
        assert_eq!(r.injected_fault, Some(StateId::new(two_server::FAULT_B)));
        assert!(!w.recovered());
        // Fix fault B; the cap allows one more injection.
        let r = w.step_world(&mut rng, ActionId::new(two_server::RESTART_B));
        assert_eq!(r.injected_fault, Some(StateId::new(two_server::FAULT_B)));
        // Cap reached: recovery sticks now.
        let r = w.step_world(&mut rng, ActionId::new(two_server::RESTART_B));
        assert_eq!(r.injected_fault, None);
        assert!(w.recovered());
        assert_eq!(w.perturbations().injected_faults, 2);
    }
}
