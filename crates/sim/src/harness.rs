//! The fault-injection harness behind the paper's Table 1.
//!
//! An *episode* injects one fault, lets a controller drive recovery
//! against the simulated [`World`], and measures the paper's per-fault
//! metrics. Episodes are configured and launched through the
//! [`EpisodeRunner`] builder (`.degraded(..)`, `.seed(..)`,
//! `.max_steps(..)`, then [`EpisodeRunner::run`] or
//! [`EpisodeRunner::run_traced`]); the former free-function quartet
//! (`run_episode*`) has been removed after its deprecation release.
//! A *campaign* repeats episodes over a fault population and
//! averages — serially here ([`run_campaign`]), or deterministically in
//! parallel through [`crate::campaign::Campaign`].

use crate::degraded::{DegradedWorld, PerturbationCounts, PerturbationPlan, SimWorld};
use crate::metrics::CampaignSummary;
use crate::World;
use bpr_core::{Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::StateId;
use bpr_pomdp::Belief;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Knobs of the harness itself (controller policy knobs live on the
/// controllers).
///
/// The fields stay public for struct-literal construction, but
/// [`HarnessConfig::builder`] is the recommended path: it validates and
/// returns an `Err` on nonsense instead of silently running, and every
/// harness entry point re-checks via [`HarnessConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Per-episode step cap; a controller that has not terminated after
    /// this many decisions is cut off (and the episode marked
    /// unterminated).
    pub max_steps: usize,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig { max_steps: 500 }
    }
}

impl HarnessConfig {
    /// Starts a validated builder, initialised to the defaults.
    pub fn builder() -> HarnessConfigBuilder {
        HarnessConfigBuilder {
            config: HarnessConfig::default(),
        }
    }

    /// Checks the configuration for values that would make every
    /// episode degenerate.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] if `max_steps` is zero (no controller
    /// could ever terminate: every episode would be cut off before its
    /// first decision).
    pub fn validate(&self) -> Result<(), Error> {
        if self.max_steps == 0 {
            return Err(Error::InvalidInput {
                detail: "harness max_steps must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Validating builder for [`HarnessConfig`].
#[derive(Debug, Clone)]
pub struct HarnessConfigBuilder {
    config: HarnessConfig,
}

impl HarnessConfigBuilder {
    /// Sets the per-episode step cap.
    pub fn max_steps(mut self, max_steps: usize) -> HarnessConfigBuilder {
        self.config.max_steps = max_steps;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HarnessConfig::validate`].
    pub fn build(self) -> Result<HarnessConfig, Error> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Builder-style episode launcher — the single front door to the
/// episode protocol.
///
/// ```ignore
/// let outcome = EpisodeRunner::new(&model)
///     .max_steps(400)
///     .degraded(&plan)   // optional: perturbed world
///     .seed(42)          // episode RNG, derived internally
///     .run(&mut controller, fault)?;
/// ```
///
/// `run`/`run_traced` seed a fresh [`StdRng`] from `.seed(..)` (default
/// 0), making the episode a pure function of its inputs; the
/// `*_with_rng` variants accept a caller-threaded generator for legacy
/// call sites and for campaigns that interleave episodes on one stream.
#[derive(Debug, Clone)]
pub struct EpisodeRunner<'m> {
    model: &'m RecoveryModel,
    config: HarnessConfig,
    plan: Option<PerturbationPlan>,
    seed: u64,
}

impl<'m> EpisodeRunner<'m> {
    /// Creates a runner with the default [`HarnessConfig`], an
    /// undegraded world, and seed 0.
    pub fn new(model: &'m RecoveryModel) -> EpisodeRunner<'m> {
        EpisodeRunner {
            model,
            config: HarnessConfig::default(),
            plan: None,
            seed: 0,
        }
    }

    /// Replaces the whole harness configuration.
    pub fn config(mut self, config: &HarnessConfig) -> EpisodeRunner<'m> {
        self.config = config.clone();
        self
    }

    /// Sets the per-episode step cap.
    pub fn max_steps(mut self, max_steps: usize) -> EpisodeRunner<'m> {
        self.config.max_steps = max_steps;
        self
    }

    /// Runs the episode against a [`DegradedWorld`] governed by `plan`
    /// instead of a plain [`World`]. With [`PerturbationPlan::none`]
    /// the episode is byte-identical to the undegraded protocol under
    /// the same RNG: the plan's randomness lives on its own stream.
    pub fn degraded(mut self, plan: &PerturbationPlan) -> EpisodeRunner<'m> {
        self.plan = Some(plan.clone());
        self
    }

    /// Seeds the episode RNG used by [`EpisodeRunner::run`] /
    /// [`EpisodeRunner::run_traced`].
    pub fn seed(mut self, seed: u64) -> EpisodeRunner<'m> {
        self.seed = seed;
        self
    }

    /// Runs one fault-injection episode.
    ///
    /// The protocol mirrors paper §4/§5: the fault is injected,
    /// monitors detect *something*, the controller starts from the
    /// belief "all faults equally likely" conditioned on the detection
    /// observation (Eq. 4), then alternates decisions, action
    /// execution, and monitor updates until it terminates.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (model mismatch, belief-update
    /// errors) and rejects invalid configs, out-of-bounds faults, and
    /// (for degraded runs) invalid plans.
    pub fn run(
        &self,
        controller: &mut dyn RecoveryController,
        fault: StateId,
    ) -> Result<EpisodeOutcome, Error> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_with_rng(controller, fault, &mut rng)
    }

    /// [`EpisodeRunner::run`] with a full per-step trace, for debugging
    /// models and controllers (and for rendering recovery timelines).
    ///
    /// # Errors
    ///
    /// Same as [`EpisodeRunner::run`].
    pub fn run_traced(
        &self,
        controller: &mut dyn RecoveryController,
        fault: StateId,
    ) -> Result<(EpisodeOutcome, Vec<TraceEvent>), Error> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_traced_with_rng(controller, fault, &mut rng)
    }

    /// [`EpisodeRunner::run`] drawing randomness from a caller-supplied
    /// generator instead of the built-in `.seed(..)` stream.
    ///
    /// # Errors
    ///
    /// Same as [`EpisodeRunner::run`].
    pub fn run_with_rng<R: Rng + ?Sized>(
        &self,
        controller: &mut dyn RecoveryController,
        fault: StateId,
        rng: &mut R,
    ) -> Result<EpisodeOutcome, Error> {
        self.dispatch(controller, fault, rng, None)
    }

    /// [`EpisodeRunner::run_traced`] drawing randomness from a
    /// caller-supplied generator.
    ///
    /// # Errors
    ///
    /// Same as [`EpisodeRunner::run`].
    pub fn run_traced_with_rng<R: Rng + ?Sized>(
        &self,
        controller: &mut dyn RecoveryController,
        fault: StateId,
        rng: &mut R,
    ) -> Result<(EpisodeOutcome, Vec<TraceEvent>), Error> {
        let mut trace = Vec::new();
        let outcome = self.dispatch(controller, fault, rng, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    fn dispatch<R: Rng + ?Sized>(
        &self,
        controller: &mut dyn RecoveryController,
        fault: StateId,
        rng: &mut R,
        trace: Option<&mut Vec<TraceEvent>>,
    ) -> Result<EpisodeOutcome, Error> {
        self.config.validate()?;
        match &self.plan {
            Some(plan) => {
                let world = DegradedWorld::new(self.model, fault, plan.clone())?;
                run_episode_impl(self.model, controller, world, &self.config, rng, trace)
            }
            None => {
                let world = World::new(self.model, fault)?;
                run_episode_impl(self.model, controller, world, &self.config, rng, trace)
            }
        }
    }
}

/// The per-fault metrics of one recovery episode (paper Table 1, plus
/// the robustness counters of the degraded harness).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeOutcome {
    /// The injected fault.
    pub fault: StateId,
    /// Accumulated cost (requests dropped): the negated model rewards
    /// of all executed actions.
    pub cost: f64,
    /// Wall-clock seconds from detection until the controller
    /// terminated recovery.
    pub recovery_time: f64,
    /// Wall-clock seconds the fault was actually present.
    pub residual_time: f64,
    /// Wall-clock seconds the controller spent inside `decide()`.
    pub algorithm_time: f64,
    /// Number of recovery (non-observe) actions executed.
    pub actions: usize,
    /// Number of monitor invocations (observations delivered).
    pub monitor_calls: usize,
    /// Whether the world was in a null-fault state at termination.
    pub recovered: bool,
    /// Whether the controller terminated within the step cap.
    pub terminated: bool,
    /// Perturbations the world inflicted (all zero for undegraded
    /// episodes).
    pub perturbations: PerturbationCounts,
    /// Retries the controller's hardening layer granted (0 for plain
    /// controllers).
    pub retries: usize,
    /// Escalation-ladder steps the controller took (0 for plain
    /// controllers).
    pub escalations: usize,
    /// Belief re-initialisations the controller performed (0 for plain
    /// controllers).
    pub belief_resets: usize,
}

impl EpisodeOutcome {
    /// The outcome with its wall-clock-derived field
    /// (`algorithm_time`) zeroed — everything that remains is a pure
    /// function of `(model, controller, seeds)`. This is the view that
    /// determinism checks compare: a parallel campaign must reproduce
    /// the serial campaign's canonical outcomes bit-for-bit.
    pub fn canonical(&self) -> EpisodeOutcome {
        EpisodeOutcome {
            algorithm_time: 0.0,
            ..self.clone()
        }
    }
}

/// One step of an episode trace (see [`EpisodeRunner::run_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// 1-based step number.
    pub step: usize,
    /// Wall-clock seconds at the *end* of the step.
    pub wall: f64,
    /// The executed action, or `None` for the terminate decision.
    pub action: Option<bpr_mdp::ActionId>,
    /// The world's true state after the action.
    pub world_after: StateId,
    /// The observation delivered to the controller, if any.
    pub observation: Option<bpr_pomdp::ObservationId>,
    /// Cost incurred by this step.
    pub cost: f64,
    /// Belief mass the controller places on the null-fault states
    /// after the step (NaN for belief-less controllers).
    pub null_mass: f64,
    /// Whether the action silently failed (degraded worlds only).
    pub action_failed: bool,
    /// Whether the delivered observation was corrupted (degraded worlds
    /// only).
    pub observation_corrupted: bool,
    /// The secondary fault injected at the end of this step, if any.
    pub injected_fault: Option<StateId>,
}

/// The belief a controller starts recovery from: "all faults equally
/// likely" (paper Eq. 4) conditioned on the detection observation that
/// triggered recovery.
///
/// Shared by the episode harness and the `bpr-serve` incident
/// lifecycle so both enter recovery through the identical protocol.
/// Models without a tagged observe action have no monitoring kernel to
/// sample, and controllers that ignore monitors get no conditioning;
/// both start from the unconditioned prior. A dropped detection
/// observation (degraded worlds) also falls back to the prior, as does
/// a conditioning failure (zero-likelihood observation).
///
/// # Errors
///
/// Propagates detection sampling failures from the world.
pub fn detection_belief<W: SimWorld, R: Rng + ?Sized>(
    model: &RecoveryModel,
    uses_monitors: bool,
    world: &mut W,
    rng: &mut R,
) -> Result<Belief, Error> {
    let faults = model.fault_states();
    let prior = Belief::uniform_over(model.base().n_states(), &faults);
    Ok(match model.observe_actions().first().copied() {
        Some(observe) if uses_monitors => match world.detect(rng)? {
            Some(o) => match prior.update(model.base(), observe, o) {
                Ok((b, _)) => b,
                Err(_) => prior,
            },
            // Detection observation lost to monitor dropout.
            None => prior,
        },
        _ => prior,
    })
}

fn run_episode_impl<W: SimWorld, R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    mut world: W,
    config: &HarnessConfig,
    rng: &mut R,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> Result<EpisodeOutcome, Error> {
    let fault = world.true_state();
    // Condition the prior on the detection observation (not charged to
    // the monitor-call metric: it is the detection that *triggered*
    // recovery).
    let initial = detection_belief(model, controller.uses_monitors(), &mut world, rng)?;
    controller.begin(initial, Some(fault))?;

    let mut outcome = EpisodeOutcome {
        fault,
        cost: 0.0,
        recovery_time: 0.0,
        residual_time: 0.0,
        algorithm_time: 0.0,
        actions: 0,
        monitor_calls: 0,
        recovered: false,
        terminated: false,
        perturbations: PerturbationCounts::default(),
        retries: 0,
        escalations: 0,
        belief_resets: 0,
    };
    let mut wall = 0.0f64;
    let mut fault_fixed_at: Option<f64> = None;
    if world.recovered() {
        fault_fixed_at = Some(0.0);
    }

    for step_no in 1..=config.max_steps {
        let t0 = Instant::now();
        let step = controller.decide()?;
        outcome.algorithm_time += t0.elapsed().as_secs_f64();
        match step {
            Step::Terminate => {
                outcome.terminated = true;
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: None,
                        world_after: world.true_state(),
                        observation: None,
                        cost: 0.0,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                        action_failed: false,
                        observation_corrupted: false,
                        injected_fault: None,
                    });
                }
                break;
            }
            Step::Execute(a) => {
                let pre_state = world.true_state();
                let step_cost = -model.base().mdp().reward(pre_state, a);
                outcome.cost += step_cost;
                wall += model.base().mdp().duration(a);
                let result = world.step_world(rng, a);
                if model.is_null(result.state) {
                    if fault_fixed_at.is_none() {
                        fault_fixed_at = Some(wall);
                    }
                } else if result.injected_fault.is_some() {
                    // A secondary fault re-broke the system: the fault
                    // is "present" again, so stop crediting the earlier
                    // fix with the residual-time clock.
                    fault_fixed_at = None;
                }
                if !model.is_observe(a) {
                    outcome.actions += 1;
                }
                let mut delivered = None;
                if controller.uses_monitors() {
                    match result.observation {
                        Some(obs) => {
                            controller.observe(a, obs)?;
                            outcome.monitor_calls += 1;
                            delivered = Some(obs);
                        }
                        // Monitor dropout: the action ran, nothing came
                        // back. Not a monitor call — nothing answered.
                        None => controller.on_unobserved(a)?,
                    }
                }
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: Some(a),
                        world_after: result.state,
                        observation: delivered,
                        cost: step_cost,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                        action_failed: result.action_failed,
                        observation_corrupted: result.observation_corrupted,
                        injected_fault: result.injected_fault,
                    });
                }
            }
        }
    }
    outcome.recovery_time = wall;
    outcome.recovered = world.recovered();
    outcome.residual_time = fault_fixed_at.unwrap_or(wall);
    outcome.perturbations = world.perturbations();
    if let Some(stats) = controller.resilience_stats() {
        outcome.retries = stats.retries;
        outcome.escalations = stats.escalations;
        outcome.belief_resets = stats.belief_resets;
    }
    Ok(outcome)
}

/// Runs a *serial, stateful* campaign: `episodes` fault injections
/// cycling round-robin through `fault_population` (so different
/// controllers driven with the same population and episode count face
/// the identical, balanced fault sequence), all driven through the
/// same controller (which is re-`begin`-ed for each episode) on one
/// shared RNG stream. Controller state (e.g. online bound refinement)
/// carries across episodes.
///
/// For the deterministic parallel engine — independent episodes with
/// per-episode seed derivation — use [`crate::campaign::Campaign`].
///
/// # Errors
///
/// * [`Error::InvalidInput`] if `fault_population` is empty.
/// * Propagates episode failures.
pub fn run_campaign<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault_population: &[StateId],
    episodes: usize,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<CampaignSummary, Error> {
    if fault_population.is_empty() {
        return Err(Error::InvalidInput {
            detail: "fault population must be non-empty".into(),
        });
    }
    let runner = EpisodeRunner::new(model).config(config);
    let mut outcomes = Vec::with_capacity(episodes);
    for i in 0..episodes {
        let fault = fault_population[i % fault_population.len()];
        outcomes.push(runner.run_with_rng(controller, fault, rng)?);
    }
    Ok(CampaignSummary::from_outcomes(controller.name(), &outcomes))
}

/// [`run_campaign`] against degraded worlds. Each episode derives its
/// own plan seed from `plan.seed` and the episode index, so episodes
/// see independent perturbation streams while the whole campaign stays
/// reproducible.
///
/// # Errors
///
/// Same as [`run_campaign`], plus plan validation failures.
pub fn run_campaign_degraded<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault_population: &[StateId],
    episodes: usize,
    plan: &PerturbationPlan,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<CampaignSummary, Error> {
    if fault_population.is_empty() {
        return Err(Error::InvalidInput {
            detail: "fault population must be non-empty".into(),
        });
    }
    let mut outcomes = Vec::with_capacity(episodes);
    for i in 0..episodes {
        let fault = fault_population[i % fault_population.len()];
        let episode_plan = PerturbationPlan {
            // SplitMix64-style spread keeps per-episode streams apart.
            // (Kept verbatim for seed-stability of recorded runs; the
            // parallel engine uses `rand::split_seed` instead.)
            seed: plan
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..plan.clone()
        };
        outcomes.push(
            EpisodeRunner::new(model)
                .config(config)
                .degraded(&episode_plan)
                .run_with_rng(controller, fault, rng)?,
        );
    }
    Ok(CampaignSummary::from_outcomes(controller.name(), &outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::baselines::{HeuristicController, MostLikelyController, OracleController};
    use bpr_core::{BoundedConfig, BoundedController};
    use bpr_emn::two_server;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    #[test]
    fn oracle_episode_is_one_action_no_monitors() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let out = EpisodeRunner::new(&m)
            .seed(1)
            .run(&mut c, StateId::new(two_server::FAULT_A))
            .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.actions, 1);
        assert_eq!(out.monitor_calls, 0);
        assert_eq!(out.cost, 0.5);
        assert_eq!(out.recovery_time, 1.0);
        assert_eq!(out.residual_time, 1.0);
        assert_eq!(out.perturbations.total(), 0);
        assert_eq!(out.retries + out.escalations + out.belief_resets, 0);
    }

    #[test]
    fn most_likely_recovers_the_system() {
        let m = model();
        let mut c = MostLikelyController::new(m.clone(), 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let runner = EpisodeRunner::new(&m);
        let mut recovered = 0;
        for i in 0..20 {
            let fault = StateId::new(if i % 2 == 0 {
                two_server::FAULT_A
            } else {
                two_server::FAULT_B
            });
            let out = runner.run_with_rng(&mut c, fault, &mut rng).unwrap();
            assert!(out.terminated, "episode {i} did not terminate");
            if out.recovered {
                recovered += 1;
            }
        }
        assert!(recovered >= 18, "only {recovered}/20 recovered");
    }

    #[test]
    fn bounded_controller_full_campaign() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let summary = run_campaign(
            &m,
            &mut c,
            &[
                StateId::new(two_server::FAULT_A),
                StateId::new(two_server::FAULT_B),
            ],
            30,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 30);
        assert_eq!(summary.unterminated, 0);
        assert_eq!(summary.unrecovered, 0, "controller quit before recovery");
        assert!(summary.mean_cost > 0.0);
        assert!(summary.mean_recovery_time >= summary.mean_residual_time);
    }

    #[test]
    fn heuristic_campaign_terminates() {
        let m = model();
        let mut c = HeuristicController::new(m.clone(), 1, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let summary = run_campaign(
            &m,
            &mut c,
            &[StateId::new(two_server::FAULT_A)],
            10,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 10);
        assert_eq!(summary.unterminated, 0);
        assert!(summary.mean_monitor_calls >= summary.mean_actions);
    }

    #[test]
    fn empty_population_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_campaign(&m, &mut c, &[], 5, &HarnessConfig::default(), &mut rng).is_err());
        assert!(run_campaign_degraded(
            &m,
            &mut c,
            &[],
            5,
            &PerturbationPlan::none(),
            &HarnessConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn out_of_bounds_fault_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        assert!(EpisodeRunner::new(&m)
            .seed(5)
            .run(&mut c, StateId::new(99))
            .is_err());
    }

    #[test]
    fn zero_max_steps_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        assert!(EpisodeRunner::new(&m)
            .max_steps(0)
            .run(&mut c, StateId::new(two_server::FAULT_A))
            .is_err());
        assert!(HarnessConfig::builder().max_steps(0).build().is_err());
        assert_eq!(
            HarnessConfig::builder().max_steps(7).build().unwrap(),
            HarnessConfig { max_steps: 7 }
        );
        assert!(HarnessConfig::builder().build().is_ok());
    }

    #[test]
    fn traced_episode_records_every_step() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let (out, trace) = EpisodeRunner::new(&m)
            .seed(12)
            .run_traced(&mut c, StateId::new(two_server::FAULT_A))
            .unwrap();
        assert!(out.terminated);
        // One trace event per decision, terminate included; for a
        // monitor-using controller every execute step delivers one
        // observation.
        assert_eq!(trace.len(), out.monitor_calls + 1);
        let last = trace.last().unwrap();
        assert_eq!(last.action, None, "final event must be the termination");
        assert!(last.null_mass > 0.5, "terminated while unsure");
        // Wall clock is non-decreasing and costs are non-negative.
        let mut prev_wall = 0.0;
        for e in &trace {
            assert!(e.wall >= prev_wall);
            assert!(e.cost >= 0.0);
            assert!(!e.action_failed && !e.observation_corrupted);
            assert_eq!(e.injected_fault, None);
            prev_wall = e.wall;
        }
        let total: f64 = trace.iter().map(|e| e.cost).sum();
        assert!((total - out.cost).abs() < 1e-9);
    }

    #[test]
    fn injecting_null_fault_is_benign() {
        // Degenerate episode: "fault" is the null state; the controller
        // should terminate quickly and report recovered.
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let out = EpisodeRunner::new(&m)
            .seed(6)
            .run(&mut c, StateId::new(two_server::NULL))
            .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.residual_time, 0.0);
    }

    #[test]
    fn zero_plan_episode_matches_undegraded_episode() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c1 = BoundedController::new(t.clone(), BoundedConfig::default()).unwrap();
        let mut c2 = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let fault = StateId::new(two_server::FAULT_B);
        let (o1, t1) = EpisodeRunner::new(&m)
            .seed(21)
            .run_traced(&mut c1, fault)
            .unwrap();
        let (o2, t2) = EpisodeRunner::new(&m)
            .seed(21)
            .degraded(&PerturbationPlan::none())
            .run_traced(&mut c2, fault)
            .unwrap();
        assert_eq!(o1.canonical(), o2.canonical());
        assert_eq!(t1, t2);
    }

    #[test]
    fn full_dropout_forces_blind_recovery() {
        let m = model();
        let mut c = MostLikelyController::new(m.clone(), 0.95).unwrap();
        let plan = PerturbationPlan {
            seed: 5,
            monitor_dropout_prob: 1.0,
            ..PerturbationPlan::none()
        };
        let out = EpisodeRunner::new(&m)
            .seed(31)
            .degraded(&plan)
            .max_steps(40)
            .run(&mut c, StateId::new(two_server::FAULT_A))
            .unwrap();
        // Every observation (detection included) was dropped.
        assert_eq!(out.monitor_calls, 0);
        assert!(out.perturbations.dropped_observations > 0);
    }
}
