//! The fault-injection harness behind the paper's Table 1.
//!
//! An *episode* injects one fault, lets a controller drive recovery
//! against the simulated [`World`], and measures the paper's per-fault
//! metrics. A *campaign* repeats episodes over a fault population and
//! averages.

use crate::metrics::CampaignSummary;
use crate::World;
use bpr_core::{Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::StateId;
use bpr_pomdp::Belief;
use rand::Rng;
use std::time::Instant;

/// Knobs of the harness itself (controller policy knobs live on the
/// controllers).
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Per-episode step cap; a controller that has not terminated after
    /// this many decisions is cut off (and the episode marked
    /// unterminated).
    pub max_steps: usize,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig { max_steps: 500 }
    }
}

/// The per-fault metrics of one recovery episode (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeOutcome {
    /// The injected fault.
    pub fault: StateId,
    /// Accumulated cost (requests dropped): the negated model rewards
    /// of all executed actions.
    pub cost: f64,
    /// Wall-clock seconds from detection until the controller
    /// terminated recovery.
    pub recovery_time: f64,
    /// Wall-clock seconds the fault was actually present.
    pub residual_time: f64,
    /// Wall-clock seconds the controller spent inside `decide()`.
    pub algorithm_time: f64,
    /// Number of recovery (non-observe) actions executed.
    pub actions: usize,
    /// Number of monitor invocations (observations delivered).
    pub monitor_calls: usize,
    /// Whether the world was in a null-fault state at termination.
    pub recovered: bool,
    /// Whether the controller terminated within the step cap.
    pub terminated: bool,
}

/// One step of an episode trace (see [`run_episode_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// 1-based step number.
    pub step: usize,
    /// Wall-clock seconds at the *end* of the step.
    pub wall: f64,
    /// The executed action, or `None` for the terminate decision.
    pub action: Option<bpr_mdp::ActionId>,
    /// The world's true state after the action.
    pub world_after: StateId,
    /// The observation delivered to the controller, if any.
    pub observation: Option<bpr_pomdp::ObservationId>,
    /// Cost incurred by this step.
    pub cost: f64,
    /// Belief mass the controller places on the null-fault states
    /// after the step (NaN for belief-less controllers).
    pub null_mass: f64,
}

/// Runs one fault-injection episode.
///
/// The protocol mirrors paper §4/§5: the fault is injected, monitors
/// detect *something*, the controller starts from the belief "all
/// faults equally likely" conditioned on the detection observation
/// (Eq. 4), then alternates decisions, action execution, and monitor
/// updates until it terminates.
///
/// # Errors
///
/// Propagates controller failures (model mismatch, belief-update
/// errors).
pub fn run_episode<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<EpisodeOutcome, Error> {
    run_episode_impl(model, controller, fault, config, rng, None)
}

/// [`run_episode`] with a full per-step trace, for debugging models
/// and controllers (and for rendering recovery timelines).
///
/// # Errors
///
/// Same as [`run_episode`].
pub fn run_episode_traced<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<(EpisodeOutcome, Vec<TraceEvent>), Error> {
    let mut trace = Vec::new();
    let outcome = run_episode_impl(model, controller, fault, config, rng, Some(&mut trace))?;
    Ok((outcome, trace))
}

fn run_episode_impl<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    config: &HarnessConfig,
    rng: &mut R,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> Result<EpisodeOutcome, Error> {
    let mut world = World::new(model, fault);
    let faults = model.fault_states();
    let prior = Belief::uniform_over(model.base().n_states(), &faults);
    // Condition the prior on the detection observation (not charged to
    // the monitor-call metric: it is the detection that *triggered*
    // recovery).
    let initial = if controller.uses_monitors() {
        let observe = model
            .observe_actions()
            .first()
            .copied()
            .unwrap_or_else(|| bpr_mdp::ActionId::new(0));
        let o = world.observe_in_place(rng);
        match prior.update(model.base(), observe, o) {
            Ok((b, _)) => b,
            Err(_) => prior,
        }
    } else {
        prior
    };
    controller.begin(initial, Some(fault))?;

    let mut outcome = EpisodeOutcome {
        fault,
        cost: 0.0,
        recovery_time: 0.0,
        residual_time: 0.0,
        algorithm_time: 0.0,
        actions: 0,
        monitor_calls: 0,
        recovered: false,
        terminated: false,
    };
    let mut wall = 0.0f64;
    let mut fault_fixed_at: Option<f64> = None;
    if world.is_recovered() {
        fault_fixed_at = Some(0.0);
    }

    for step_no in 1..=config.max_steps {
        let t0 = Instant::now();
        let step = controller.decide()?;
        outcome.algorithm_time += t0.elapsed().as_secs_f64();
        match step {
            Step::Terminate => {
                outcome.terminated = true;
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: None,
                        world_after: world.state(),
                        observation: None,
                        cost: 0.0,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                    });
                }
                break;
            }
            Step::Execute(a) => {
                let pre_state = world.state();
                let step_cost = -model.base().mdp().reward(pre_state, a);
                outcome.cost += step_cost;
                wall += model.base().mdp().duration(a);
                let (post, obs) = world.step(rng, a);
                if fault_fixed_at.is_none() && model.is_null(post) {
                    fault_fixed_at = Some(wall);
                }
                if !model.is_observe(a) {
                    outcome.actions += 1;
                }
                let mut delivered = None;
                if controller.uses_monitors() {
                    controller.observe(a, obs)?;
                    outcome.monitor_calls += 1;
                    delivered = Some(obs);
                }
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: Some(a),
                        world_after: post,
                        observation: delivered,
                        cost: step_cost,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                    });
                }
            }
        }
    }
    outcome.recovery_time = wall;
    outcome.recovered = world.is_recovered();
    outcome.residual_time = fault_fixed_at.unwrap_or(wall);
    Ok(outcome)
}

/// Runs a campaign: `episodes` fault injections cycling round-robin
/// through `fault_population` (so different controllers driven with
/// the same population and episode count face the identical, balanced
/// fault sequence), all driven through the same controller (which is
/// re-`begin`-ed for each episode). Returns the per-fault averages.
///
/// # Errors
///
/// * [`Error::InvalidInput`] if `fault_population` is empty.
/// * Propagates episode failures.
pub fn run_campaign<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault_population: &[StateId],
    episodes: usize,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<CampaignSummary, Error> {
    if fault_population.is_empty() {
        return Err(Error::InvalidInput {
            detail: "fault population must be non-empty".into(),
        });
    }
    let mut outcomes = Vec::with_capacity(episodes);
    for i in 0..episodes {
        let fault = fault_population[i % fault_population.len()];
        outcomes.push(run_episode(model, controller, fault, config, rng)?);
    }
    Ok(CampaignSummary::from_outcomes(
        controller.name(),
        &outcomes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::baselines::{HeuristicController, MostLikelyController, OracleController};
    use bpr_core::{BoundedConfig, BoundedController};
    use bpr_emn::two_server;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    #[test]
    fn oracle_episode_is_one_action_no_monitors() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_episode(
            &m,
            &mut c,
            StateId::new(two_server::FAULT_A),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.actions, 1);
        assert_eq!(out.monitor_calls, 0);
        assert_eq!(out.cost, 0.5);
        assert_eq!(out.recovery_time, 1.0);
        assert_eq!(out.residual_time, 1.0);
    }

    #[test]
    fn most_likely_recovers_the_system() {
        let m = model();
        let mut c = MostLikelyController::new(m.clone(), 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut recovered = 0;
        for i in 0..20 {
            let fault = StateId::new(if i % 2 == 0 {
                two_server::FAULT_A
            } else {
                two_server::FAULT_B
            });
            let out =
                run_episode(&m, &mut c, fault, &HarnessConfig::default(), &mut rng).unwrap();
            assert!(out.terminated, "episode {i} did not terminate");
            if out.recovered {
                recovered += 1;
            }
        }
        assert!(recovered >= 18, "only {recovered}/20 recovered");
    }

    #[test]
    fn bounded_controller_full_campaign() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let summary = run_campaign(
            &m,
            &mut c,
            &[
                StateId::new(two_server::FAULT_A),
                StateId::new(two_server::FAULT_B),
            ],
            30,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 30);
        assert_eq!(summary.unterminated, 0);
        assert_eq!(summary.unrecovered, 0, "controller quit before recovery");
        assert!(summary.mean_cost > 0.0);
        assert!(summary.mean_recovery_time >= summary.mean_residual_time);
    }

    #[test]
    fn heuristic_campaign_terminates() {
        let m = model();
        let mut c = HeuristicController::new(m.clone(), 1, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let summary = run_campaign(
            &m,
            &mut c,
            &[StateId::new(two_server::FAULT_A)],
            10,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 10);
        assert_eq!(summary.unterminated, 0);
        assert!(summary.mean_monitor_calls >= summary.mean_actions);
    }

    #[test]
    fn empty_population_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_campaign(&m, &mut c, &[], 5, &HarnessConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn traced_episode_records_every_step() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let (out, trace) = run_episode_traced(
            &m,
            &mut c,
            StateId::new(two_server::FAULT_A),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        // One trace event per decision, terminate included; for a
        // monitor-using controller every execute step delivers one
        // observation.
        assert_eq!(trace.len(), out.monitor_calls + 1);
        let last = trace.last().unwrap();
        assert_eq!(last.action, None, "final event must be the termination");
        assert!(last.null_mass > 0.5, "terminated while unsure");
        // Wall clock is non-decreasing and costs are non-negative.
        let mut prev_wall = 0.0;
        for e in &trace {
            assert!(e.wall >= prev_wall);
            assert!(e.cost >= 0.0);
            prev_wall = e.wall;
        }
        let total: f64 = trace.iter().map(|e| e.cost).sum();
        assert!((total - out.cost).abs() < 1e-9);
    }

    #[test]
    fn injecting_null_fault_is_benign() {
        // Degenerate episode: "fault" is the null state; the controller
        // should terminate quickly and report recovered.
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_episode(
            &m,
            &mut c,
            StateId::new(two_server::NULL),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.residual_time, 0.0);
    }
}
