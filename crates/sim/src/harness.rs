//! The fault-injection harness behind the paper's Table 1.
//!
//! An *episode* injects one fault, lets a controller drive recovery
//! against the simulated [`World`], and measures the paper's per-fault
//! metrics. A *campaign* repeats episodes over a fault population and
//! averages. The degraded variants ([`run_episode_degraded`],
//! [`run_campaign_degraded`]) drive the same protocol against a
//! [`DegradedWorld`] whose contract with the controller is perturbed by
//! a seeded [`PerturbationPlan`].

use crate::degraded::{DegradedWorld, PerturbationCounts, PerturbationPlan, SimWorld};
use crate::metrics::CampaignSummary;
use crate::World;
use bpr_core::{Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::StateId;
use bpr_pomdp::Belief;
use rand::Rng;
use std::time::Instant;

/// Knobs of the harness itself (controller policy knobs live on the
/// controllers).
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Per-episode step cap; a controller that has not terminated after
    /// this many decisions is cut off (and the episode marked
    /// unterminated).
    pub max_steps: usize,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig { max_steps: 500 }
    }
}

/// The per-fault metrics of one recovery episode (paper Table 1, plus
/// the robustness counters of the degraded harness).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeOutcome {
    /// The injected fault.
    pub fault: StateId,
    /// Accumulated cost (requests dropped): the negated model rewards
    /// of all executed actions.
    pub cost: f64,
    /// Wall-clock seconds from detection until the controller
    /// terminated recovery.
    pub recovery_time: f64,
    /// Wall-clock seconds the fault was actually present.
    pub residual_time: f64,
    /// Wall-clock seconds the controller spent inside `decide()`.
    pub algorithm_time: f64,
    /// Number of recovery (non-observe) actions executed.
    pub actions: usize,
    /// Number of monitor invocations (observations delivered).
    pub monitor_calls: usize,
    /// Whether the world was in a null-fault state at termination.
    pub recovered: bool,
    /// Whether the controller terminated within the step cap.
    pub terminated: bool,
    /// Perturbations the world inflicted (all zero for undegraded
    /// episodes).
    pub perturbations: PerturbationCounts,
    /// Retries the controller's hardening layer granted (0 for plain
    /// controllers).
    pub retries: usize,
    /// Escalation-ladder steps the controller took (0 for plain
    /// controllers).
    pub escalations: usize,
    /// Belief re-initialisations the controller performed (0 for plain
    /// controllers).
    pub belief_resets: usize,
}

/// One step of an episode trace (see [`run_episode_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// 1-based step number.
    pub step: usize,
    /// Wall-clock seconds at the *end* of the step.
    pub wall: f64,
    /// The executed action, or `None` for the terminate decision.
    pub action: Option<bpr_mdp::ActionId>,
    /// The world's true state after the action.
    pub world_after: StateId,
    /// The observation delivered to the controller, if any.
    pub observation: Option<bpr_pomdp::ObservationId>,
    /// Cost incurred by this step.
    pub cost: f64,
    /// Belief mass the controller places on the null-fault states
    /// after the step (NaN for belief-less controllers).
    pub null_mass: f64,
    /// Whether the action silently failed (degraded worlds only).
    pub action_failed: bool,
    /// Whether the delivered observation was corrupted (degraded worlds
    /// only).
    pub observation_corrupted: bool,
    /// The secondary fault injected at the end of this step, if any.
    pub injected_fault: Option<StateId>,
}

/// Runs one fault-injection episode.
///
/// The protocol mirrors paper §4/§5: the fault is injected, monitors
/// detect *something*, the controller starts from the belief "all
/// faults equally likely" conditioned on the detection observation
/// (Eq. 4), then alternates decisions, action execution, and monitor
/// updates until it terminates.
///
/// # Errors
///
/// Propagates controller failures (model mismatch, belief-update
/// errors) and rejects out-of-bounds faults.
pub fn run_episode<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<EpisodeOutcome, Error> {
    let world = World::new(model, fault)?;
    run_episode_impl(model, controller, world, config, rng, None)
}

/// [`run_episode`] with a full per-step trace, for debugging models
/// and controllers (and for rendering recovery timelines).
///
/// # Errors
///
/// Same as [`run_episode`].
pub fn run_episode_traced<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<(EpisodeOutcome, Vec<TraceEvent>), Error> {
    let world = World::new(model, fault)?;
    let mut trace = Vec::new();
    let outcome = run_episode_impl(model, controller, world, config, rng, Some(&mut trace))?;
    Ok((outcome, trace))
}

/// Runs one episode against a [`DegradedWorld`] governed by `plan`.
///
/// With `PerturbationPlan::none()` the episode is byte-identical to
/// [`run_episode`] under the same `rng` seed: the plan's randomness
/// lives on its own stream.
///
/// # Errors
///
/// Same as [`run_episode`], plus plan validation failures.
pub fn run_episode_degraded<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    plan: &PerturbationPlan,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<EpisodeOutcome, Error> {
    let world = DegradedWorld::new(model, fault, plan.clone())?;
    run_episode_impl(model, controller, world, config, rng, None)
}

/// [`run_episode_degraded`] with a full per-step trace.
///
/// # Errors
///
/// Same as [`run_episode_degraded`].
pub fn run_episode_degraded_traced<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault: StateId,
    plan: &PerturbationPlan,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<(EpisodeOutcome, Vec<TraceEvent>), Error> {
    let world = DegradedWorld::new(model, fault, plan.clone())?;
    let mut trace = Vec::new();
    let outcome = run_episode_impl(model, controller, world, config, rng, Some(&mut trace))?;
    Ok((outcome, trace))
}

fn run_episode_impl<W: SimWorld, R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    mut world: W,
    config: &HarnessConfig,
    rng: &mut R,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> Result<EpisodeOutcome, Error> {
    let fault = world.true_state();
    let faults = model.fault_states();
    let prior = Belief::uniform_over(model.base().n_states(), &faults);
    // Condition the prior on the detection observation (not charged to
    // the monitor-call metric: it is the detection that *triggered*
    // recovery). Models without a tagged observe action have no
    // monitoring kernel to sample, so their controllers start from the
    // unconditioned prior.
    let initial = match model.observe_actions().first().copied() {
        Some(observe) if controller.uses_monitors() => match world.detect(rng)? {
            Some(o) => match prior.update(model.base(), observe, o) {
                Ok((b, _)) => b,
                Err(_) => prior,
            },
            // Detection observation lost to monitor dropout.
            None => prior,
        },
        _ => prior,
    };
    controller.begin(initial, Some(fault))?;

    let mut outcome = EpisodeOutcome {
        fault,
        cost: 0.0,
        recovery_time: 0.0,
        residual_time: 0.0,
        algorithm_time: 0.0,
        actions: 0,
        monitor_calls: 0,
        recovered: false,
        terminated: false,
        perturbations: PerturbationCounts::default(),
        retries: 0,
        escalations: 0,
        belief_resets: 0,
    };
    let mut wall = 0.0f64;
    let mut fault_fixed_at: Option<f64> = None;
    if world.recovered() {
        fault_fixed_at = Some(0.0);
    }

    for step_no in 1..=config.max_steps {
        let t0 = Instant::now();
        let step = controller.decide()?;
        outcome.algorithm_time += t0.elapsed().as_secs_f64();
        match step {
            Step::Terminate => {
                outcome.terminated = true;
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: None,
                        world_after: world.true_state(),
                        observation: None,
                        cost: 0.0,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                        action_failed: false,
                        observation_corrupted: false,
                        injected_fault: None,
                    });
                }
                break;
            }
            Step::Execute(a) => {
                let pre_state = world.true_state();
                let step_cost = -model.base().mdp().reward(pre_state, a);
                outcome.cost += step_cost;
                wall += model.base().mdp().duration(a);
                let result = world.step_world(rng, a);
                if model.is_null(result.state) {
                    if fault_fixed_at.is_none() {
                        fault_fixed_at = Some(wall);
                    }
                } else if result.injected_fault.is_some() {
                    // A secondary fault re-broke the system: the fault
                    // is "present" again, so stop crediting the earlier
                    // fix with the residual-time clock.
                    fault_fixed_at = None;
                }
                if !model.is_observe(a) {
                    outcome.actions += 1;
                }
                let mut delivered = None;
                if controller.uses_monitors() {
                    match result.observation {
                        Some(obs) => {
                            controller.observe(a, obs)?;
                            outcome.monitor_calls += 1;
                            delivered = Some(obs);
                        }
                        // Monitor dropout: the action ran, nothing came
                        // back. Not a monitor call — nothing answered.
                        None => controller.on_unobserved(a)?,
                    }
                }
                if let Some(trace) = trace.as_deref_mut() {
                    trace.push(TraceEvent {
                        step: step_no,
                        wall,
                        action: Some(a),
                        world_after: result.state,
                        observation: delivered,
                        cost: step_cost,
                        null_mass: controller
                            .belief()
                            .map_or(f64::NAN, |b| b.prob_in(model.null_states())),
                        action_failed: result.action_failed,
                        observation_corrupted: result.observation_corrupted,
                        injected_fault: result.injected_fault,
                    });
                }
            }
        }
    }
    outcome.recovery_time = wall;
    outcome.recovered = world.recovered();
    outcome.residual_time = fault_fixed_at.unwrap_or(wall);
    outcome.perturbations = world.perturbations();
    if let Some(stats) = controller.resilience_stats() {
        outcome.retries = stats.retries;
        outcome.escalations = stats.escalations;
        outcome.belief_resets = stats.belief_resets;
    }
    Ok(outcome)
}

/// Runs a campaign: `episodes` fault injections cycling round-robin
/// through `fault_population` (so different controllers driven with
/// the same population and episode count face the identical, balanced
/// fault sequence), all driven through the same controller (which is
/// re-`begin`-ed for each episode). Returns the per-fault averages.
///
/// # Errors
///
/// * [`Error::InvalidInput`] if `fault_population` is empty.
/// * Propagates episode failures.
pub fn run_campaign<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault_population: &[StateId],
    episodes: usize,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<CampaignSummary, Error> {
    if fault_population.is_empty() {
        return Err(Error::InvalidInput {
            detail: "fault population must be non-empty".into(),
        });
    }
    let mut outcomes = Vec::with_capacity(episodes);
    for i in 0..episodes {
        let fault = fault_population[i % fault_population.len()];
        outcomes.push(run_episode(model, controller, fault, config, rng)?);
    }
    Ok(CampaignSummary::from_outcomes(controller.name(), &outcomes))
}

/// [`run_campaign`] against degraded worlds. Each episode derives its
/// own plan seed from `plan.seed` and the episode index, so episodes
/// see independent perturbation streams while the whole campaign stays
/// reproducible.
///
/// # Errors
///
/// Same as [`run_campaign`], plus plan validation failures.
pub fn run_campaign_degraded<R: Rng + ?Sized>(
    model: &RecoveryModel,
    controller: &mut dyn RecoveryController,
    fault_population: &[StateId],
    episodes: usize,
    plan: &PerturbationPlan,
    config: &HarnessConfig,
    rng: &mut R,
) -> Result<CampaignSummary, Error> {
    if fault_population.is_empty() {
        return Err(Error::InvalidInput {
            detail: "fault population must be non-empty".into(),
        });
    }
    let mut outcomes = Vec::with_capacity(episodes);
    for i in 0..episodes {
        let fault = fault_population[i % fault_population.len()];
        let episode_plan = PerturbationPlan {
            // SplitMix64-style spread keeps per-episode streams apart.
            seed: plan
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..plan.clone()
        };
        outcomes.push(run_episode_degraded(
            model,
            controller,
            fault,
            &episode_plan,
            config,
            rng,
        )?);
    }
    Ok(CampaignSummary::from_outcomes(controller.name(), &outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::baselines::{HeuristicController, MostLikelyController, OracleController};
    use bpr_core::{BoundedConfig, BoundedController};
    use bpr_emn::two_server;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RecoveryModel {
        two_server::default_model().unwrap()
    }

    #[test]
    fn oracle_episode_is_one_action_no_monitors() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_episode(
            &m,
            &mut c,
            StateId::new(two_server::FAULT_A),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.actions, 1);
        assert_eq!(out.monitor_calls, 0);
        assert_eq!(out.cost, 0.5);
        assert_eq!(out.recovery_time, 1.0);
        assert_eq!(out.residual_time, 1.0);
        assert_eq!(out.perturbations.total(), 0);
        assert_eq!(out.retries + out.escalations + out.belief_resets, 0);
    }

    #[test]
    fn most_likely_recovers_the_system() {
        let m = model();
        let mut c = MostLikelyController::new(m.clone(), 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut recovered = 0;
        for i in 0..20 {
            let fault = StateId::new(if i % 2 == 0 {
                two_server::FAULT_A
            } else {
                two_server::FAULT_B
            });
            let out = run_episode(&m, &mut c, fault, &HarnessConfig::default(), &mut rng).unwrap();
            assert!(out.terminated, "episode {i} did not terminate");
            if out.recovered {
                recovered += 1;
            }
        }
        assert!(recovered >= 18, "only {recovered}/20 recovered");
    }

    #[test]
    fn bounded_controller_full_campaign() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let summary = run_campaign(
            &m,
            &mut c,
            &[
                StateId::new(two_server::FAULT_A),
                StateId::new(two_server::FAULT_B),
            ],
            30,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 30);
        assert_eq!(summary.unterminated, 0);
        assert_eq!(summary.unrecovered, 0, "controller quit before recovery");
        assert!(summary.mean_cost > 0.0);
        assert!(summary.mean_recovery_time >= summary.mean_residual_time);
    }

    #[test]
    fn heuristic_campaign_terminates() {
        let m = model();
        let mut c = HeuristicController::new(m.clone(), 1, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let summary = run_campaign(
            &m,
            &mut c,
            &[StateId::new(two_server::FAULT_A)],
            10,
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(summary.episodes, 10);
        assert_eq!(summary.unterminated, 0);
        assert!(summary.mean_monitor_calls >= summary.mean_actions);
    }

    #[test]
    fn empty_population_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_campaign(&m, &mut c, &[], 5, &HarnessConfig::default(), &mut rng).is_err());
        assert!(run_campaign_degraded(
            &m,
            &mut c,
            &[],
            5,
            &PerturbationPlan::none(),
            &HarnessConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn out_of_bounds_fault_is_rejected() {
        let m = model();
        let mut c = OracleController::new(m.clone());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_episode(
            &m,
            &mut c,
            StateId::new(99),
            &HarnessConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn traced_episode_records_every_step() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let (out, trace) = run_episode_traced(
            &m,
            &mut c,
            StateId::new(two_server::FAULT_A),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        // One trace event per decision, terminate included; for a
        // monitor-using controller every execute step delivers one
        // observation.
        assert_eq!(trace.len(), out.monitor_calls + 1);
        let last = trace.last().unwrap();
        assert_eq!(last.action, None, "final event must be the termination");
        assert!(last.null_mass > 0.5, "terminated while unsure");
        // Wall clock is non-decreasing and costs are non-negative.
        let mut prev_wall = 0.0;
        for e in &trace {
            assert!(e.wall >= prev_wall);
            assert!(e.cost >= 0.0);
            assert!(!e.action_failed && !e.observation_corrupted);
            assert_eq!(e.injected_fault, None);
            prev_wall = e.wall;
        }
        let total: f64 = trace.iter().map(|e| e.cost).sum();
        assert!((total - out.cost).abs() < 1e-9);
    }

    #[test]
    fn injecting_null_fault_is_benign() {
        // Degenerate episode: "fault" is the null state; the controller
        // should terminate quickly and report recovered.
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_episode(
            &m,
            &mut c,
            StateId::new(two_server::NULL),
            &HarnessConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.terminated);
        assert!(out.recovered);
        assert_eq!(out.residual_time, 0.0);
    }

    #[test]
    fn zero_plan_episode_matches_undegraded_episode() {
        let m = model();
        let t = m.without_notification(50.0).unwrap();
        let mut c1 = BoundedController::new(t.clone(), BoundedConfig::default()).unwrap();
        let mut c2 = BoundedController::new(t, BoundedConfig::default()).unwrap();
        let mut rng1 = StdRng::seed_from_u64(21);
        let mut rng2 = StdRng::seed_from_u64(21);
        let fault = StateId::new(two_server::FAULT_B);
        let (o1, t1) =
            run_episode_traced(&m, &mut c1, fault, &HarnessConfig::default(), &mut rng1).unwrap();
        let (o2, t2) = run_episode_degraded_traced(
            &m,
            &mut c2,
            fault,
            &PerturbationPlan::none(),
            &HarnessConfig::default(),
            &mut rng2,
        )
        .unwrap();
        let strip = |o: &EpisodeOutcome| {
            let mut o = o.clone();
            o.algorithm_time = 0.0;
            o
        };
        assert_eq!(strip(&o1), strip(&o2));
        assert_eq!(t1, t2);
    }

    #[test]
    fn full_dropout_forces_blind_recovery() {
        let m = model();
        let mut c = MostLikelyController::new(m.clone(), 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let plan = PerturbationPlan {
            seed: 5,
            monitor_dropout_prob: 1.0,
            ..PerturbationPlan::none()
        };
        let out = run_episode_degraded(
            &m,
            &mut c,
            StateId::new(two_server::FAULT_A),
            &plan,
            &HarnessConfig { max_steps: 40 },
            &mut rng,
        )
        .unwrap();
        // Every observation (detection included) was dropped.
        assert_eq!(out.monitor_calls, 0);
        assert!(out.perturbations.dropped_observations > 0);
    }
}
