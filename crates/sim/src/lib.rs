//! Simulation substrate for the `bpr` workspace: the fault-injection
//! harness behind the paper's experiments (§5) and a small
//! discrete-event engine used for request-level model validation.
//!
//! * [`World`] — ground-truth simulator of a recovery model: holds the
//!   true (hidden) fault state and samples transitions and monitor
//!   observations from the model's `p` and `q`.
//! * [`degraded`] — the robustness extension: [`DegradedWorld`] wraps a
//!   [`World`] and perturbs its contract with the controller (silent
//!   action failures, monitor dropout, observation corruption,
//!   mid-episode secondary faults) under a seeded
//!   [`PerturbationPlan`].
//! * [`harness`] — drives any [`bpr_core::RecoveryController`] against
//!   a [`World`] (or [`DegradedWorld`]) via the [`EpisodeRunner`]
//!   builder, measuring the paper's per-fault metrics: cost, recovery
//!   time, residual time, algorithm time, recovery actions, and
//!   monitor calls (Table 1).
//! * [`campaign`] — the deterministic parallel campaign engine:
//!   [`Campaign`] fans independent episodes across a
//!   [`bpr_par::WorkPool`] with per-episode RNG streams, bit-identical
//!   for every thread count.
//! * [`metrics`] — campaign aggregation (per-fault averages).
//! * [`des`] — a generic discrete-event queue, used by the
//!   request-level simulation that validates the model's analytic drop
//!   fractions against individually routed requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod degraded;
pub mod des;
pub mod harness;
pub mod metrics;
mod world;

pub use campaign::{Campaign, CampaignReport, QuarantinedEpisode};
pub use degraded::{DegradedWorld, PerturbationCounts, PerturbationPlan, SimWorld, StepResult};
pub use harness::{
    detection_belief, run_campaign, run_campaign_degraded, EpisodeOutcome, EpisodeRunner,
    HarnessConfig, HarnessConfigBuilder, TraceEvent,
};
pub use metrics::CampaignSummary;
pub use world::World;
