//! Simulation substrate for the `bpr` workspace: the fault-injection
//! harness behind the paper's experiments (§5) and a small
//! discrete-event engine used for request-level model validation.
//!
//! * [`World`] — ground-truth simulator of a recovery model: holds the
//!   true (hidden) fault state and samples transitions and monitor
//!   observations from the model's `p` and `q`.
//! * [`harness`] — drives any [`bpr_core::RecoveryController`] against
//!   a [`World`], measuring the paper's per-fault metrics: cost,
//!   recovery time, residual time, algorithm time, recovery actions,
//!   and monitor calls (Table 1).
//! * [`metrics`] — campaign aggregation (per-fault averages).
//! * [`des`] — a generic discrete-event queue, used by the
//!   request-level simulation that validates the model's analytic drop
//!   fractions against individually routed requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod harness;
pub mod metrics;
mod world;

pub use harness::{
    run_campaign, run_episode, run_episode_traced, EpisodeOutcome, HarnessConfig, TraceEvent,
};
pub use metrics::CampaignSummary;
pub use world::World;
