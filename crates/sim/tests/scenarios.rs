//! Scenario-level integration tests: the notified controller, bound
//! persistence, episode traces, and the diagnose-then-fix baseline,
//! all driven through the fault-injection harness.

use bpr_core::baselines::DiagnoseThenFixController;
use bpr_core::bootstrap::{bootstrap, BootstrapConfig, BootstrapVariant};
use bpr_core::preview::{preview, PreviewOpts};
use bpr_core::{
    BoundedConfig, BoundedController, NotifiedBoundedController, NotifiedConfig,
    RecoveryController, Step,
};
use bpr_emn::two_server;
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::bounds::{ra_bound, ValueBound, VectorSetBound};
use bpr_pomdp::Belief;
use bpr_sim::{run_campaign, EpisodeRunner, HarnessConfig, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn notified_controller_completes_episodes_on_two_server() {
    // The two-server model's monitors are noisy, so give the notified
    // controller a realistic threshold rather than certainty.
    let model = two_server::default_model().unwrap();
    let mut c = NotifiedBoundedController::new(
        &model,
        NotifiedConfig {
            notification_threshold: 0.999,
            ..NotifiedConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    for fault in [two_server::FAULT_A, two_server::FAULT_B] {
        let out = EpisodeRunner::new(&model)
            .run_with_rng(&mut c, StateId::new(fault), &mut rng)
            .unwrap();
        assert!(out.terminated, "fault {fault} did not terminate");
        assert!(out.recovered, "fault {fault} quit before recovery");
    }
}

#[test]
fn persisted_bound_reproduces_controller_decisions() {
    let model = two_server::default_model().unwrap();
    let transformed = model.without_notification(50.0).unwrap();
    // Bootstrap a bound, persist it, reload it, and check both
    // controllers decide identically across a spread of beliefs.
    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 5,
            depth: 1,
            conditioning_action: ActionId::new(two_server::OBSERVE),
            ..BootstrapConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let tsv = bound.to_tsv();
    let reloaded = VectorSetBound::from_tsv(bound.n_states(), &tsv).unwrap();

    let config = BoundedConfig {
        backup_online: false, // keep both bounds frozen for the comparison
        ..BoundedConfig::default()
    };
    let mut original =
        BoundedController::with_bound(transformed.clone(), bound, config.clone()).unwrap();
    let mut restored = BoundedController::with_bound(transformed, reloaded, config).unwrap();
    for probs in [
        vec![0.8, 0.1, 0.1],
        vec![0.1, 0.8, 0.1],
        vec![0.05, 0.05, 0.9],
        vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
    ] {
        let b = Belief::from_probs(probs).unwrap();
        original.begin(b.clone(), None).unwrap();
        restored.begin(b, None).unwrap();
        assert_eq!(original.decide().unwrap(), restored.decide().unwrap());
    }
}

#[test]
fn traces_expose_belief_convergence() {
    let model = two_server::default_model().unwrap();
    let transformed = model.without_notification(50.0).unwrap();
    let mut c = BoundedController::new(transformed, BoundedConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let (out, trace) = EpisodeRunner::new(&model)
        .run_traced_with_rng(&mut c, StateId::new(two_server::FAULT_B), &mut rng)
        .unwrap();
    assert!(out.terminated && out.recovered);
    // The null-mass at termination must dominate the null-mass at the
    // first step (the controller learned the system recovered).
    let first = trace.first().unwrap().null_mass;
    let last = trace.last().unwrap().null_mass;
    assert!(
        last > first,
        "belief did not converge toward Null: {first} -> {last}"
    );
    assert!(last > 0.9);
}

#[test]
fn diagnose_then_fix_campaign_on_two_server() {
    // On the two-server model (distinct observations per fault) the
    // diagnose-then-fix baseline works fine; its weakness only appears
    // with observation clones (EMN zombies, see the ablations).
    let model = two_server::default_model().unwrap();
    let mut c = DiagnoseThenFixController::new(model.clone(), 0.75, 0.999).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let summary = run_campaign(
        &model,
        &mut c,
        &[
            StateId::new(two_server::FAULT_A),
            StateId::new(two_server::FAULT_B),
        ],
        20,
        &HarnessConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(summary.unterminated, 0);
    assert_eq!(summary.unrecovered, 0);
    assert!(summary.mean_monitor_calls >= summary.mean_actions);
}

#[test]
fn preview_rules_match_live_decisions() {
    // The rule table generated by the preview must agree with what the
    // live controller does at the same beliefs (backups disabled so the
    // bound stays frozen).
    let model = two_server::default_model().unwrap();
    let transformed = model.without_notification(50.0).unwrap();
    let bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).unwrap();
    let mut controller = BoundedController::with_bound(
        transformed.clone(),
        bound.clone(),
        BoundedConfig {
            backup_online: false,
            ..BoundedConfig::default()
        },
    )
    .unwrap();
    // Note: BoundedController seeds the termination plane at
    // construction; give the preview the same seeded set.
    let seeded = controller.bound().clone();
    let initial = Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]);
    let rows = preview(
        &transformed,
        &seeded,
        &initial,
        &PreviewOpts {
            horizon: 2,
            tree_depth: 1,
            gamma_cutoff: 1e-6,
            ..PreviewOpts::default()
        },
    )
    .unwrap();
    assert!(!rows.is_empty());
    for row in rows.iter().take(5) {
        // Project the transformed-space belief back to base space.
        let base: Vec<f64> = row.belief.probs()[..3].to_vec();
        let sum: f64 = base.iter().sum();
        if sum <= 0.0 {
            continue;
        }
        let b = Belief::from_probs(base.iter().map(|p| p / sum).collect()).unwrap();
        controller.begin(b, None).unwrap();
        let live = controller.decide().unwrap();
        match (row.action, live) {
            (None, Step::Terminate) => {}
            (Some(a), Step::Execute(b)) => assert_eq!(a, b, "rule/live divergence"),
            (rule, live) => panic!("rule {rule:?} vs live {live:?}"),
        }
    }
}

#[test]
fn world_and_harness_agree_on_costs() {
    // Accumulated episode cost must equal the sum of model rewards along
    // the executed action sequence (traced independently).
    let model = two_server::default_model().unwrap();
    let transformed = model.without_notification(50.0).unwrap();
    let mut c = BoundedController::new(transformed, BoundedConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let (out, trace) = EpisodeRunner::new(&model)
        .run_traced_with_rng(&mut c, StateId::new(two_server::FAULT_A), &mut rng)
        .unwrap();
    let replayed: f64 = trace.iter().map(|e| e.cost).sum();
    assert!((replayed - out.cost).abs() < 1e-12);
    // And a fresh world stepped with the same seed is deterministic.
    let mut w1 = World::new(&model, StateId::new(0)).unwrap();
    let mut w2 = World::new(&model, StateId::new(0)).unwrap();
    let mut r1 = StdRng::seed_from_u64(4);
    let mut r2 = StdRng::seed_from_u64(4);
    for a in 0..3 {
        assert_eq!(
            w1.step(&mut r1, ActionId::new(a)),
            w2.step(&mut r2, ActionId::new(a))
        );
    }
}

#[test]
fn bound_value_bridges_simulation_performance() {
    // The RA-Bound is a lower bound on achievable value, so the
    // bounded controller's realised mean cost must exceed the bound's
    // promise... in reward terms: realised reward >= bound value at the
    // initial belief (the controller can only do better than the
    // pessimistic bound).
    let model = two_server::default_model().unwrap();
    let transformed = model.without_notification(25.0).unwrap();
    let mut c = BoundedController::new(transformed.clone(), BoundedConfig::default()).unwrap();
    let initial = Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]);
    let promised = ValueBound::value(c.bound(), &transformed.extend_belief(&initial).unwrap());
    let mut rng = StdRng::seed_from_u64(17);
    let mut total = 0.0;
    let n = 60;
    for i in 0..n {
        let fault = StateId::new(if i % 2 == 0 { 0 } else { 1 });
        let out = EpisodeRunner::new(&model)
            .run_with_rng(&mut c, fault, &mut rng)
            .unwrap();
        total += -out.cost; // realised reward
    }
    let realised = total / n as f64;
    assert!(
        realised >= promised - 1e-9,
        "realised mean reward {realised} fell below the bound's promise {promised}"
    );
}
