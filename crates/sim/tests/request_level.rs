//! Request-level discrete-event validation of the EMN cost model.
//!
//! The POMDP rewards are `-(analytic drop fraction) x duration`. This
//! test replays a recovery scenario at *request* granularity with the
//! DES engine — individual Poisson arrivals routed through the
//! topology, components taken down by faults and recovery actions — and
//! checks that the measured number of dropped requests matches the
//! model's cost prediction. This is the substitution check for the
//! paper's production traffic (DESIGN.md §2).

use bpr_emn::actions::EmnAction;
use bpr_emn::faults::EmnState;
use bpr_emn::requests::{path_ok, sample_path, Workload};
use bpr_emn::topology::Component;
use bpr_emn::EmnConfig;
use bpr_sim::des::EventQueue;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One timeline segment: a system state plus the recovery action in
/// flight (whose components are unavailable for its duration).
#[derive(Debug, Clone, Copy)]
struct Segment {
    state: EmnState,
    action: EmnAction,
}

#[derive(Debug)]
enum Event {
    Arrival,
    SegmentEnd,
}

/// Simulates `segments` back-to-back at request granularity and
/// returns (dropped requests, model-predicted cost).
fn simulate(segments: &[Segment], config: &EmnConfig, seed: u64) -> (f64, f64) {
    let model = bpr_emn::build_model(config).expect("model builds");
    let workload = Workload {
        arrival_rate: 200.0,
        http_share: config.http_share,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queue: EventQueue<Event> = EventQueue::new();

    let mut predicted = 0.0;
    let mut boundaries = Vec::new();
    let mut t = 0.0;
    for seg in segments {
        let duration = model.base().mdp().duration(seg.action.index());
        predicted += -model
            .base()
            .mdp()
            .reward(seg.state.index(), seg.action.index());
        t += duration;
        boundaries.push(t);
    }
    let horizon = t;

    let first = workload.next_request(&mut rng, 0.0);
    queue.schedule(first.arrival.min(horizon), Event::Arrival);
    queue.schedule(horizon, Event::SegmentEnd);

    let mut dropped = 0usize;
    let mut total = 0usize;
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::SegmentEnd => break,
            Event::Arrival => {
                if now >= horizon {
                    break;
                }
                let seg_idx = boundaries.iter().position(|&b| now < b).unwrap_or(0);
                let seg = segments[seg_idx];
                let req = workload.next_request(&mut rng, now);
                if req.arrival < horizon {
                    queue.schedule(req.arrival, Event::Arrival);
                }
                total += 1;
                let path = sample_path(&mut rng, req.protocol);
                let down_by_action = seg.action.components_taken_down();
                let ok = path
                    .iter()
                    .all(|c| !seg.state.is_down(*c) && !down_by_action.contains(c))
                    && path_ok(seg.state, &path);
                if !ok {
                    dropped += 1;
                }
            }
        }
    }
    assert!(total > 1000, "not enough requests simulated");
    // Convert dropped-request count to the model's "fraction x seconds"
    // cost unit by dividing by the arrival rate.
    (dropped as f64 / workload.arrival_rate, predicted)
}

#[test]
fn des_drop_count_matches_model_cost_for_zombie_recovery() {
    // Scenario: S1 is a zombie. The controller observes (5 s), restarts
    // S2 by mistake (60 s, both servers effectively out), observes
    // again, then restarts S1 (60 s), then observes in the Null state.
    let config = EmnConfig::default();
    let segments = [
        Segment {
            state: EmnState::Zombie(Component::Server1),
            action: EmnAction::Observe,
        },
        Segment {
            state: EmnState::Zombie(Component::Server1),
            action: EmnAction::Restart(Component::Server2),
        },
        Segment {
            state: EmnState::Zombie(Component::Server1),
            action: EmnAction::Observe,
        },
        Segment {
            state: EmnState::Zombie(Component::Server1),
            action: EmnAction::Restart(Component::Server1),
        },
        Segment {
            state: EmnState::Null,
            action: EmnAction::Observe,
        },
    ];
    let (measured, predicted) = simulate(&segments, &config, 42);
    let rel_err = (measured - predicted).abs() / predicted;
    assert!(
        rel_err < 0.05,
        "request-level drops {measured:.1} vs model cost {predicted:.1} (rel err {rel_err:.3})"
    );
}

#[test]
fn des_drop_count_matches_model_cost_for_db_crash_recovery() {
    // Scenario: the database crashes (total outage), controller reboots
    // host C (300 s, still total outage), then all clear.
    let config = EmnConfig::default();
    let segments = [
        Segment {
            state: EmnState::Crash(Component::Database),
            action: EmnAction::Observe,
        },
        Segment {
            state: EmnState::Crash(Component::Database),
            action: EmnAction::Reboot(bpr_emn::topology::Host::C),
        },
        Segment {
            state: EmnState::Null,
            action: EmnAction::Observe,
        },
    ];
    let (measured, predicted) = simulate(&segments, &config, 7);
    let rel_err = (measured - predicted).abs() / predicted;
    assert!(
        rel_err < 0.05,
        "request-level drops {measured:.1} vs model cost {predicted:.1} (rel err {rel_err:.3})"
    );
}

#[test]
fn des_healthy_system_drops_nothing() {
    let config = EmnConfig::default();
    let segments = [Segment {
        state: EmnState::Null,
        action: EmnAction::Observe,
    }; 20];
    let (measured, predicted) = simulate(&segments, &config, 9);
    assert_eq!(predicted, 0.0);
    assert_eq!(measured, 0.0);
}
