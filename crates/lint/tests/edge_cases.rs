//! Edge-case coverage for the static analyzer: degenerate models,
//! out-of-bounds configuration, tolerance boundaries, and the
//! regression property that union-graph reachability agrees with the
//! uniform-random-chain view used by the RA-Bound machinery.

use bpr_linalg::CsrMatrix;
use bpr_lint::checks::{
    aliased_classes, invalid_row_entries, monitor_partition, stochastic_row_violations,
    union_can_reach, unrecoverable_states,
};
use bpr_lint::{lint_pomdp, LintCode, LintContext, Severity};
use bpr_mdp::{MdpBuilder, StateId};
use bpr_pomdp::{Pomdp, PomdpBuilder};
use proptest::prelude::*;

/// A minimal valid model: `n` states, `na` actions, deterministic
/// transitions given by `target[s * na + a]`, one constant observation.
fn deterministic_pomdp(n: usize, na: usize, targets: &[usize]) -> Pomdp {
    let mut mb = MdpBuilder::new(n, na);
    for s in 0..n {
        for a in 0..na {
            let t = targets[s * na + a] % n;
            mb.transition(s, a, t, 1.0);
            mb.reward(s, a, if t == s { 0.0 } else { -1.0 });
        }
    }
    let mut pb = PomdpBuilder::new(mb.build().expect("mdp builds"), 1);
    for s in 0..n {
        pb.observation_all_actions(s, 0, 1.0);
    }
    pb.build().expect("pomdp builds")
}

// The empty model (BPR001's subject) cannot even be constructed: the
// builder is the earliest guard, and the lint is defense in depth for
// models arriving from other front ends. Pin both layers down.
#[test]
#[should_panic(expected = "at least one state")]
fn empty_mdp_is_rejected_at_construction() {
    let _ = MdpBuilder::new(0, 0);
}

#[test]
#[should_panic(expected = "at least one observation")]
fn zero_observation_model_is_rejected_at_construction() {
    let mdp = MdpBuilder::new(1, 1)
        .transition(0, 0, 0, 1.0)
        .build()
        .unwrap();
    let _ = PomdpBuilder::new(mdp, 0);
}

#[test]
fn out_of_bounds_null_state_is_reported_not_panicked() {
    let pomdp = deterministic_pomdp(2, 1, &[0, 0]);
    let ctx = LintContext::raw(vec![StateId::new(5)]).named("oob-null");
    let report = lint_pomdp(&pomdp, &ctx);
    let oob = report
        .diagnostics()
        .iter()
        .find(|d| d.code == LintCode::NullStateOutOfBounds)
        .expect("BPR010 fires on the out-of-bounds null state");
    assert_eq!(oob.severity, Severity::Error);
    assert_eq!(oob.states.len(), 1);
    assert_eq!(oob.states[0].0, StateId::new(5));
    assert!(oob.states[0].1.contains("out of bounds"));
}

#[test]
fn all_states_null_produces_no_condition_errors() {
    // Every state in S_φ: nothing is stranded, nothing is a free
    // action (all states are exempt), the null set is non-empty.
    let pomdp = deterministic_pomdp(3, 2, &[0, 1, 1, 2, 2, 0]);
    let nulls: Vec<StateId> = (0..3).map(StateId::new).collect();
    let ctx = LintContext::raw(nulls).named("all-null");
    let report = lint_pomdp(&pomdp, &ctx);
    assert!(!report.has_errors(), "{}", report.render());
    assert!(unrecoverable_states(&pomdp, &ctx).is_empty());
}

#[test]
fn row_sum_boundary_sits_exactly_at_the_tolerance() {
    let tol = 1e-9;
    // Drift strictly inside the tolerance: accepted.
    let inside = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0 + 5e-10)]).unwrap();
    assert!(stochastic_row_violations(&inside, tol).is_empty());
    // Drift well outside: the row and its sum are reported.
    let outside = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0 + 1e-6)]).unwrap();
    let v = stochastic_row_violations(&outside, tol);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].0, 0);
    assert!((v[0].1 - (1.0 + 1e-6)).abs() < 1e-12);
}

#[test]
fn entry_tolerance_admits_tiny_negatives_and_flags_real_ones() {
    let tol = 1e-9;
    let tiny = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, -5e-10)]).unwrap();
    assert!(invalid_row_entries(&tiny, tol).is_empty());
    let bad = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, -1e-6)]).unwrap();
    let v = invalid_row_entries(&bad, tol);
    assert_eq!(v.len(), 1);
    assert_eq!((v[0].0, v[0].1), (0, 1));
    // NaN never reaches a CsrMatrix (from_triplets rejects it), so the
    // analyzer's non-finite arm guards matrices above 1 + tol instead.
    assert!(CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).is_err());
    let above = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.5)]).unwrap();
    assert_eq!(invalid_row_entries(&above, tol).len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The exact-bit partition artifact must agree with the pairwise
    /// tolerance diagnostic when rows are built from identical
    /// constants: same non-singleton classes, and every state in
    /// exactly one class.
    #[test]
    fn monitor_partition_agrees_with_aliased_classes(
        n in 2usize..7,
        na in 1usize..4,
        raw_targets in proptest::collection::vec(0usize..64, 6 * 3),
    ) {
        let targets: Vec<usize> = raw_targets.iter().map(|&t| t % n).collect();
        let pomdp = deterministic_pomdp(n, na, &targets);
        let partition = monitor_partition(&pomdp);
        let covered: usize = partition.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, pomdp.n_states(), "partition must cover S");
        let mut nontrivial: Vec<Vec<StateId>> = partition
            .into_iter()
            .filter(|c| c.len() >= 2)
            .collect();
        let mut pairwise = aliased_classes(&pomdp, 0.0);
        nontrivial.sort();
        pairwise.sort();
        prop_assert_eq!(nontrivial, pairwise);
    }

    /// Regression (satellite): reachability computed on the union
    /// graph of per-action positive edges must agree with reachability
    /// on the uniform random chain `P = (1/|A|) Σ_a P_a` — averaging
    /// the actions never adds or removes a positive edge.
    #[test]
    fn union_reachability_agrees_with_the_uniform_random_chain(
        n in 2usize..7,
        na in 1usize..4,
        raw_targets in proptest::collection::vec(0usize..64, 6 * 3),
        target_state in 0usize..7,
    ) {
        let targets: Vec<usize> = raw_targets.iter().map(|&t| t % n).collect();
        let pomdp = deterministic_pomdp(n, na, &targets);
        let goal = target_state % n;
        let via_union = union_can_reach(&pomdp, &[StateId::new(goal)], None);
        let via_chain = pomdp.mdp().uniform_random_chain().can_reach(&[goal]);
        prop_assert_eq!(via_union, via_chain);
    }
}
