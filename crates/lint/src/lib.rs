//! `bpr-lint` — static analysis of recovery-model POMDPs.
//!
//! The paper's convergence and termination guarantees hinge on
//! *structural* properties of the model: Condition 1 (null-fault states
//! `S_φ` reachable from everywhere), Condition 2 (non-positive
//! rewards), Property 1(a) ("no free actions"), and the
//! absorbing/termination structure the §3.1 transforms install. A model
//! that silently violates one of them does not fail loudly — it makes
//! the RA-Bound diverge, the belief update divide by zero, or the
//! bounded controller lose its termination argument. Related work on
//! undiscounted/reachability POMDPs draws the same line: verifying the
//! reachability and reward-sign preconditions *before* solving is what
//! separates a sound bound from silent divergence.
//!
//! This crate is that verifier. [`lint_pomdp`] runs every applicable
//! check over a [`Pomdp`] and returns a **complete** [`LintReport`] —
//! every violation, not just the first — where each [`Diagnostic`]
//! carries a stable [`LintCode`], a [`Severity`], the offending
//! state/action/observation ids *with their labels*, and a fix-it
//! hint. Reports render both for humans ([`LintReport::render`]) and
//! machines ([`LintReport::to_json`]).
//!
//! The full catalog of lints lives in [`catalog`]; the individual
//! check functions (usable à la carte, e.g. by
//! `bpr_core::conditions`, which is built on top of this crate) live
//! in [`checks`].
//!
//! # Examples
//!
//! ```
//! use bpr_lint::{lint_pomdp, LintContext};
//! use bpr_mdp::{MdpBuilder, StateId};
//! use bpr_pomdp::PomdpBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // State 0 loops forever: recovery (state 1) is unreachable.
//! let mut mb = MdpBuilder::new(2, 1);
//! mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
//! mb.transition(1, 0, 1, 1.0);
//! let mut pb = PomdpBuilder::new(mb.build()?, 1);
//! pb.observation_all_actions(0, 0, 1.0);
//! pb.observation_all_actions(1, 0, 1.0);
//! let pomdp = pb.build()?;
//!
//! let report = lint_pomdp(&pomdp, &LintContext::raw(vec![StateId::new(1)]));
//! assert!(report.has_errors());
//! assert!(report.to_json().contains("BPR011")); // unrecoverable state
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod checks;
mod json;

use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{ObservationId, Pomdp};
use std::fmt;

/// How bad a finding is.
///
/// Ordered: `Info < Warn < Error`, so `report.worst()` comparisons read
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected or informational structure worth knowing about.
    Info,
    /// Suspicious structure that degrades (but does not break) the
    /// guarantees.
    Warn,
    /// A violated precondition: solving/simulating this model is
    /// unsound.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of one lint in the catalog.
///
/// Codes are never reused or renumbered; see [`catalog`] for the
/// code → meaning → fix-it table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// BPR001 — model has zero states or zero actions.
    EmptyModel,
    /// BPR002 — a transition row of some `P_a` does not sum to 1.
    TransitionRowSum,
    /// BPR003 — a transition entry is NaN, infinite, negative, or > 1.
    TransitionEntryInvalid,
    /// BPR004 — an observation row `q(·|s', a)` does not sum to 1.
    ObservationRowSum,
    /// BPR005 — an observation entry is NaN, infinite, negative, or > 1.
    ObservationEntryInvalid,
    /// BPR006 — an observation has zero probability under an action
    /// from every entered state (belief-update division hazard).
    DeadObservationColumn,
    /// BPR007 — a reward is NaN or infinite.
    RewardNotFinite,
    /// BPR008 — a reward is positive (Condition 2 violation).
    PositiveReward,
    /// BPR009 — the null-fault set `S_φ` is empty (Condition 1).
    NullSetEmpty,
    /// BPR010 — a declared null-fault state is out of bounds.
    NullStateOutOfBounds,
    /// BPR011 — a state cannot reach `S_φ` under any action sequence
    /// (Condition 1 violation).
    UnrecoverableState,
    /// BPR012 — a zero-reward action outside the exempt states
    /// (Property 1(a) "no free actions" at risk).
    FreeAction,
    /// BPR013 — a non-null state no transition enters: it exists only
    /// as an initial condition.
    OrphanState,
    /// BPR014 — a fault state absorbing under every recovery action
    /// (only termination, if present, escapes it).
    AbsorbingFault,
    /// BPR015 — termination machinery missing or malformed for the
    /// no-notification variant (`a_T` / `s_T` structure).
    TerminationStructure,
    /// BPR016 — operator response time `t_op` is suspicious relative to
    /// the action durations.
    OperatorResponseTime,
    /// BPR017 — states observationally aliased under every monitor:
    /// diagnosis cannot separate them.
    MonitorAliasing,
    /// BPR018 — the uniform-random chain has a recurrent class outside
    /// `S_φ ∪ {s_T}` (random exploration can trap).
    RecurrentOutsideNull,
    /// BPR019 — a recurrent state of the uniform-random chain accrues
    /// non-zero reward: the RA-Bound's expected total reward diverges
    /// and the Gauss–Seidel/SOR solve cannot converge.
    DivergentRandomChain,
    /// BPR100 — policy-graph extraction hit its node budget before the
    /// reachable belief set closed; graph-level verdicts cover only the
    /// explored prefix.
    PolicyGraphTruncated,
    /// BPR101 — a reachable policy node cannot reach termination under
    /// the compiled policy: the controller can livelock (an absorbing
    /// non-terminal component of the policy graph).
    PolicyLivelock,
    /// BPR102 — the policy's expected cost-to-go at a reachable belief
    /// falls below the bound the controller advertises there: the
    /// "bound is achieved" soundness claim is violated.
    PolicyBoundViolation,
    /// BPR103 — a base recovery action no reachable policy node ever
    /// selects (dead weight in the action space for this policy).
    PolicyDeadAction,
    /// BPR104 — a bound hyperplane that is never the supporting
    /// (maximal) vector at any reachable belief: eligible for eviction
    /// without changing any decision on the explored graph.
    PolicyUnusedVector,
    /// BPR105 — the quotient (lumped) policy graph diverges from the
    /// projection of the full-space policy graph: the lumping
    /// certificate does not hold on realized trajectories.
    PolicyLumpDivergence,
}

impl LintCode {
    /// The stable `BPRnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::EmptyModel => "BPR001",
            LintCode::TransitionRowSum => "BPR002",
            LintCode::TransitionEntryInvalid => "BPR003",
            LintCode::ObservationRowSum => "BPR004",
            LintCode::ObservationEntryInvalid => "BPR005",
            LintCode::DeadObservationColumn => "BPR006",
            LintCode::RewardNotFinite => "BPR007",
            LintCode::PositiveReward => "BPR008",
            LintCode::NullSetEmpty => "BPR009",
            LintCode::NullStateOutOfBounds => "BPR010",
            LintCode::UnrecoverableState => "BPR011",
            LintCode::FreeAction => "BPR012",
            LintCode::OrphanState => "BPR013",
            LintCode::AbsorbingFault => "BPR014",
            LintCode::TerminationStructure => "BPR015",
            LintCode::OperatorResponseTime => "BPR016",
            LintCode::MonitorAliasing => "BPR017",
            LintCode::RecurrentOutsideNull => "BPR018",
            LintCode::DivergentRandomChain => "BPR019",
            LintCode::PolicyGraphTruncated => "BPR100",
            LintCode::PolicyLivelock => "BPR101",
            LintCode::PolicyBoundViolation => "BPR102",
            LintCode::PolicyDeadAction => "BPR103",
            LintCode::PolicyUnusedVector => "BPR104",
            LintCode::PolicyLumpDivergence => "BPR105",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: what is wrong, where, and how to fix it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// How bad it is in this context (may differ from the catalog
    /// default — e.g. [`LintCode::DivergentRandomChain`] is
    /// informational on a raw model that still awaits a §3.1 transform).
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Offending states, with labels.
    pub states: Vec<(StateId, String)>,
    /// Offending actions, with labels.
    pub actions: Vec<(ActionId, String)>,
    /// Offending observations, with labels.
    pub observations: Vec<(ObservationId, String)>,
    /// A concrete suggestion for repairing the model.
    pub fixit: String,
}

impl Diagnostic {
    /// Creates a finding with the catalog's fix-it hint attached.
    ///
    /// Public so downstream analyzers (e.g. the `bpr-verify`
    /// policy-graph checks, which own the BPR100-series codes) can emit
    /// findings through the shared report machinery.
    pub fn new(code: LintCode, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            states: Vec::new(),
            actions: Vec::new(),
            observations: Vec::new(),
            fixit: catalog::entry(code).fixit.to_string(),
        }
    }

    /// Attaches offending states (resolving labels from the model).
    pub fn with_states(mut self, pomdp: &Pomdp, states: &[StateId]) -> Diagnostic {
        self.states = states
            .iter()
            .map(|&s| (s, label_of_state(pomdp, s)))
            .collect();
        self
    }

    /// Attaches offending actions (resolving labels from the model).
    pub fn with_actions(mut self, pomdp: &Pomdp, actions: &[ActionId]) -> Diagnostic {
        self.actions = actions
            .iter()
            .map(|&a| (a, label_of_action(pomdp, a)))
            .collect();
        self
    }

    /// Attaches offending observations (resolving labels from the model).
    pub fn with_observations(
        mut self,
        pomdp: &Pomdp,
        observations: &[ObservationId],
    ) -> Diagnostic {
        self.observations = observations
            .iter()
            .map(|&o| (o, label_of_observation(pomdp, o)))
            .collect();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

fn label_of_state(pomdp: &Pomdp, s: StateId) -> String {
    if s.index() < pomdp.n_states() {
        pomdp.mdp().state_label(s).to_string()
    } else {
        format!("<out of bounds: {s}>")
    }
}

fn label_of_action(pomdp: &Pomdp, a: ActionId) -> String {
    if a.index() < pomdp.n_actions() {
        pomdp.mdp().action_label(a).to_string()
    } else {
        format!("<out of bounds: {a}>")
    }
}

fn label_of_observation(pomdp: &Pomdp, o: ObservationId) -> String {
    if o.index() < pomdp.n_observations() {
        pomdp.observation_label(o).to_string()
    } else {
        format!("<out of bounds: {o}>")
    }
}

/// Whether the model under analysis is a raw recovery model or the
/// output of one of the paper's §3.1 transforms.
///
/// Some lints change severity with the stage: a divergent
/// uniform-random chain is *expected* on a raw model (the transforms
/// exist to fix exactly that) but fatal on a transformed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage {
    /// An untransformed recovery model (what `RecoveryModel::new` in
    /// `bpr-core` validates).
    #[default]
    Raw,
    /// The output of `with_notification` / `without_notification`: the
    /// model the bounds and controllers actually run on.
    Transformed,
}

/// The terminate machinery of a no-notification transform (paper
/// Fig. 2(b)): the absorbing state `s_T`, the action `a_T` routing to
/// it, and the operator response time its rewards were derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Termination {
    /// The absorbing terminate state `s_T`.
    pub state: StateId,
    /// The terminate action `a_T`.
    pub action: ActionId,
    /// The designer-supplied `t_op` used for `r(s, a_T) = rate · t_op`.
    pub operator_response_time: f64,
}

/// Everything the analyzer needs to know about a model beyond the
/// [`Pomdp`] itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LintContext {
    /// Display name used in reports ("two-server (raw)", ...).
    pub model_name: String,
    /// The null-fault states `S_φ`.
    pub null_states: Vec<StateId>,
    /// States (beyond `S_φ` and `s_T`) exempt from the no-free-action
    /// check.
    pub exempt_states: Vec<StateId>,
    /// Termination machinery, if this is a no-notification transform.
    pub termination: Option<Termination>,
    /// True if the modelled system lacks recovery notification, i.e. a
    /// transformed model *must* carry termination machinery.
    pub expects_termination: bool,
    /// Raw recovery model or §3.1-transformed model.
    pub stage: Stage,
    /// Tolerance for stochasticity checks (matches the builders'
    /// `1e-9` by default, so models that built cleanly stay clean).
    pub tolerance: f64,
    /// Include the expensive whole-model lints (currently monitor
    /// aliasing, which is quadratic in states). `lint_pomdp` skips them
    /// when false so the fast profile can gate hot paths like
    /// `World::new`.
    pub full: bool,
}

impl LintContext {
    /// Context for a raw (untransformed) recovery model.
    pub fn raw(null_states: Vec<StateId>) -> LintContext {
        LintContext {
            model_name: "pomdp".to_string(),
            null_states,
            exempt_states: Vec::new(),
            termination: None,
            expects_termination: false,
            stage: Stage::Raw,
            tolerance: 1e-9,
            full: false,
        }
    }

    /// Context for a §3.1-transformed model.
    pub fn transformed(null_states: Vec<StateId>, termination: Option<Termination>) -> LintContext {
        LintContext {
            stage: Stage::Transformed,
            expects_termination: termination.is_some(),
            termination,
            ..LintContext::raw(null_states)
        }
    }

    /// Sets the report's model name.
    pub fn named(mut self, name: impl Into<String>) -> LintContext {
        self.model_name = name.into();
        self
    }

    /// Adds free-action exemptions beyond `S_φ ∪ {s_T}`.
    pub fn with_exempt(mut self, exempt: Vec<StateId>) -> LintContext {
        self.exempt_states = exempt;
        self
    }

    /// Declares that the system lacks recovery notification, so a
    /// transformed model without termination machinery is an error.
    pub fn expecting_termination(mut self) -> LintContext {
        self.expects_termination = true;
        self
    }

    /// Overrides the stochasticity tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> LintContext {
        self.tolerance = tolerance;
        self
    }

    /// Enables the expensive whole-model lints (monitor aliasing).
    pub fn full(mut self) -> LintContext {
        self.full = true;
        self
    }

    /// True if `s` is a declared null-fault state.
    pub fn is_null(&self, s: StateId) -> bool {
        self.null_states.contains(&s)
    }

    /// True if `s` is the terminate state.
    pub fn is_terminate_state(&self, s: StateId) -> bool {
        self.termination.map(|t| t.state) == Some(s)
    }

    /// True if `a` is the terminate action.
    pub fn is_terminate_action(&self, a: ActionId) -> bool {
        self.termination.map(|t| t.action) == Some(a)
    }
}

/// The complete result of linting one model.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    model: String,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps raw diagnostics under a model name, sorting them by
    /// severity (errors first) then code for stable output.
    pub fn new(model: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.as_str().cmp(b.code.as_str()))
        });
        LintReport {
            model: model.into(),
            diagnostics,
        }
    }

    /// The model name this report describes.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// All findings, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of findings of exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.with_severity(severity).count()
    }

    /// True if any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True if there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The highest severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One-line summary: `model: E errors, W warnings, I infos`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} errors, {} warnings, {} infos",
            self.model,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }

    /// Renders the report for humans: one block per diagnostic with the
    /// offending ids, labels, and the fix-it hint.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {}", self.summary());
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            let list = |items: &[(usize, &str)], what: &str, out: &mut String| {
                if items.is_empty() {
                    return;
                }
                let joined: Vec<String> = items.iter().map(|(i, l)| format!("{i} ({l})")).collect();
                let _ = writeln!(out, "  {what}: {}", joined.join(", "));
            };
            list(
                &d.states
                    .iter()
                    .map(|(s, l)| (s.index(), l.as_str()))
                    .collect::<Vec<_>>(),
                "states",
                &mut out,
            );
            list(
                &d.actions
                    .iter()
                    .map(|(a, l)| (a.index(), l.as_str()))
                    .collect::<Vec<_>>(),
                "actions",
                &mut out,
            );
            list(
                &d.observations
                    .iter()
                    .map(|(o, l)| (o.index(), l.as_str()))
                    .collect::<Vec<_>>(),
                "observations",
                &mut out,
            );
            let _ = writeln!(out, "  = fix: {}", d.fixit);
        }
        out
    }

    /// Serializes the report as a machine-readable JSON object.
    pub fn to_json(&self) -> String {
        json::report_json(self)
    }
}

/// Runs every applicable lint over `pomdp` and returns the complete
/// report.
///
/// Never fails and never short-circuits: a model with five problems
/// yields five (or more) diagnostics. Checks that need structure a
/// violation destroyed (e.g. reachability on an empty model) are
/// skipped once the prerequisite diagnostic has been emitted.
pub fn lint_pomdp(pomdp: &Pomdp, ctx: &LintContext) -> LintReport {
    let mut diags = Vec::new();
    checks::check_shape(pomdp, &mut diags);
    let empty = !diags.is_empty();
    checks::check_transition_matrices(pomdp, ctx.tolerance, &mut diags);
    checks::check_observation_matrices(pomdp, ctx, &mut diags);
    checks::check_rewards(pomdp, &mut diags);
    checks::check_condition1(pomdp, ctx, &mut diags);
    checks::check_free_actions(pomdp, ctx, &mut diags);
    checks::check_orphan_states(pomdp, ctx, &mut diags);
    checks::check_absorbing_faults(pomdp, ctx, &mut diags);
    checks::check_termination(pomdp, ctx, &mut diags);
    if !empty {
        checks::check_random_chain(pomdp, ctx, &mut diags);
    }
    if ctx.full {
        checks::check_monitor_aliasing(pomdp, ctx, &mut diags);
    }
    LintReport::new(ctx.model_name.clone(), diags)
}
