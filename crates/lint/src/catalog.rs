//! The lint catalog: every code, its default severity, what it means,
//! and how to fix it.
//!
//! This table is the single source of truth shared by the analyzer,
//! the JSON report (`modelcheck` emits it verbatim so downstream
//! tooling can resolve codes offline), and DESIGN.md §5f.

use crate::{LintCode, Severity};

/// One catalog row: code → meaning → fix-it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The stable code.
    pub code: LintCode,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Default severity (individual diagnostics may downgrade by
    /// context, e.g. divergence lints on raw models awaiting a
    /// transform).
    pub severity: Severity,
    /// What the finding means.
    pub meaning: &'static str,
    /// How to repair the model.
    pub fixit: &'static str,
}

/// The full catalog, in code order.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        code: LintCode::EmptyModel,
        name: "empty-model",
        severity: Severity::Error,
        meaning: "the model has zero states or zero actions; nothing can be solved or simulated",
        fixit: "declare at least one state and one action before building the model",
    },
    CatalogEntry {
        code: LintCode::TransitionRowSum,
        name: "transition-row-sum",
        severity: Severity::Error,
        meaning: "a row of a transition matrix P_a drifted off 1.0 beyond tolerance; the model \
                  leaks or creates probability mass",
        fixit: "renormalise the row or fix the transition that lost mass (check perturbation \
                code that edits P_a in place)",
    },
    CatalogEntry {
        code: LintCode::TransitionEntryInvalid,
        name: "transition-entry-invalid",
        severity: Severity::Error,
        meaning: "a transition probability is NaN, infinite, negative, or above 1",
        fixit: "clamp or recompute the entry; NaNs usually come from 0/0 in derived rates",
    },
    CatalogEntry {
        code: LintCode::ObservationRowSum,
        name: "observation-row-sum",
        severity: Severity::Error,
        meaning: "an observation row q(.|s', a) drifted off 1.0 beyond tolerance",
        fixit: "renormalise the monitor distribution for the offending (state, action) pair",
    },
    CatalogEntry {
        code: LintCode::ObservationEntryInvalid,
        name: "observation-entry-invalid",
        severity: Severity::Error,
        meaning: "an observation probability is NaN, infinite, negative, or above 1",
        fixit: "fix the monitor model; probabilities must lie in [0, 1]",
    },
    CatalogEntry {
        code: LintCode::DeadObservationColumn,
        name: "dead-observation-column",
        severity: Severity::Warn,
        meaning: "an observation can never be produced under some action: if the controller is \
                  ever handed it (stale queue, corrupted monitor), the Bayes belief update \
                  divides by zero total mass",
        fixit: "give the observation a tiny floor probability, or guarantee upstream that the \
                observation channel cannot deliver it for that action",
    },
    CatalogEntry {
        code: LintCode::RewardNotFinite,
        name: "reward-not-finite",
        severity: Severity::Error,
        meaning: "a single-step reward is NaN or infinite; every value bound becomes meaningless",
        fixit: "replace the reward with a finite cost; check derived reward formulas for \
                division by zero",
    },
    CatalogEntry {
        code: LintCode::PositiveReward,
        name: "positive-reward",
        severity: Severity::Error,
        meaning: "a single-step reward is positive, violating Condition 2; values are no longer \
                  bounded above by 0 and the termination argument collapses",
        fixit: "negate the reward (rewards are costs) or zero it if the action is genuinely free",
    },
    CatalogEntry {
        code: LintCode::NullSetEmpty,
        name: "null-set-empty",
        severity: Severity::Error,
        meaning: "the null-fault set S_phi is empty: Condition 1 cannot hold and no state counts \
                  as recovered",
        fixit: "declare at least one null-fault state when constructing the recovery model",
    },
    CatalogEntry {
        code: LintCode::NullStateOutOfBounds,
        name: "null-state-out-of-bounds",
        severity: Severity::Error,
        meaning: "a declared null-fault state index exceeds the state space",
        fixit: "fix the null-state indices passed to the recovery model",
    },
    CatalogEntry {
        code: LintCode::UnrecoverableState,
        name: "unrecoverable-state",
        severity: Severity::Error,
        meaning: "a state cannot reach any null-fault state under any action sequence, violating \
                  Condition 1; the RA-Bound for it does not exist",
        fixit: "add a recovery action (or action chain) leading the state into S_phi, or model \
                it as requiring operator escalation via the termination transform",
    },
    CatalogEntry {
        code: LintCode::FreeAction,
        name: "free-action",
        severity: Severity::Warn,
        meaning: "an action accrues zero reward outside the exempt states, weakening Property \
                  1(a): the bounded controller's termination proof assumes every non-exempt \
                  step strictly costs",
        fixit: "charge the action a small cost, or add the state to the exempt set if zero cost \
                is intended (e.g. observing in S_phi)",
    },
    CatalogEntry {
        code: LintCode::OrphanState,
        name: "orphan-state",
        severity: Severity::Info,
        meaning: "no transition from another state enters this non-null state: it occurs only as \
                  an initial (exogenously injected) fault",
        fixit: "expected for exogenous fault models; if the state should be reachable, add the \
                missing transition",
    },
    CatalogEntry {
        code: LintCode::AbsorbingFault,
        name: "absorbing-fault",
        severity: Severity::Warn,
        meaning: "a fault state is absorbing under every recovery action: recovery cannot fix \
                  it, and Gauss-Seidel/SOR sweeps stall on the self-loop",
        fixit: "add a recovery action that leaves the state, or rely on the termination \
                transform to hand it to the operator",
    },
    CatalogEntry {
        code: LintCode::TerminationStructure,
        name: "termination-structure",
        severity: Severity::Error,
        meaning: "the no-notification variant's termination machinery is missing or malformed: \
                  a_T must route every state to an absorbing, reward-free s_T",
        fixit: "apply RecoveryModel::without_notification instead of hand-building the \
                terminate machinery",
    },
    CatalogEntry {
        code: LintCode::OperatorResponseTime,
        name: "operator-response-time",
        severity: Severity::Warn,
        meaning: "t_op is suspicious: non-positive/non-finite, or smaller than an action \
                  duration so immediate termination dominates every recovery plan",
        fixit: "pick a t_op reflecting real operator latency, comfortably above the longest \
                recovery action",
    },
    CatalogEntry {
        code: LintCode::MonitorAliasing,
        name: "monitor-aliasing",
        severity: Severity::Info,
        meaning: "states produce identical observation distributions under every action: no \
                  monitor can separate them, so diagnosis inside the class is impossible",
        fixit: "add a monitor that distinguishes the aliased states, or accept that the \
                controller must hedge across the whole class",
    },
    CatalogEntry {
        code: LintCode::RecurrentOutsideNull,
        name: "recurrent-outside-null",
        severity: Severity::Warn,
        meaning: "the uniform-random chain has a recurrent class outside S_phi and s_T: random \
                  exploration can get trapped without recovering or terminating",
        fixit: "check for action subsets that trap; ensure some action escapes every such class",
    },
    CatalogEntry {
        code: LintCode::DivergentRandomChain,
        name: "divergent-random-chain",
        severity: Severity::Error,
        meaning: "a recurrent state of the uniform-random chain accrues non-zero average \
                  reward, so the RA-Bound's expected total reward diverges (the SOR solve \
                  cannot converge); on a raw model this is expected and reported as info — \
                  apply a paragraph-3.1 transform first",
        fixit: "apply with_notification / without_notification before computing bounds; on a \
                transformed model, zero the rewards of recurrent states or break the recurrence",
    },
    CatalogEntry {
        code: LintCode::PolicyGraphTruncated,
        name: "policy-graph-truncated",
        severity: Severity::Warn,
        meaning: "policy-graph extraction hit its node budget before the reachable belief set \
                  closed; livelock/bound/dead-action verdicts cover only the explored prefix",
        fixit: "raise VerifyConfig::max_nodes, lower the belief-successor cutoff, or lump the \
                model so the reachable belief set closes within budget",
    },
    CatalogEntry {
        code: LintCode::PolicyLivelock,
        name: "policy-livelock",
        severity: Severity::Error,
        meaning: "a reachable policy node cannot reach termination under the compiled policy: \
                  the controller can cycle forever without handing off to the operator, so the \
                  bound (a finite expected total cost) is unsound there",
        fixit: "enable prefer_terminate_on_tie, tighten the bound with more backups so \
                terminate dominates, or check the model for free actions that let the policy \
                loop at zero cost",
    },
    CatalogEntry {
        code: LintCode::PolicyBoundViolation,
        name: "policy-bound-violation",
        severity: Severity::Error,
        meaning: "the policy's expected cost-to-go at a reachable belief is below the bound \
                  the controller advertises there: the bound is not achieved by its own \
                  greedy policy, so uniform improvability is broken",
        fixit: "the bound set contains a vector that is not a conditional-plan value (bug in \
                a backup/cache/lumping optimization, or a corrupted checkpoint) — rebuild the \
                bound from RA-Bound and re-run the bootstrap",
    },
    CatalogEntry {
        code: LintCode::PolicyDeadAction,
        name: "policy-dead-action",
        severity: Severity::Info,
        meaning: "a base recovery action is never selected at any reachable policy node: it is \
                  dead weight in this policy's action space",
        fixit: "expected when one action dominates; if the action should matter, check its \
                cost/effect against the dominating alternatives",
    },
    CatalogEntry {
        code: LintCode::PolicyUnusedVector,
        name: "policy-unused-vector",
        severity: Severity::Info,
        meaning: "a bound hyperplane is never the supporting vector at any reachable belief: \
                  evicting it cannot change any decision on the explored graph",
        fixit: "evict via VectorSetBound::evict_to to shrink the bound, or keep it if beliefs \
                outside the explored graph may still need it",
    },
    CatalogEntry {
        code: LintCode::PolicyLumpDivergence,
        name: "policy-lump-divergence",
        severity: Severity::Error,
        meaning: "the lumped controller's policy graph diverges from the full-space \
                  controller's under the same dynamics: the strong-lumping certificate does \
                  not hold on realized trajectories",
        fixit: "the quotient was built from a stale certificate or the models drifted after \
                lumping — re-run TerminatedModel::lump and rebuild both controllers from the \
                same transform",
    },
];

/// Serializes the full catalog as a JSON array of
/// `{code, name, severity, meaning, fixit}` rows, so downstream tooling
/// (e.g. the `modelcheck` report consumers) can resolve codes offline.
pub fn catalog_json() -> String {
    crate::json::catalog_json()
}

/// Looks up the catalog row of a code.
pub fn entry(code: LintCode) -> &'static CatalogEntry {
    CATALOG
        .iter()
        .find(|e| e.code == code)
        .expect("every LintCode has a catalog entry")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_code_with_unique_strings() {
        let codes = [
            LintCode::EmptyModel,
            LintCode::TransitionRowSum,
            LintCode::TransitionEntryInvalid,
            LintCode::ObservationRowSum,
            LintCode::ObservationEntryInvalid,
            LintCode::DeadObservationColumn,
            LintCode::RewardNotFinite,
            LintCode::PositiveReward,
            LintCode::NullSetEmpty,
            LintCode::NullStateOutOfBounds,
            LintCode::UnrecoverableState,
            LintCode::FreeAction,
            LintCode::OrphanState,
            LintCode::AbsorbingFault,
            LintCode::TerminationStructure,
            LintCode::OperatorResponseTime,
            LintCode::MonitorAliasing,
            LintCode::RecurrentOutsideNull,
            LintCode::DivergentRandomChain,
            LintCode::PolicyGraphTruncated,
            LintCode::PolicyLivelock,
            LintCode::PolicyBoundViolation,
            LintCode::PolicyDeadAction,
            LintCode::PolicyUnusedVector,
            LintCode::PolicyLumpDivergence,
        ];
        assert_eq!(CATALOG.len(), codes.len());
        for code in codes {
            let e = entry(code);
            assert_eq!(e.code, code);
            assert!(!e.meaning.is_empty());
            assert!(!e.fixit.is_empty());
        }
        let mut strs: Vec<&str> = codes.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), codes.len(), "codes must be unique");
        let mut names: Vec<&str> = CATALOG.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATALOG.len(), "names must be unique");
    }
}
