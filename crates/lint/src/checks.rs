//! The individual lint checks.
//!
//! Each `check_*` function appends zero or more [`Diagnostic`]s;
//! [`crate::lint_pomdp`] sequences them. The lower-level primitives
//! ([`union_can_reach`], [`positive_rewards`], [`free_action_pairs`],
//! [`stochastic_row_violations`], [`invalid_row_entries`]) are exported
//! so `bpr_core::conditions` and tests can consume structured results
//! without re-deriving them from diagnostics.

use crate::{Diagnostic, LintCode, LintContext, Severity, Stage};
use bpr_linalg::CsrMatrix;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{ObservationId, Pomdp};

/// Caps how many ids a diagnostic message enumerates before switching
/// to "and N more" (the structured fields always carry the full list).
const MSG_IDS: usize = 8;

fn fmt_ids<T: std::fmt::Display>(ids: &[T]) -> String {
    let shown: Vec<String> = ids.iter().take(MSG_IDS).map(|i| i.to_string()).collect();
    if ids.len() > MSG_IDS {
        format!("{} and {} more", shown.join(", "), ids.len() - MSG_IDS)
    } else {
        shown.join(", ")
    }
}

/// BPR001: zero states or zero actions.
pub fn check_shape(pomdp: &Pomdp, diags: &mut Vec<Diagnostic>) {
    if pomdp.n_states() == 0 || pomdp.n_actions() == 0 {
        diags.push(Diagnostic::new(
            LintCode::EmptyModel,
            Severity::Error,
            format!(
                "model has {} states and {} actions",
                pomdp.n_states(),
                pomdp.n_actions()
            ),
        ));
    }
}

/// Rows of `m` whose sum drifts off 1.0 by more than `tol`, as
/// `(row, sum)` pairs.
pub fn stochastic_row_violations(m: &CsrMatrix, tol: f64) -> Vec<(usize, f64)> {
    m.row_sums()
        .into_iter()
        .enumerate()
        .filter(|(_, sum)| (sum - 1.0).abs() > tol || !sum.is_finite())
        .collect()
}

/// Entries of `m` that are NaN, infinite, below `-tol`, or above
/// `1 + tol`, as `(row, col, value)` triples.
pub fn invalid_row_entries(m: &CsrMatrix, tol: f64) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for r in 0..m.nrows() {
        for (c, v) in m.row(r) {
            if !v.is_finite() || !(-tol..=1.0 + tol).contains(&v) {
                out.push((r, c, v));
            }
        }
    }
    out
}

/// BPR002/BPR003: row-stochasticity drift and invalid entries in every
/// `P_a`.
pub fn check_transition_matrices(pomdp: &Pomdp, tol: f64, diags: &mut Vec<Diagnostic>) {
    for a in 0..pomdp.n_actions() {
        let action = ActionId::new(a);
        let m = pomdp.mdp().transition_matrix(action);
        let drifted = stochastic_row_violations(m, tol);
        if !drifted.is_empty() {
            let states: Vec<StateId> = drifted.iter().map(|&(s, _)| StateId::new(s)).collect();
            diags.push(
                Diagnostic::new(
                    LintCode::TransitionRowSum,
                    Severity::Error,
                    format!(
                        "P_{a} rows of states {} sum to {} instead of 1",
                        fmt_ids(&drifted.iter().map(|&(s, _)| s).collect::<Vec<_>>()),
                        fmt_ids(&drifted.iter().map(|&(_, sum)| sum).collect::<Vec<_>>()),
                    ),
                )
                .with_states(pomdp, &states)
                .with_actions(pomdp, &[action]),
            );
        }
        let invalid = invalid_row_entries(m, tol);
        if !invalid.is_empty() {
            let states: Vec<StateId> = invalid.iter().map(|&(s, _, _)| StateId::new(s)).collect();
            diags.push(
                Diagnostic::new(
                    LintCode::TransitionEntryInvalid,
                    Severity::Error,
                    format!(
                        "P_{a} holds invalid probabilities: {}",
                        fmt_ids(
                            &invalid
                                .iter()
                                .map(|(s, s2, v)| format!("p({s2}|{s}) = {v}"))
                                .collect::<Vec<_>>()
                        ),
                    ),
                )
                .with_states(pomdp, &states)
                .with_actions(pomdp, &[action]),
            );
        }
    }
}

/// BPR004/BPR005/BPR006: observation row stochasticity, invalid
/// entries, and dead observation columns (the `observe_in_place` /
/// Bayes-update division hazard).
pub fn check_observation_matrices(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    for a in 0..pomdp.n_actions() {
        let action = ActionId::new(a);
        let m = pomdp.observation_matrix(action);
        let drifted = stochastic_row_violations(m, ctx.tolerance);
        if !drifted.is_empty() {
            let states: Vec<StateId> = drifted.iter().map(|&(s, _)| StateId::new(s)).collect();
            diags.push(
                Diagnostic::new(
                    LintCode::ObservationRowSum,
                    Severity::Error,
                    format!(
                        "q(.|s', a{a}) rows of entered states {} sum to {} instead of 1",
                        fmt_ids(&drifted.iter().map(|&(s, _)| s).collect::<Vec<_>>()),
                        fmt_ids(&drifted.iter().map(|&(_, sum)| sum).collect::<Vec<_>>()),
                    ),
                )
                .with_states(pomdp, &states)
                .with_actions(pomdp, &[action]),
            );
        }
        let invalid = invalid_row_entries(m, ctx.tolerance);
        if !invalid.is_empty() {
            let states: Vec<StateId> = invalid.iter().map(|&(s, _, _)| StateId::new(s)).collect();
            let observations: Vec<ObservationId> = invalid
                .iter()
                .map(|&(_, o, _)| ObservationId::new(o))
                .collect();
            diags.push(
                Diagnostic::new(
                    LintCode::ObservationEntryInvalid,
                    Severity::Error,
                    format!(
                        "q(.|s', a{a}) holds invalid probabilities: {}",
                        fmt_ids(
                            &invalid
                                .iter()
                                .map(|(s, o, v)| format!("q(o{o}|s{s}) = {v}"))
                                .collect::<Vec<_>>()
                        ),
                    ),
                )
                .with_states(pomdp, &states)
                .with_actions(pomdp, &[action])
                .with_observations(pomdp, &observations),
            );
        }
        // Dead columns. The terminate action is exempt by construction:
        // it funnels every state into s_T's dedicated observation, so
        // every base observation is trivially dead under a_T and the
        // controller never updates a belief after terminating.
        if ctx.is_terminate_action(action) {
            continue;
        }
        let mut has_mass = vec![false; pomdp.n_observations()];
        for s in 0..pomdp.n_states() {
            for (o, q) in m.row(s) {
                if q > 0.0 {
                    has_mass[o] = true;
                }
            }
        }
        let dead: Vec<ObservationId> = has_mass
            .iter()
            .enumerate()
            .filter(|&(_, &seen)| !seen)
            .map(|(o, _)| ObservationId::new(o))
            .collect();
        if !dead.is_empty() {
            diags.push(
                Diagnostic::new(
                    LintCode::DeadObservationColumn,
                    Severity::Warn,
                    format!(
                        "{} observation(s) can never be produced under action {a}: {} — a \
                         belief update conditioned on one divides by zero mass",
                        dead.len(),
                        fmt_ids(&dead.iter().map(|o| o.index()).collect::<Vec<_>>()),
                    ),
                )
                .with_actions(pomdp, &[action])
                .with_observations(pomdp, &dead),
            );
        }
    }
}

/// All `(state, action, reward)` triples with a positive reward.
pub fn positive_rewards(pomdp: &Pomdp) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for a in 0..pomdp.n_actions() {
        for s in 0..pomdp.n_states() {
            let r = pomdp.mdp().reward(s, a);
            if r > 0.0 {
                out.push((s, a, r));
            }
        }
    }
    out
}

/// BPR007/BPR008: non-finite rewards and Condition 2 (positive
/// rewards).
pub fn check_rewards(pomdp: &Pomdp, diags: &mut Vec<Diagnostic>) {
    for a in 0..pomdp.n_actions() {
        let action = ActionId::new(a);
        let bad: Vec<StateId> = (0..pomdp.n_states())
            .filter(|&s| !pomdp.mdp().reward(s, a).is_finite())
            .map(StateId::new)
            .collect();
        if !bad.is_empty() {
            diags.push(
                Diagnostic::new(
                    LintCode::RewardNotFinite,
                    Severity::Error,
                    format!(
                        "r(s, a{a}) is not finite for states {}",
                        fmt_ids(&bad.iter().map(|s| s.index()).collect::<Vec<_>>()),
                    ),
                )
                .with_states(pomdp, &bad)
                .with_actions(pomdp, &[action]),
            );
        }
    }
    for (s, a, r) in positive_rewards(pomdp) {
        diags.push(
            Diagnostic::new(
                LintCode::PositiveReward,
                Severity::Error,
                format!("r(s{s}, a{a}) = {r} > 0 violates Condition 2"),
            )
            .with_states(pomdp, &[StateId::new(s)])
            .with_actions(pomdp, &[ActionId::new(a)]),
        );
    }
}

/// For every state, whether some state in `targets` is reachable from
/// it on the **union graph** of all actions (an edge `s → s'` exists if
/// *any* non-skipped action moves `s` to `s'` with positive
/// probability) — "there is at least one way to recover".
///
/// Implemented as a reverse BFS over per-action edges, deliberately
/// *not* via `uniform_random_chain`: the two must agree (averaging
/// non-negative rows preserves positive-probability edges), and a
/// regression proptest holds them to it.
pub fn union_can_reach(
    pomdp: &Pomdp,
    targets: &[StateId],
    skip_action: Option<ActionId>,
) -> Vec<bool> {
    let n = pomdp.n_states();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..pomdp.n_actions() {
        if skip_action.map(ActionId::index) == Some(a) {
            continue;
        }
        for s in 0..n {
            for (s2, p) in pomdp.mdp().successors(StateId::new(s), ActionId::new(a)) {
                if p > 0.0 {
                    rev[s2.index()].push(s);
                }
            }
        }
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = targets
        .iter()
        .map(|s| s.index())
        .filter(|&s| s < n)
        .collect();
    for &s in &stack {
        seen[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &from in &rev[s] {
            if !seen[from] {
                seen[from] = true;
                stack.push(from);
            }
        }
    }
    seen
}

/// The states that cannot reach any of `targets` (terminate state and
/// terminate action excluded from the search per `ctx`).
pub fn unrecoverable_states(pomdp: &Pomdp, ctx: &LintContext) -> Vec<StateId> {
    let in_bounds: Vec<StateId> = ctx
        .null_states
        .iter()
        .copied()
        .filter(|s| s.index() < pomdp.n_states())
        .collect();
    if in_bounds.is_empty() {
        return Vec::new();
    }
    let reach = union_can_reach(pomdp, &in_bounds, ctx.termination.map(|t| t.action));
    reach
        .iter()
        .enumerate()
        .filter(|&(s, &ok)| !ok && !ctx.is_terminate_state(StateId::new(s)))
        .map(|(s, _)| StateId::new(s))
        .collect()
}

/// BPR009/BPR010/BPR011: Condition 1 — non-empty, in-bounds `S_φ`
/// reachable from every state. Reachability deliberately ignores the
/// terminate action (termination is escalation, not recovery) and
/// exempts `s_T` itself.
pub fn check_condition1(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    if ctx.null_states.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::NullSetEmpty,
            Severity::Error,
            "the set of null-fault states is empty",
        ));
        return;
    }
    let oob: Vec<StateId> = ctx
        .null_states
        .iter()
        .copied()
        .filter(|s| s.index() >= pomdp.n_states())
        .collect();
    if !oob.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::NullStateOutOfBounds,
                Severity::Error,
                format!(
                    "null-fault states {} are out of bounds for a {}-state model",
                    fmt_ids(&oob.iter().map(|s| s.index()).collect::<Vec<_>>()),
                    pomdp.n_states()
                ),
            )
            .with_states(pomdp, &oob),
        );
        if oob.len() == ctx.null_states.len() {
            return;
        }
    }
    let stranded = unrecoverable_states(pomdp, ctx);
    if !stranded.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::UnrecoverableState,
                Severity::Error,
                format!(
                    "states {} cannot reach any null-fault state under any action sequence",
                    fmt_ids(&stranded.iter().map(|s| s.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &stranded),
        );
    }
}

/// All `(state, action)` pairs with a zero reward outside
/// `exempt ∪ S_φ ∪ {s_T}` (with `a_T` itself never counted free —
/// `r(s, a_T) = 0` on a null state is the transform's convention).
pub fn free_action_pairs(pomdp: &Pomdp, ctx: &LintContext) -> Vec<(usize, usize)> {
    let mut exempt = vec![false; pomdp.n_states()];
    for s in ctx.null_states.iter().chain(ctx.exempt_states.iter()) {
        if s.index() < pomdp.n_states() {
            exempt[s.index()] = true;
        }
    }
    if let Some(t) = ctx.termination {
        if t.state.index() < pomdp.n_states() {
            exempt[t.state.index()] = true;
        }
    }
    let mut out = Vec::new();
    for (s, &is_exempt) in exempt.iter().enumerate() {
        if is_exempt {
            continue;
        }
        for a in 0..pomdp.n_actions() {
            if ctx.is_terminate_action(ActionId::new(a)) {
                continue;
            }
            if pomdp.mdp().reward(s, a) == 0.0 {
                out.push((s, a));
            }
        }
    }
    out
}

/// BPR012: Property 1(a) "no free actions" — one diagnostic per
/// offending state, listing that state's free actions.
pub fn check_free_actions(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    let pairs = free_action_pairs(pomdp, ctx);
    let mut by_state: Vec<(usize, Vec<ActionId>)> = Vec::new();
    for (s, a) in pairs {
        match by_state.last_mut() {
            Some((last, actions)) if *last == s => actions.push(ActionId::new(a)),
            _ => by_state.push((s, vec![ActionId::new(a)])),
        }
    }
    for (s, actions) in by_state {
        diags.push(
            Diagnostic::new(
                LintCode::FreeAction,
                Severity::Warn,
                format!(
                    "state {s} has free (zero-reward) actions {} outside the exempt set; \
                     Property 1(a)'s termination argument assumes strictly negative step costs",
                    fmt_ids(&actions.iter().map(|a| a.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &[StateId::new(s)])
            .with_actions(pomdp, &actions),
        );
    }
}

/// BPR013: non-null states no transition from another state enters.
pub fn check_orphan_states(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    let n = pomdp.n_states();
    let mut entered = vec![false; n];
    for a in 0..pomdp.n_actions() {
        for s in 0..n {
            for (s2, p) in pomdp.mdp().successors(StateId::new(s), ActionId::new(a)) {
                if p > 0.0 && s2.index() != s {
                    entered[s2.index()] = true;
                }
            }
        }
    }
    let orphans: Vec<StateId> = (0..n)
        .map(StateId::new)
        .filter(|&s| !entered[s.index()] && !ctx.is_null(s) && !ctx.is_terminate_state(s))
        .collect();
    if !orphans.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::OrphanState,
                Severity::Info,
                format!(
                    "{} state(s) are only enterable as initial faults (no in-edges): {}",
                    orphans.len(),
                    fmt_ids(&orphans.iter().map(|s| s.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &orphans),
        );
    }
}

/// BPR014: fault states absorbing under every non-terminate action.
pub fn check_absorbing_faults(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    let n = pomdp.n_states();
    let dead: Vec<StateId> = (0..n)
        .map(StateId::new)
        .filter(|&s| !ctx.is_null(s) && !ctx.is_terminate_state(s))
        .filter(|&s| {
            (0..pomdp.n_actions())
                .map(ActionId::new)
                .filter(|&a| !ctx.is_terminate_action(a))
                .all(|a| {
                    pomdp
                        .mdp()
                        .successors(s, a)
                        .all(|(s2, p)| s2 == s || p == 0.0)
                })
        })
        .collect();
    if !dead.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::AbsorbingFault,
                Severity::Warn,
                format!(
                    "fault states {} are absorbing under every recovery action: no action \
                     escapes them, and SOR sweeps stall on the self-loop",
                    fmt_ids(&dead.iter().map(|s| s.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &dead),
        );
    }
}

/// BPR015/BPR016: termination machinery and `t_op` sanity for the
/// no-notification variant.
pub fn check_termination(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    let Some(t) = ctx.termination else {
        if ctx.expects_termination && ctx.stage == Stage::Transformed {
            diags.push(Diagnostic::new(
                LintCode::TerminationStructure,
                Severity::Error,
                "model is declared notification-free but carries no terminate action; the \
                 RA-Bound is not guaranteed to exist without one",
            ));
        }
        return;
    };
    let n = pomdp.n_states();
    if t.state.index() >= n || t.action.index() >= pomdp.n_actions() {
        diags.push(Diagnostic::new(
            LintCode::TerminationStructure,
            Severity::Error,
            format!(
                "terminate state {} / action {} out of bounds ({} states, {} actions)",
                t.state.index(),
                t.action.index(),
                n,
                pomdp.n_actions()
            ),
        ));
        return;
    }
    // s_T must absorb, reward-free, under every action.
    let mut leaky: Vec<ActionId> = Vec::new();
    for a in (0..pomdp.n_actions()).map(ActionId::new) {
        let absorbs = pomdp
            .mdp()
            .successors(t.state, a)
            .all(|(s2, p)| s2 == t.state || p == 0.0);
        if !absorbs || pomdp.mdp().reward(t.state, a) != 0.0 {
            leaky.push(a);
        }
    }
    if !leaky.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::TerminationStructure,
                Severity::Error,
                format!(
                    "terminate state s{} must be absorbing and reward-free, but actions {} \
                     leave it or charge it",
                    t.state.index(),
                    fmt_ids(&leaky.iter().map(|a| a.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &[t.state])
            .with_actions(pomdp, &leaky),
        );
    }
    // a_T must route every state to s_T with probability one.
    let misrouted: Vec<StateId> = (0..n)
        .map(StateId::new)
        .filter(|&s| {
            (pomdp.mdp().transition_prob(s, t.action, t.state) - 1.0).abs() > ctx.tolerance
        })
        .collect();
    if !misrouted.is_empty() {
        diags.push(
            Diagnostic::new(
                LintCode::TerminationStructure,
                Severity::Error,
                format!(
                    "terminate action a{} must move every state to s{} with probability 1, \
                     but misroutes states {}",
                    t.action.index(),
                    t.state.index(),
                    fmt_ids(&misrouted.iter().map(|s| s.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &misrouted)
            .with_actions(pomdp, &[t.action]),
        );
    }
    // t_op sanity.
    let top = t.operator_response_time;
    if !top.is_finite() || top <= 0.0 {
        diags.push(
            Diagnostic::new(
                LintCode::OperatorResponseTime,
                Severity::Warn,
                format!("operator response time t_op = {top} is not a positive finite duration"),
            )
            .with_actions(pomdp, &[t.action]),
        );
    } else {
        let slow: Vec<ActionId> = (0..pomdp.n_actions())
            .map(ActionId::new)
            .filter(|&a| a != t.action && pomdp.mdp().duration(a) > top)
            .collect();
        if !slow.is_empty() {
            diags.push(
                Diagnostic::new(
                    LintCode::OperatorResponseTime,
                    Severity::Warn,
                    format!(
                        "t_op = {top} is shorter than the duration of actions {}: handing \
                         off to the operator outpaces recovery, so the bound will favour \
                         immediate termination",
                        fmt_ids(&slow.iter().map(|a| a.index()).collect::<Vec<_>>()),
                    ),
                )
                .with_actions(pomdp, &slow),
            );
        }
    }
}

/// BPR018/BPR019: the SOR convergence pre-check on the uniform-random
/// chain — recurrent classes must stay inside `S_φ ∪ {s_T}` and accrue
/// zero reward, otherwise the RA-Bound's expected total reward
/// diverges. On raw models the divergence finding is informational
/// (the §3.1 transforms exist to fix it); on transformed models it is
/// an error.
pub fn check_random_chain(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    let chain = pomdp.mdp().uniform_random_chain();
    for class in chain.recurrent_classes() {
        let escapees: Vec<StateId> = class
            .iter()
            .map(|&s| StateId::new(s))
            .filter(|&s| !ctx.is_null(s) && !ctx.is_terminate_state(s))
            .collect();
        if !escapees.is_empty() {
            diags.push(
                Diagnostic::new(
                    LintCode::RecurrentOutsideNull,
                    Severity::Warn,
                    format!(
                        "the uniform-random chain has a recurrent class containing non-null \
                         states {}: random exploration can trap without recovering or \
                         terminating",
                        fmt_ids(&escapees.iter().map(|s| s.index()).collect::<Vec<_>>()),
                    ),
                )
                .with_states(pomdp, &escapees),
            );
        }
        let costly: Vec<StateId> = class
            .iter()
            .copied()
            .filter(|&s| chain.reward(s).abs() > 1e-12)
            .map(StateId::new)
            .collect();
        if !costly.is_empty() {
            let (severity, hint) = match ctx.stage {
                Stage::Transformed => (Severity::Error, "the RA-Bound cannot exist"),
                Stage::Raw => (
                    Severity::Info,
                    "expected on a raw model — apply with_notification or \
                     without_notification before computing bounds",
                ),
            };
            diags.push(
                Diagnostic::new(
                    LintCode::DivergentRandomChain,
                    severity,
                    format!(
                        "recurrent states {} of the uniform-random chain accrue non-zero \
                         average reward; the expected total reward diverges and SOR cannot \
                         converge ({hint})",
                        fmt_ids(&costly.iter().map(|s| s.index()).collect::<Vec<_>>()),
                    ),
                )
                .with_states(pomdp, &costly),
            );
        }
    }
}

/// True if states `s1` and `s2` have identical observation rows under
/// `action` within `tol`.
fn obs_rows_equal(pomdp: &Pomdp, s1: StateId, s2: StateId, action: ActionId, tol: f64) -> bool {
    let m = pomdp.observation_matrix(action);
    let mut r1: Vec<(usize, f64)> = m.row(s1.index()).filter(|&(_, q)| q != 0.0).collect();
    let mut r2: Vec<(usize, f64)> = m.row(s2.index()).filter(|&(_, q)| q != 0.0).collect();
    r1.sort_unstable_by_key(|&(o, _)| o);
    r2.sort_unstable_by_key(|&(o, _)| o);
    if r1.len() != r2.len() {
        return false;
    }
    r1.iter()
        .zip(&r2)
        .all(|(&(o1, q1), &(o2, q2))| o1 == o2 && (q1 - q2).abs() <= tol)
}

/// The observational equivalence classes (size ≥ 2) of the model:
/// groups of states whose observation distributions agree under every
/// action, making them indistinguishable to every monitor.
pub fn aliased_classes(pomdp: &Pomdp, tol: f64) -> Vec<Vec<StateId>> {
    let n = pomdp.n_states();
    // Union-find over states.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], s: usize) -> usize {
        let mut root = s;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = s;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for s1 in 0..n {
        for s2 in (s1 + 1)..n {
            if find(&mut parent, s1) == find(&mut parent, s2) {
                continue;
            }
            let aliased = (0..pomdp.n_actions()).all(|a| {
                obs_rows_equal(
                    pomdp,
                    StateId::new(s1),
                    StateId::new(s2),
                    ActionId::new(a),
                    tol,
                )
            });
            if aliased {
                let r1 = find(&mut parent, s1);
                let r2 = find(&mut parent, s2);
                parent[r2] = r1;
            }
        }
    }
    let mut classes: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for s in 0..n {
        let root = find(&mut parent, s);
        classes[root].push(StateId::new(s));
    }
    classes.retain(|c| c.len() >= 2);
    classes
}

/// The full monitor-aliasing partition as a reusable artifact: every
/// state appears in exactly one class (singletons included), classes
/// grouped by **exact-bit** observation-row agreement under every
/// action and ordered by minimal member.
///
/// This is the seed the lumping pass (`bpr_pomdp::lump`) consumes.
/// Unlike [`aliased_classes`] — the tolerance-based diagnostic used by
/// BPR017 — this variant hashes exact row keys, so it is linear in the
/// stored observation entries and safe to run on the 10⁴-state corpus
/// models where the pairwise diagnostic is quadratic. Exact-bit
/// grouping can only under-merge relative to a tolerance, which is the
/// sound direction for a lumping seed.
pub fn monitor_partition(pomdp: &Pomdp) -> Vec<Vec<StateId>> {
    let n = pomdp.n_states();
    let mut key_of: std::collections::HashMap<Vec<u64>, usize> = std::collections::HashMap::new();
    let mut classes: Vec<Vec<StateId>> = Vec::new();
    for s in 0..n {
        let mut key = Vec::new();
        for a in 0..pomdp.n_actions() {
            for (o, q) in pomdp.observation_matrix(ActionId::new(a)).row(s) {
                if q != 0.0 {
                    key.push(o as u64);
                    key.push(q.to_bits());
                }
            }
            key.push(u64::MAX); // action separator
        }
        let next = classes.len();
        let idx = *key_of.entry(key).or_insert(next);
        if idx == next {
            classes.push(Vec::new());
        }
        classes[idx].push(StateId::new(s));
    }
    // First-visit insertion order is minimal-member order already.
    classes
}

/// BPR017: monitor-coverage holes — observationally aliased
/// equivalence classes, one diagnostic per class.
pub fn check_monitor_aliasing(pomdp: &Pomdp, ctx: &LintContext, diags: &mut Vec<Diagnostic>) {
    for class in aliased_classes(pomdp, ctx.tolerance) {
        // A class entirely inside S_φ ∪ {s_T} needs no diagnosis.
        if class
            .iter()
            .all(|&s| ctx.is_null(s) || ctx.is_terminate_state(s))
        {
            continue;
        }
        diags.push(
            Diagnostic::new(
                LintCode::MonitorAliasing,
                Severity::Info,
                format!(
                    "states {} are observationally aliased under every monitor: no \
                     observation sequence can separate them, so diagnosis inside this class \
                     is impossible",
                    fmt_ids(&class.iter().map(|s| s.index()).collect::<Vec<_>>()),
                ),
            )
            .with_states(pomdp, &class),
        );
    }
}
