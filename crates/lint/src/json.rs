//! Hand-rolled JSON serialization of lint reports (no serde in the
//! dependency tree, by design).

use crate::{catalog, Diagnostic, LintReport, Severity};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn id_labels(items: &[(usize, &str)]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|(i, l)| format!("{{\"id\": {i}, \"label\": \"{}\"}}", escape(l)))
        .collect();
    format!("[{}]", parts.join(", "))
}

fn diagnostic_json(d: &Diagnostic) -> String {
    let entry = catalog::entry(d.code);
    format!(
        "{{\"code\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \
         \"states\": {}, \"actions\": {}, \"observations\": {}, \"fixit\": \"{}\"}}",
        d.code,
        entry.name,
        d.severity,
        escape(&d.message),
        id_labels(
            &d.states
                .iter()
                .map(|(s, l)| (s.index(), l.as_str()))
                .collect::<Vec<_>>()
        ),
        id_labels(
            &d.actions
                .iter()
                .map(|(a, l)| (a.index(), l.as_str()))
                .collect::<Vec<_>>()
        ),
        id_labels(
            &d.observations
                .iter()
                .map(|(o, l)| (o.index(), l.as_str()))
                .collect::<Vec<_>>()
        ),
        escape(&d.fixit),
    )
}

/// Serializes a [`LintReport`] as one JSON object.
pub(crate) fn report_json(report: &LintReport) -> String {
    let diags: Vec<String> = report.diagnostics().iter().map(diagnostic_json).collect();
    format!(
        "{{\"model\": \"{}\", \"errors\": {}, \"warnings\": {}, \"infos\": {}, \
         \"clean\": {}, \"diagnostics\": [{}]}}",
        escape(report.model()),
        report.count(Severity::Error),
        report.count(Severity::Warn),
        report.count(Severity::Info),
        report.is_clean(),
        diags.join(", "),
    )
}

/// Serializes the full lint catalog as a JSON array (used by
/// `modelcheck` so downstream tooling can resolve codes offline).
pub(crate) fn catalog_json() -> String {
    let rows: Vec<String> = catalog::CATALOG
        .iter()
        .map(|e| {
            format!(
                "{{\"code\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \
                 \"meaning\": \"{}\", \"fixit\": \"{}\"}}",
                e.code,
                e.name,
                e.severity,
                escape(e.meaning),
                escape(e.fixit),
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn catalog_json_lists_every_code() {
        let j = catalog_json();
        for e in catalog::CATALOG {
            assert!(j.contains(e.code.as_str()), "missing {}", e.code);
            assert!(j.contains(e.name), "missing name {}", e.name);
        }
    }
}
