//! The generation contract, enforced over random specifications:
//! **every valid [`TopologySpec`] compiles to a recovery model that
//! passes `bpr-lint` clean at error severity** — at the raw stage and
//! after both §3.1 transforms — with no warnings at all, and the
//! compilation is deterministic (same spec + seed ⇒ bit-identical
//! model).
//!
//! Conditions 1 (null reachability) and 2 (non-positive rewards) are
//! enforced twice over: `RecoveryModel::new` rejects violations at
//! construction, and the lint pass re-checks them structurally
//! (BPR008/BPR011 are error-severity codes), so a compile that
//! returns `Ok` with a clean report carries both guarantees.

use bpr_core::scenario::lint_model_stages;
use bpr_topo::{compile, DurationSpec, HazardSpec, MonitorSpec, TierSpec, TopologySpec};
use proptest::prelude::*;

/// A coin-flip strategy (the vendored minimal proptest has no
/// `any::<bool>()`).
fn arb_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

/// Random valid specs, kept small (≤ 27 components) so a proptest run
/// stays fast: 1–3 tiers of 1–3 services × 1–3 replicas, hosts and
/// racks clamped into their validity envelopes, the full hazard and
/// monitor-noise surface exercised.
fn arb_spec() -> impl Strategy<Value = TopologySpec> {
    let tier = (1usize..=3, 1usize..=3, 30.0f64..300.0);
    (
        proptest::collection::vec(tier, 1..=3),
        (
            1usize..=6, // raw hosts, clamped to n_components
            1usize..=6, // raw racks, clamped to hosts
            1usize..=4, // restart group size
        ),
        (
            (0.5f64..0.99, 0.0f64..0.3), // shallow detection / fp
            (0.5f64..0.99, 0.0f64..0.3), // deep detection / fp
            (0.5f64..0.99, 0.0f64..0.3), // rack detection / fp
            (0.5f64..0.99, 0.0f64..0.3), // path detection / fp
        ),
        (arb_bool(), arb_bool(), 0.05f64..1.0, 0.0f64..0.9),
        // t_op floor of 600s clears the longest possible jittered
        // action (300s base × 1.9), keeping BPR016 out of play: an
        // operator slower than every recovery action is the regime
        // the paper's bound is meant for.
        (0.0f64..0.9, 0u64..u64::MAX, 600.0f64..100_000.0),
    )
        .prop_map(
            |(
                tiers,
                (raw_hosts, raw_racks, group),
                (shallow, deep, rack, path),
                (partitions, rolling_deploys, deploy_fraction, cascade_prob),
                (duration_jitter, seed, operator_response_time),
            )| {
                let tiers: Vec<TierSpec> = tiers
                    .into_iter()
                    .enumerate()
                    .map(|(i, (services, replicas, restart_duration))| TierSpec {
                        name: format!("tier{i}"),
                        services,
                        replicas,
                        restart_duration,
                    })
                    .collect();
                let n_components: usize = tiers.iter().map(|t| t.services * t.replicas).sum();
                let hosts = raw_hosts.min(n_components);
                let racks = raw_racks.min(hosts);
                TopologySpec {
                    tiers,
                    hosts,
                    racks,
                    restart_group_size: group,
                    monitors: MonitorSpec {
                        shallow_detection: shallow.0,
                        shallow_fp: shallow.1,
                        deep_detection: deep.0,
                        deep_fp: deep.1,
                        rack_detection: rack.0,
                        rack_fp: rack.1,
                        path_detection: path.0,
                        path_fp: path.1,
                    },
                    hazards: HazardSpec {
                        partitions,
                        rolling_deploys,
                        deploy_fraction,
                        cascade_prob,
                    },
                    durations: DurationSpec::default(),
                    operator_response_time,
                    duration_jitter,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The contract itself: random valid spec ⇒ the model builds
    /// (Conditions 1 and 2 hold at construction) and every pipeline
    /// stage lints with zero errors *and* zero warnings.
    #[test]
    fn random_valid_specs_compile_lint_clean(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec");
        let model = compile(&spec).expect("valid spec compiles");
        let reports =
            lint_model_stages("random", &model, spec.operator_response_time).unwrap();
        prop_assert_eq!(reports.len(), 3);
        for report in &reports {
            prop_assert!(!report.has_errors(), "{}", report.render());
            prop_assert_eq!(
                report.count(bpr_topo::Severity::Warn),
                0,
                "unexpected warning:\n{}",
                report.render()
            );
        }
    }

    /// Determinism: compiling the same spec twice yields bit-identical
    /// models (labels, matrices, jittered durations, everything).
    #[test]
    fn compilation_is_deterministic(spec in arb_spec()) {
        let a = compile(&spec).expect("valid spec compiles");
        let b = compile(&spec).expect("valid spec compiles");
        prop_assert!(a == b, "same spec + seed produced different models");
    }
}
