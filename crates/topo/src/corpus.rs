//! The named scenario corpus: generated datacenter topologies spanning
//! 10²–10⁴ states, registered behind the shared
//! [`Scenario`] API so benches sweep a model *family* instead of a
//! single hand-built instance.
//!
//! | scenario                | shape                                   | ~states |
//! |-------------------------|-----------------------------------------|---------|
//! | `web3tier-small`        | 15 services × 3 replicas, 9 hosts       | 10²     |
//! | `cellfleet-shared-rack` | 12 services × 4 replicas, 1 rack        | 10²     |
//! | `cellfleet-mid`         | 125 services × 4 replicas, 50 hosts     | 10³     |
//! | `region-large`          | 400 services × 12 replicas, 240 hosts   | 10⁴     |
//!
//! `cellfleet-shared-rack` is deliberately symmetric (zero jitter, one
//! rack, no deploys) so `pomdp::lump` merges replica states — it is the
//! lump-consistency fixture for `bpr-verify`.
//!
//! All three compile lint-clean at error severity — the BPR001–BPR019
//! catalog is the generation contract (see the proptests in
//! `tests/lint_contract.rs`).

use crate::compile::compile;
use crate::spec::{HazardSpec, MonitorSpec, TopoError, TopologySpec};
use bpr_core::scenario::{Scenario, ScenarioRegistry};
use bpr_core::{Error, RecoveryModel};

/// A [`TopologySpec`] wrapped as a registry [`Scenario`].
#[derive(Debug, Clone)]
pub struct TopoScenario {
    name: String,
    description: String,
    spec: TopologySpec,
}

impl TopoScenario {
    /// Wraps a spec under a registry name, validating it eagerly so a
    /// registered scenario can always build.
    ///
    /// # Errors
    ///
    /// Everything [`TopologySpec::validate`] rejects.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        spec: TopologySpec,
    ) -> Result<TopoScenario, TopoError> {
        spec.validate()?;
        Ok(TopoScenario {
            name: name.into(),
            description: description.into(),
            spec,
        })
    }

    /// The underlying spec.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }
}

impl Scenario for TopoScenario {
    fn name(&self) -> &str {
        &self.name
    }
    fn description(&self) -> &str {
        &self.description
    }
    fn build(&self) -> Result<RecoveryModel, Error> {
        compile(&self.spec).map_err(Into::into)
    }
    fn operator_response_time(&self) -> f64 {
        self.spec.operator_response_time
    }
}

/// Noise-free monitors (zero false positives): what keeps observation
/// rows sparse — and model memory linear — at fleet scale.
fn quiet_monitors() -> MonitorSpec {
    MonitorSpec {
        shallow_fp: 0.0,
        deep_fp: 0.0,
        rack_fp: 0.0,
        path_fp: 0.0,
        ..MonitorSpec::default()
    }
}

/// `web3tier-small`: a classic web/app/db stack, ~10² states, with the
/// full noisy-monitor treatment (every monitor has false positives).
///
/// # Panics
///
/// Never — the spec is statically valid (covered by tests).
pub fn web3tier_small() -> TopoScenario {
    let spec = TopologySpec::builder()
        .tier("web", 5, 3, 60.0)
        .tier("app", 6, 3, 90.0)
        .tier("db", 4, 3, 240.0)
        .hosts(9)
        .racks(3)
        .restart_group_size(2)
        .hazards(HazardSpec {
            partitions: true,
            rolling_deploys: true,
            deploy_fraction: 0.34,
            cascade_prob: 0.0,
        })
        .operator_response_time(3600.0)
        .duration_jitter(0.1)
        .seed(7)
        .build()
        .expect("web3tier-small spec is statically valid");
    TopoScenario::new(
        "web3tier-small",
        "web/app/db stack: 15 services x 3 replicas on 9 hosts, noisy monitors (~1e2 states)",
        spec,
    )
    .expect("web3tier-small spec is statically valid")
}

/// `cellfleet-mid`: a cellular edge/cell/store fleet, ~10³ states, with
/// cascading restarts and quiet (zero-false-positive) component
/// monitors plus noisy path probes.
///
/// # Panics
///
/// Never — the spec is statically valid (covered by tests).
pub fn cellfleet_mid() -> TopoScenario {
    let spec = TopologySpec::builder()
        .tier("edge", 40, 4, 45.0)
        .tier("cell", 60, 4, 75.0)
        .tier("store", 25, 4, 200.0)
        .hosts(50)
        .racks(5)
        .restart_group_size(8)
        .monitors(MonitorSpec {
            path_fp: 0.01,
            ..quiet_monitors()
        })
        .hazards(HazardSpec {
            partitions: true,
            rolling_deploys: true,
            deploy_fraction: 0.5,
            cascade_prob: 0.1,
        })
        .operator_response_time(2.0 * 3600.0)
        .duration_jitter(0.15)
        .seed(11)
        .build()
        .expect("cellfleet-mid spec is statically valid");
    TopoScenario::new(
        "cellfleet-mid",
        "edge/cell/store fleet: 125 services x 4 replicas on 50 hosts, cascades (~1e3 states)",
        spec,
    )
    .expect("cellfleet-mid spec is statically valid")
}

/// `cellfleet-shared-rack`: a deliberately *symmetric* cell/store
/// fleet — one rack, zero duration jitter, no rolling deploys — so
/// replicas of the same service are exactly interchangeable and
/// `pomdp::lump` genuinely merges states on a registry scenario. This
/// is the lump-consistency fixture for `bpr-verify` (BPR105) and the
/// aliasing member of the corpus: every other member's jitter and
/// deploy masks break the symmetry the quotient needs.
///
/// # Panics
///
/// Never — the spec is statically valid (covered by tests).
pub fn cellfleet_shared_rack() -> TopoScenario {
    let spec = TopologySpec::builder()
        .tier("cell", 8, 4, 75.0)
        .tier("store", 4, 4, 200.0)
        .hosts(4)
        .racks(1)
        .restart_group_size(2)
        .hazards(HazardSpec {
            partitions: true,
            rolling_deploys: false,
            deploy_fraction: 0.0,
            cascade_prob: 0.0,
        })
        .operator_response_time(3600.0)
        .duration_jitter(0.0)
        .seed(17)
        .build()
        .expect("cellfleet-shared-rack spec is statically valid");
    TopoScenario::new(
        "cellfleet-shared-rack",
        "symmetric cell/store fleet: 12 services x 4 replicas on 1 rack, mergeable replicas (~1e2 states)",
        spec,
    )
    .expect("cellfleet-shared-rack spec is statically valid")
}

/// `region-large`: a regional deployment, ~10⁴ states, fully quiet
/// monitors so observation rows stay a handful of entries wide.
///
/// # Panics
///
/// Never — the spec is statically valid (covered by tests).
pub fn region_large() -> TopoScenario {
    let spec = TopologySpec::builder()
        .tier("edge", 100, 12, 45.0)
        .tier("mid", 200, 12, 90.0)
        .tier("store", 100, 12, 240.0)
        .hosts(240)
        .racks(12)
        .restart_group_size(25)
        .monitors(quiet_monitors())
        .hazards(HazardSpec {
            partitions: true,
            rolling_deploys: true,
            deploy_fraction: 0.25,
            cascade_prob: 0.05,
        })
        .operator_response_time(6.0 * 3600.0)
        .duration_jitter(0.2)
        .seed(13)
        .build()
        .expect("region-large spec is statically valid");
    TopoScenario::new(
        "region-large",
        "regional fleet: 400 services x 12 replicas on 240 hosts, quiet monitors (~1e4 states)",
        spec,
    )
    .expect("region-large spec is statically valid")
}

/// The full named corpus, smallest first.
pub fn corpus() -> Vec<TopoScenario> {
    vec![
        web3tier_small(),
        cellfleet_shared_rack(),
        cellfleet_mid(),
        region_large(),
    ]
}

/// Registers the corpus into a [`ScenarioRegistry`].
///
/// # Errors
///
/// [`Error::InvalidInput`] on name collisions with already-registered
/// scenarios.
pub fn register_corpus(registry: &mut ScenarioRegistry) -> Result<(), Error> {
    for scenario in corpus() {
        registry.register(Box::new(scenario))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn corpus_names_are_unique_and_registered() {
        let mut registry = ScenarioRegistry::new();
        register_corpus(&mut registry).unwrap();
        assert_eq!(
            registry.names(),
            vec![
                "web3tier-small",
                "cellfleet-shared-rack",
                "cellfleet-mid",
                "region-large"
            ]
        );
    }

    #[test]
    fn corpus_spans_two_to_four_orders_of_magnitude() {
        let sizes: Vec<usize> = corpus()
            .iter()
            .map(|s| Layout::new(s.spec()).n_states())
            .collect();
        assert!(
            (100..1000).contains(&sizes[0]),
            "web3tier-small: {} states",
            sizes[0]
        );
        assert!(
            (10..1000).contains(&sizes[1]),
            "cellfleet-shared-rack: {} states",
            sizes[1]
        );
        assert!(
            (1000..10_000).contains(&sizes[2]),
            "cellfleet-mid: {} states",
            sizes[2]
        );
        assert!(sizes[3] >= 9000, "region-large: {} states", sizes[3]);
    }

    #[test]
    fn shared_rack_scenario_genuinely_lumps() {
        let scenario = cellfleet_shared_rack();
        let model = scenario.build().unwrap();
        let transformed = model
            .without_notification(scenario.operator_response_time())
            .unwrap();
        let (quotient, cert) = transformed.lump().unwrap();
        assert!(
            cert.n_quotient() < transformed.pomdp().n_states(),
            "expected a genuine merge, got identity quotient ({} states)",
            cert.n_quotient()
        );
        assert_eq!(quotient.pomdp().n_states(), cert.n_quotient());
    }

    #[test]
    fn small_scenario_builds_and_is_recoverable() {
        let scenario = web3tier_small();
        let model = scenario.build().unwrap();
        assert!(model.base().n_states() > 100);
        let population = scenario.fault_population(&model);
        assert_eq!(population.len(), model.base().n_states() - 1);
    }
}
