//! The declarative topology grammar: [`TopologySpec`] and its
//! validated builder.
//!
//! A spec describes a tiered service deployment (tiers × services ×
//! replicas placed round-robin across hosts and racks), the monitor
//! fleet watching it, and the hazard families that can strike it. It is
//! plain data — compilation into a POMDP happens in [`crate::compile`].
//! Following the workspace's validated-builder convention
//! (`BootstrapConfig`, `HarnessConfig`), the struct's fields are public
//! and [`TopologySpec::validate`] is the single source of truth; the
//! [`TopologySpecBuilder`] is sugar that ends in a validating
//! [`TopologySpecBuilder::build`]. Nothing in this module panics on bad
//! input — every rejection is a typed [`TopoError`].

use std::fmt;

/// One tier of the deployment: `services` load-balanced services, each
/// running `replicas` identical replicas. Requests traverse every tier,
/// so a tier at zero availability takes the whole system down.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Tier name, used in state/action labels (e.g. `"web"`).
    pub name: String,
    /// Number of distinct services in the tier (≥ 1).
    pub services: usize,
    /// Replicas per service (1..=64 — replica sets are tracked as
    /// 64-bit masks).
    pub replicas: usize,
    /// Wall-clock duration of restarting one service group in this
    /// tier.
    pub restart_duration: f64,
}

/// Monitor coverage and noise. Each monitor family has a detection
/// probability (`1 − detection` is its false-negative rate) and a
/// false-positive rate.
///
/// Detections must be *strictly* inside `(0, 1)`: a certain monitor
/// would mask every lower-priority alarm in the first-alarm observation
/// encoding and create dead observation columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSpec {
    /// Shallow per-service ping monitors: fire when a replica stops
    /// answering pings (crash-class faults; zombies still answer).
    pub shallow_detection: f64,
    /// Shallow false-positive rate.
    pub shallow_fp: f64,
    /// Deep per-service probes: drive a synthetic request through one
    /// uniformly-chosen replica, so they catch zombies at rate
    /// `detection · (down replicas / replicas)`.
    pub deep_detection: f64,
    /// Deep false-positive rate.
    pub deep_fp: f64,
    /// Per-rack heartbeats: fire on host crashes and partitions in the
    /// rack.
    pub rack_detection: f64,
    /// Rack false-positive rate.
    pub rack_fp: f64,
    /// Per-tier synthetic path probes: fire at `detection · (tier
    /// drop fraction)`.
    pub path_detection: f64,
    /// Path false-positive rate.
    pub path_fp: f64,
}

impl Default for MonitorSpec {
    fn default() -> MonitorSpec {
        MonitorSpec {
            shallow_detection: 0.95,
            shallow_fp: 0.01,
            deep_detection: 0.9,
            deep_fp: 0.01,
            rack_detection: 0.98,
            rack_fp: 0.005,
            path_detection: 0.9,
            path_fp: 0.01,
        }
    }
}

/// The hazard families beyond per-component crash/zombie faults (which
/// are always enabled — they are what keeps every monitor column
/// alive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardSpec {
    /// Network partitions: one fault state per rack, cutting off every
    /// component in the rack (they stop answering pings), fixed by the
    /// rack's restore action.
    pub partitions: bool,
    /// Rolling-deploy faults: one fault state per tier where a bad
    /// release degrades the first `⌈deploy_fraction · replicas⌉`
    /// replicas of every service in the tier (still answering pings),
    /// fixed by the tier rollback action.
    pub rolling_deploys: bool,
    /// Fraction of each service's replicas a bad deploy takes out
    /// (`(0, 1]`, required when `rolling_deploys`).
    pub deploy_fraction: f64,
    /// Cascading-failure probability: a group restart that fixes a
    /// component fault instead lands a zombie on the first component of
    /// the dependent group one tier downstream with this probability
    /// (`[0, 1)`; the last tier has no downstream and never cascades).
    pub cascade_prob: f64,
}

impl Default for HazardSpec {
    fn default() -> HazardSpec {
        HazardSpec {
            partitions: true,
            rolling_deploys: true,
            deploy_fraction: 0.5,
            cascade_prob: 0.0,
        }
    }
}

/// Durations of the non-restart recovery actions (restarts are per-tier
/// in [`TierSpec::restart_duration`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationSpec {
    /// Rack reboot duration.
    pub reboot: f64,
    /// Partition-restore duration (the rack drains during restore).
    pub restore: f64,
    /// Tier rollback duration.
    pub rollback: f64,
    /// Monitor-sweep (observe) duration.
    pub observe: f64,
}

impl Default for DurationSpec {
    fn default() -> DurationSpec {
        DurationSpec {
            reboot: 300.0,
            restore: 180.0,
            rollback: 150.0,
            observe: 5.0,
        }
    }
}

/// A declarative datacenter topology, compiled into a validated
/// recovery model by [`crate::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The tier stack, front to back. Requests traverse every tier;
    /// cascades flow downstream (towards later tiers).
    pub tiers: Vec<TierSpec>,
    /// Number of hosts; components are placed round-robin
    /// (`component % hosts`). Must not exceed the component count so
    /// every host carries load.
    pub hosts: usize,
    /// Number of racks; hosts are striped round-robin (`host % racks`).
    pub racks: usize,
    /// Services per restart group: recovery restarts whole groups of
    /// consecutive services within a tier, which is what keeps the
    /// action space tractable at datacenter scale.
    pub restart_group_size: usize,
    /// Monitor coverage and noise.
    pub monitors: MonitorSpec,
    /// Hazard families.
    pub hazards: HazardSpec,
    /// Non-restart action durations.
    pub durations: DurationSpec,
    /// Operator response time `t_op` for the §3.1 no-notification
    /// transform.
    pub operator_response_time: f64,
    /// Multiplicative duration jitter amplitude in `[0, 1)`: each
    /// action's duration is scaled by a seed-deterministic factor in
    /// `[1 − jitter, 1 + jitter)`.
    pub duration_jitter: f64,
    /// Seed driving the duration jitter; the same spec + seed always
    /// compiles to a bit-identical model.
    pub seed: u64,
}

impl Default for TopologySpec {
    /// A small three-tier deployment; valid as-is.
    fn default() -> TopologySpec {
        TopologySpec {
            tiers: vec![
                TierSpec {
                    name: "web".into(),
                    services: 3,
                    replicas: 2,
                    restart_duration: 60.0,
                },
                TierSpec {
                    name: "app".into(),
                    services: 3,
                    replicas: 2,
                    restart_duration: 90.0,
                },
                TierSpec {
                    name: "db".into(),
                    services: 2,
                    replicas: 2,
                    restart_duration: 240.0,
                },
            ],
            hosts: 4,
            racks: 2,
            restart_group_size: 2,
            monitors: MonitorSpec::default(),
            hazards: HazardSpec::default(),
            durations: DurationSpec::default(),
            operator_response_time: 6.0 * 3600.0,
            duration_jitter: 0.0,
            seed: 0,
        }
    }
}

/// Why a [`TopologySpec`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoError {
    /// The spec has no tiers.
    NoTiers,
    /// A tier is malformed (empty/duplicate name, zero services,
    /// replicas outside 1..=64, bad duration).
    Tier {
        /// The offending tier's name (or index when unnamed).
        tier: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A scalar field is out of range.
    Field {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// The spec validated but the compiled matrices were rejected by
    /// the model validators (should not happen; indicates a compiler
    /// bug).
    Model(bpr_core::Error),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::NoTiers => write!(f, "topology must have at least one tier"),
            TopoError::Tier { tier, detail } => write!(f, "tier '{tier}': {detail}"),
            TopoError::Field { field, detail } => write!(f, "{field}: {detail}"),
            TopoError::Model(e) => write!(f, "compiled model rejected: {e}"),
        }
    }
}

impl std::error::Error for TopoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopoError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopoError> for bpr_core::Error {
    fn from(e: TopoError) -> bpr_core::Error {
        match e {
            TopoError::Model(inner) => inner,
            other => bpr_core::Error::InvalidInput {
                detail: other.to_string(),
            },
        }
    }
}

/// Checks that a probability-like field sits in `[lo, hi)`-style
/// bounds; used by [`TopologySpec::validate`].
fn check_unit(
    field: &'static str,
    value: f64,
    open_low: bool,
    open_high: bool,
) -> Result<(), TopoError> {
    let low_ok = if open_low { value > 0.0 } else { value >= 0.0 };
    let high_ok = if open_high { value < 1.0 } else { value <= 1.0 };
    if !value.is_finite() || !low_ok || !high_ok {
        let lo = if open_low { "(0" } else { "[0" };
        let hi = if open_high { "1)" } else { "1]" };
        return Err(TopoError::Field {
            field,
            detail: format!("must be in {lo}, {hi}, got {value}"),
        });
    }
    Ok(())
}

fn check_duration(field: &'static str, value: f64) -> Result<(), TopoError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(TopoError::Field {
            field,
            detail: format!("must be a positive finite duration, got {value}"),
        });
    }
    Ok(())
}

impl TopologySpec {
    /// Starts a builder seeded with [`TopologySpec::default`]'s scalar
    /// fields and *no* tiers.
    pub fn builder() -> TopologySpecBuilder {
        TopologySpecBuilder {
            spec: TopologySpec {
                tiers: Vec::new(),
                ..TopologySpec::default()
            },
        }
    }

    /// Total number of components (replicas across all tiers).
    pub fn n_components(&self) -> usize {
        self.tiers.iter().map(|t| t.services * t.replicas).sum()
    }

    /// Validates every field; the single source of truth the builder
    /// and the compiler both call.
    ///
    /// # Errors
    ///
    /// A [`TopoError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), TopoError> {
        if self.tiers.is_empty() {
            return Err(TopoError::NoTiers);
        }
        for (i, tier) in self.tiers.iter().enumerate() {
            let name = if tier.name.is_empty() {
                format!("#{i}")
            } else {
                tier.name.clone()
            };
            let fail = |detail: String| TopoError::Tier {
                tier: name.clone(),
                detail,
            };
            if tier.name.is_empty() {
                return Err(fail("name must not be empty".into()));
            }
            if self.tiers[..i].iter().any(|t| t.name == tier.name) {
                return Err(fail("name is duplicated".into()));
            }
            if tier.services == 0 {
                return Err(fail("must have at least one service".into()));
            }
            if !(1..=64).contains(&tier.replicas) {
                return Err(fail(format!(
                    "replicas must be in 1..=64, got {}",
                    tier.replicas
                )));
            }
            if !tier.restart_duration.is_finite() || tier.restart_duration <= 0.0 {
                return Err(fail(format!(
                    "restart_duration must be positive and finite, got {}",
                    tier.restart_duration
                )));
            }
        }
        if self.hosts == 0 {
            return Err(TopoError::Field {
                field: "hosts",
                detail: "must be at least 1".into(),
            });
        }
        if self.hosts > self.n_components() {
            return Err(TopoError::Field {
                field: "hosts",
                detail: format!(
                    "{} hosts exceed the {} components (every host must carry load)",
                    self.hosts,
                    self.n_components()
                ),
            });
        }
        if self.racks == 0 || self.racks > self.hosts {
            return Err(TopoError::Field {
                field: "racks",
                detail: format!(
                    "must be in 1..={} (the host count), got {}",
                    self.hosts, self.racks
                ),
            });
        }
        if self.restart_group_size == 0 {
            return Err(TopoError::Field {
                field: "restart_group_size",
                detail: "must be at least 1".into(),
            });
        }
        let m = &self.monitors;
        check_unit(
            "monitors.shallow_detection",
            m.shallow_detection,
            true,
            true,
        )?;
        check_unit("monitors.deep_detection", m.deep_detection, true, true)?;
        check_unit("monitors.rack_detection", m.rack_detection, true, true)?;
        check_unit("monitors.path_detection", m.path_detection, true, true)?;
        check_unit("monitors.shallow_fp", m.shallow_fp, false, true)?;
        check_unit("monitors.deep_fp", m.deep_fp, false, true)?;
        check_unit("monitors.rack_fp", m.rack_fp, false, true)?;
        check_unit("monitors.path_fp", m.path_fp, false, true)?;
        if self.hazards.rolling_deploys {
            check_unit(
                "hazards.deploy_fraction",
                self.hazards.deploy_fraction,
                true,
                false,
            )?;
        }
        if !self.hazards.cascade_prob.is_finite()
            || !(0.0..1.0).contains(&self.hazards.cascade_prob)
        {
            return Err(TopoError::Field {
                field: "hazards.cascade_prob",
                detail: format!("must be in [0, 1), got {}", self.hazards.cascade_prob),
            });
        }
        check_duration("durations.reboot", self.durations.reboot)?;
        check_duration("durations.restore", self.durations.restore)?;
        check_duration("durations.rollback", self.durations.rollback)?;
        check_duration("durations.observe", self.durations.observe)?;
        check_duration("operator_response_time", self.operator_response_time)?;
        if !self.duration_jitter.is_finite() || !(0.0..1.0).contains(&self.duration_jitter) {
            return Err(TopoError::Field {
                field: "duration_jitter",
                detail: format!("must be in [0, 1), got {}", self.duration_jitter),
            });
        }
        Ok(())
    }
}

/// Fluent constructor for [`TopologySpec`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct TopologySpecBuilder {
    spec: TopologySpec,
}

impl TopologySpecBuilder {
    /// Appends a tier (front to back).
    pub fn tier(
        mut self,
        name: impl Into<String>,
        services: usize,
        replicas: usize,
        restart_duration: f64,
    ) -> TopologySpecBuilder {
        self.spec.tiers.push(TierSpec {
            name: name.into(),
            services,
            replicas,
            restart_duration,
        });
        self
    }

    /// Sets the host count.
    pub fn hosts(mut self, hosts: usize) -> TopologySpecBuilder {
        self.spec.hosts = hosts;
        self
    }

    /// Sets the rack count.
    pub fn racks(mut self, racks: usize) -> TopologySpecBuilder {
        self.spec.racks = racks;
        self
    }

    /// Sets the services-per-restart-group granularity.
    pub fn restart_group_size(mut self, size: usize) -> TopologySpecBuilder {
        self.spec.restart_group_size = size;
        self
    }

    /// Replaces the monitor spec.
    pub fn monitors(mut self, monitors: MonitorSpec) -> TopologySpecBuilder {
        self.spec.monitors = monitors;
        self
    }

    /// Replaces the hazard spec.
    pub fn hazards(mut self, hazards: HazardSpec) -> TopologySpecBuilder {
        self.spec.hazards = hazards;
        self
    }

    /// Replaces the duration spec.
    pub fn durations(mut self, durations: DurationSpec) -> TopologySpecBuilder {
        self.spec.durations = durations;
        self
    }

    /// Sets the operator response time `t_op`.
    pub fn operator_response_time(mut self, t_op: f64) -> TopologySpecBuilder {
        self.spec.operator_response_time = t_op;
        self
    }

    /// Sets the duration-jitter amplitude.
    pub fn duration_jitter(mut self, jitter: f64) -> TopologySpecBuilder {
        self.spec.duration_jitter = jitter;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> TopologySpecBuilder {
        self.spec.seed = seed;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Everything [`TopologySpec::validate`] rejects.
    pub fn build(self) -> Result<TopologySpec, TopoError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        TopologySpec::default().validate().unwrap();
    }

    #[test]
    fn builder_builds_a_valid_spec() {
        let spec = TopologySpec::builder()
            .tier("web", 2, 2, 60.0)
            .tier("db", 1, 2, 240.0)
            .hosts(4)
            .racks(2)
            .restart_group_size(1)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(spec.n_components(), 6);
        assert_eq!(spec.seed, 42);
    }

    #[test]
    fn rejections_are_typed() {
        let err = TopologySpec::builder().build();
        assert_eq!(err, Err(TopoError::NoTiers));

        let err = TopologySpec::builder()
            .tier("web", 0, 2, 60.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TopoError::Tier { .. }), "{err}");

        let err = TopologySpec::builder()
            .tier("web", 2, 65, 60.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TopoError::Tier { .. }), "{err}");

        let err = TopologySpec::builder()
            .tier("web", 2, 2, 60.0)
            .tier("web", 1, 2, 60.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicated"), "{err}");

        let err = TopologySpec::builder()
            .tier("web", 2, 2, 60.0)
            .hosts(100)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, TopoError::Field { field: "hosts", .. }),
            "{err}"
        );

        let mut spec = TopologySpec::default();
        spec.monitors.shallow_detection = 1.0; // certain monitors mask lower priorities
        assert!(matches!(
            spec.validate(),
            Err(TopoError::Field {
                field: "monitors.shallow_detection",
                ..
            })
        ));

        let mut spec = TopologySpec::default();
        spec.hazards.cascade_prob = 1.0;
        assert!(spec.validate().is_err());

        let spec = TopologySpec {
            duration_jitter: 1.0,
            ..TopologySpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn core_error_conversion_keeps_detail() {
        let e: bpr_core::Error = TopoError::NoTiers.into();
        assert!(e.to_string().contains("tier"));
    }
}
