//! `bpr-topo`: declarative datacenter topologies compiled into
//! bounded-POMDP recovery models.
//!
//! The paper validates bounded-POMDP recovery on a 14-state testbed;
//! this crate is the scenario factory that turns every perf and
//! robustness claim in the workspace into a model-*family* claim. A
//! [`TopologySpec`] describes a tiered deployment (tiers × services ×
//! replicas placed across hosts and racks), its monitor fleet (with
//! per-monitor false-positive/false-negative rates), and its hazard
//! families (component crashes and zombies, host crashes, network
//! partitions, rolling-deploy faults, cascading restart failures);
//! [`compile`] turns it into a validated
//! [`bpr_core::RecoveryModel`] through the shared
//! [`bpr_core::blueprint`] pipeline.
//!
//! The generation contract: **every valid spec compiles to a model
//! that passes `bpr-lint` clean at error severity** — Conditions 1
//! and 2 of the paper hold by construction, and the proptests in this
//! crate's test suite enforce it over random specs.
//!
//! Scale is kept tractable by design: recovery actions are coarse
//! (group restarts, rack reboots) so `|A|` stays in the tens, and
//! observations use a first-alarm encoding so `|O|` grows linearly in
//! the monitor count instead of exponentially. The [`corpus`] module
//! ships named scenarios from 10² to 10⁴ states behind the
//! [`bpr_core::scenario::Scenario`] registry API.
//!
//! # Examples
//!
//! ```
//! use bpr_topo::TopologySpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TopologySpec::builder()
//!     .tier("web", 3, 2, 60.0)
//!     .tier("db", 2, 2, 240.0)
//!     .hosts(4)
//!     .racks(2)
//!     .build()?;
//! let model = bpr_topo::compile(&spec)?;
//! assert!(model.lint().count(bpr_topo::Severity::Error) == 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod corpus;
pub mod layout;
pub mod spec;

pub use compile::compile;
pub use corpus::{
    cellfleet_mid, cellfleet_shared_rack, corpus, region_large, register_corpus, web3tier_small,
    TopoScenario,
};
pub use layout::{Layout, TopoAction, TopoState};
pub use spec::{
    DurationSpec, HazardSpec, MonitorSpec, TierSpec, TopoError, TopologySpec, TopologySpecBuilder,
};

// Re-exported so the doc example (and downstream lint assertions) have
// the severity enum one import away.
pub use bpr_core::lint::Severity;
