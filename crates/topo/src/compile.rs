//! Compilation of a validated [`TopologySpec`] into a
//! [`RecoveryModel`], via the workspace's shared
//! [`ModelBlueprint`]/[`assemble`] pipeline.
//!
//! ## Semantics
//!
//! * **States** — `Null`, a crash and a zombie per component, a crash
//!   per host, optionally a partition per rack and a bad deploy per
//!   tier ([`crate::layout::TopoState`]).
//! * **Transitions** — deterministic fixes (§5 of the paper): the
//!   matching group restart / rack reboot / restore / rollback repairs
//!   the fault, everything else leaves the state unchanged. With
//!   `cascade_prob > 0`, a *successful* group restart instead lands a
//!   zombie one tier downstream with that probability — the
//!   cascading-failure edge. Cascades bottom out at the last tier, so
//!   recovery (Condition 1) is always preserved.
//! * **Rewards** — `-(request drop fraction while the action runs) ·
//!   duration`, where a request needs one healthy replica of one
//!   service at every tier; the drop unions the fault's damage with the
//!   components the action takes offline (restores drain their rack,
//!   rollbacks bounce the replicas they rewrite). Idle cost rates are
//!   the same drop with no action in flight.
//! * **Observations** — *first-alarm encoding*: symbol `0` is
//!   all-clear, symbol `1 + m` means monitor `m` is the
//!   highest-priority firing alarm. This keeps `|O| = monitors + 1`
//!   (linear, vs. the EMN model's `2^monitors` joint encoding) while
//!   preserving a sound observation distribution: the row telescopes to
//!   exactly 1.
//!
//! Determinism: everything is a pure function of the spec; the only
//! randomness is the seed-derived duration jitter, so the same spec
//! (including seed) always compiles to a bit-identical model.

use crate::layout::{Layout, TopoAction, TopoState};
use crate::spec::{TopoError, TopologySpec};
use bpr_core::blueprint::{assemble, ModelBlueprint};
use bpr_core::RecoveryModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compiles a topology spec into a validated recovery model.
///
/// # Errors
///
/// * Spec validation failures ([`TopoError::NoTiers`],
///   [`TopoError::Tier`], [`TopoError::Field`]).
/// * [`TopoError::Model`] if the compiled matrices fail model
///   validation (a compiler bug — the generation contract says valid
///   specs always compile clean).
pub fn compile(spec: &TopologySpec) -> Result<RecoveryModel, TopoError> {
    spec.validate()?;
    let blueprint = TopoBlueprint::new(spec);
    assemble(&blueprint).map_err(TopoError::Model)
}

/// The blueprint driving [`assemble`] for one validated spec.
pub(crate) struct TopoBlueprint {
    layout: Layout,
    monitors: crate::spec::MonitorSpec,
    cascade_prob: f64,
    /// Jittered per-action durations, fixed at construction from the
    /// spec's seed.
    durations: Vec<f64>,
    /// Precomputed `(service, down-mask)` lists — rebuilding the
    /// per-rack lists inside every `reward(s, a)` call is what would
    /// otherwise dominate compilation at 10⁴ states.
    host_masks: Vec<Vec<(usize, u64)>>,
    rack_masks: Vec<Vec<(usize, u64)>>,
    /// Per-tier masks of the replicas a bad deploy (and its rollback)
    /// touches.
    deploy_masks: Vec<Vec<(usize, u64)>>,
    /// Per-group full-service masks for restarts.
    group_masks: Vec<Vec<(usize, u64)>>,
}

impl TopoBlueprint {
    pub(crate) fn new(spec: &TopologySpec) -> TopoBlueprint {
        let layout = Layout::new(spec);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let durations = (0..layout.n_actions())
            .map(|a| {
                let base = match layout.action(a) {
                    TopoAction::RestartGroup(g) => {
                        layout.tiers[layout.groups[g].tier].restart_duration
                    }
                    TopoAction::Reboot(_) => spec.durations.reboot,
                    TopoAction::Restore(_) => spec.durations.restore,
                    TopoAction::Rollback(_) => spec.durations.rollback,
                    TopoAction::Observe => spec.durations.observe,
                };
                let u: f64 = rng.gen();
                base * (1.0 + spec.duration_jitter * (2.0 * u - 1.0))
            })
            .collect();
        let host_masks = layout
            .host_components
            .iter()
            .map(|comps| component_masks(&layout, comps))
            .collect();
        let rack_masks = layout
            .rack_components
            .iter()
            .map(|comps| component_masks(&layout, comps))
            .collect();
        let deploy_masks = layout
            .tiers
            .iter()
            .map(|tier| {
                let mask = (1u64 << tier.deploy_down) - 1;
                (0..tier.services)
                    .map(|s| (tier.first_service + s, mask))
                    .collect()
            })
            .collect();
        let group_masks = layout
            .groups
            .iter()
            .map(|group| {
                let full = full_mask(layout.tiers[group.tier].replicas);
                (0..group.services)
                    .map(|s| (group.first_service + s, full))
                    .collect()
            })
            .collect();
        TopoBlueprint {
            layout,
            monitors: spec.monitors,
            cascade_prob: spec.hazards.cascade_prob,
            durations,
            host_masks,
            rack_masks,
            deploy_masks,
            group_masks,
        }
    }

    /// Pushes `(service, down-replica bitmask)` pairs for the
    /// components a state takes down, sorted by service id. `ping_dead`
    /// selects whether the affected replicas stop answering pings
    /// (crash-class faults) — zombies and bad deploys keep pinging.
    fn state_masks(&self, s: TopoState, out: &mut Vec<(usize, u64)>) -> bool {
        let l = &self.layout;
        match s {
            TopoState::Null => false,
            TopoState::Crash(c) | TopoState::Zombie(c) => {
                out.push((l.comp_service[c], 1u64 << l.comp_replica[c]));
                matches!(s, TopoState::Crash(_))
            }
            TopoState::HostCrash(h) => {
                out.extend_from_slice(&self.host_masks[h]);
                true
            }
            TopoState::Partition(r) => {
                out.extend_from_slice(&self.rack_masks[r]);
                true
            }
            TopoState::BadDeploy(t) => {
                out.extend_from_slice(&self.deploy_masks[t]);
                false
            }
        }
    }

    /// Pushes the masks of the components an action takes offline while
    /// it executes, sorted by service id.
    fn action_masks(&self, a: TopoAction, out: &mut Vec<(usize, u64)>) {
        match a {
            TopoAction::RestartGroup(g) => out.extend_from_slice(&self.group_masks[g]),
            TopoAction::Reboot(r) | TopoAction::Restore(r) => {
                out.extend_from_slice(&self.rack_masks[r]);
            }
            TopoAction::Rollback(t) => out.extend_from_slice(&self.deploy_masks[t]),
            TopoAction::Observe => {}
        }
    }

    /// The request drop fraction for a set of per-service down masks:
    /// `1 − Π_tier (available tier capacity / full tier capacity)`.
    fn drop_from_masks(&self, masks: &[(usize, u64)]) -> f64 {
        let l = &self.layout;
        let mut deficit = vec![0.0f64; l.tiers.len()];
        for &(svc, mask) in masks {
            let tier = l.svc_tier[svc];
            deficit[tier] += mask.count_ones() as f64 / l.tiers[tier].replicas as f64;
        }
        let mut avail = 1.0;
        for (t, tier) in l.tiers.iter().enumerate() {
            avail *= (tier.services as f64 - deficit[t]) / tier.services as f64;
        }
        1.0 - avail
    }

    /// Drop fraction while `action` executes in `state`: the union of
    /// the fault's damage and the action's own downtime.
    fn drop_during(&self, state: TopoState, action: TopoAction) -> f64 {
        let mut state_down = Vec::new();
        self.state_masks(state, &mut state_down);
        let mut action_down = Vec::new();
        self.action_masks(action, &mut action_down);
        let merged = merge_masks(&state_down, &action_down);
        self.drop_from_masks(&merged)
    }

    /// Per-state monitor inputs, derived once per observation row.
    fn facts(&self, state: TopoState) -> Facts {
        let l = &self.layout;
        let mut masks = Vec::new();
        let ping_dead = self.state_masks(state, &mut masks);
        let mut svc_down = vec![0u64; l.n_services];
        let mut svc_ping_dead = vec![false; l.n_services];
        for &(svc, mask) in &masks {
            svc_down[svc] |= mask;
            if ping_dead {
                svc_ping_dead[svc] = true;
            }
        }
        let mut rack_alarm = vec![false; l.n_racks];
        match state {
            TopoState::HostCrash(h) => rack_alarm[l.host_rack[h]] = true,
            TopoState::Partition(r) => rack_alarm[r] = true,
            _ => {}
        }
        let mut tier_drop = vec![0.0f64; l.tiers.len()];
        for &(svc, mask) in &masks {
            let t = l.svc_tier[svc];
            tier_drop[t] += mask.count_ones() as f64
                / (l.tiers[t].replicas as f64 * l.tiers[t].services as f64);
        }
        Facts {
            svc_down,
            svc_ping_dead,
            rack_alarm,
            tier_drop,
        }
    }

    /// The firing probability of monitor `m` given the state facts.
    fn monitor_prob(&self, m: usize, facts: &Facts) -> f64 {
        let (l, spec) = (&self.layout, &self.monitors);
        let mut i = m;
        if i < l.n_racks {
            return if facts.rack_alarm[i] {
                spec.rack_detection
            } else {
                spec.rack_fp
            };
        }
        i -= l.n_racks;
        if i < l.n_services {
            return if facts.svc_ping_dead[i] {
                spec.shallow_detection
            } else {
                spec.shallow_fp
            };
        }
        i -= l.n_services;
        if i < l.n_services {
            let tier = &l.tiers[l.svc_tier[i]];
            let frac = facts.svc_down[i].count_ones() as f64 / tier.replicas as f64;
            return spec.deep_detection * frac + spec.deep_fp * (1.0 - frac);
        }
        i -= l.n_services;
        let drop = facts.tier_drop[i];
        spec.path_detection * drop + spec.path_fp * (1.0 - drop)
    }
}

/// Monitor inputs for one state.
struct Facts {
    svc_down: Vec<u64>,
    svc_ping_dead: Vec<bool>,
    rack_alarm: Vec<bool>,
    tier_drop: Vec<f64>,
}

/// Groups a component list into service-sorted `(service, mask)` pairs.
fn component_masks(l: &Layout, comps: &[usize]) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = Vec::new();
    for &c in comps {
        let svc = l.comp_service[c];
        let bit = 1u64 << l.comp_replica[c];
        match out.iter_mut().find(|(s, _)| *s == svc) {
            Some((_, mask)) => *mask |= bit,
            None => out.push((svc, bit)),
        }
    }
    out.sort_unstable_by_key(|&(s, _)| s);
    out
}

fn full_mask(replicas: usize) -> u64 {
    if replicas == 64 {
        u64::MAX
    } else {
        (1u64 << replicas) - 1
    }
}

/// Merges two service-sorted mask lists, OR-ing masks of shared
/// services.
fn merge_masks(a: &[(usize, u64)], b: &[(usize, u64)]) -> Vec<(usize, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 | b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl ModelBlueprint for TopoBlueprint {
    fn n_states(&self) -> usize {
        self.layout.n_states()
    }
    fn n_actions(&self) -> usize {
        self.layout.n_actions()
    }
    fn n_observations(&self) -> usize {
        self.layout.n_monitors() + 1
    }
    fn state_label(&self, s: usize) -> String {
        self.layout.state_label(s)
    }
    fn action_label(&self, a: usize) -> String {
        self.layout.action_label(a)
    }
    fn observation_label(&self, o: usize) -> String {
        if o == 0 {
            "all-clear".into()
        } else {
            self.layout.monitor_label(o - 1)
        }
    }
    fn action_duration(&self, a: usize) -> f64 {
        self.durations[a]
    }

    fn transitions(&self, s: usize, a: usize, out: &mut Vec<(usize, f64)>) {
        let l = &self.layout;
        let state = l.state(s);
        let action = l.action(a);
        let fixed = match (action, state) {
            (TopoAction::RestartGroup(g), TopoState::Crash(c) | TopoState::Zombie(c))
                if l.group_contains(g, l.comp_service[c]) =>
            {
                // A successful restart may cascade a zombie one tier
                // downstream.
                if self.cascade_prob > 0.0 {
                    if let Some(target) = l.cascade_target(g) {
                        out.push((0, 1.0 - self.cascade_prob));
                        out.push((l.state_index(TopoState::Zombie(target)), self.cascade_prob));
                        return;
                    }
                }
                true
            }
            (TopoAction::Reboot(r), TopoState::HostCrash(h)) => l.host_rack[h] == r,
            (TopoAction::Reboot(r), TopoState::Crash(c) | TopoState::Zombie(c)) => {
                l.host_rack[l.comp_host[c]] == r
            }
            (TopoAction::Restore(r), TopoState::Partition(p)) => p == r,
            (TopoAction::Rollback(t), TopoState::BadDeploy(d)) => d == t,
            _ => false,
        };
        out.push((if fixed { 0 } else { s }, 1.0));
    }

    fn reward(&self, s: usize, a: usize) -> f64 {
        let state = self.layout.state(s);
        let action = self.layout.action(a);
        -self.drop_during(state, action) * self.durations[a]
    }

    fn observation_row(&self, entered: usize, out: &mut Vec<(usize, f64)>) {
        let facts = self.facts(self.layout.state(entered));
        let mut survival = 1.0f64;
        for m in 0..self.layout.n_monitors() {
            let p = self.monitor_prob(m, &facts);
            let term = survival * p;
            if term > 0.0 {
                out.push((1 + m, term));
            }
            survival *= 1.0 - p;
        }
        // Detections are validated < 1, so "no alarm fires" keeps
        // positive mass and the row telescopes to exactly 1.
        out.push((0, survival));
    }

    fn null_states(&self) -> Vec<usize> {
        vec![0]
    }

    fn idle_rate(&self, s: usize) -> f64 {
        let mut masks = Vec::new();
        self.state_masks(self.layout.state(s), &mut masks);
        -self.drop_from_masks(&masks)
    }

    fn observe_actions(&self) -> Vec<usize> {
        vec![self.layout.observe_index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HazardSpec;
    use bpr_core::StateId;

    fn model() -> RecoveryModel {
        compile(&TopologySpec::default()).unwrap()
    }

    #[test]
    fn default_spec_compiles_with_matching_dimensions() {
        let spec = TopologySpec::default();
        let layout = Layout::new(&spec);
        let m = model();
        assert_eq!(m.base().n_states(), layout.n_states());
        assert_eq!(m.base().n_actions(), layout.n_actions());
        assert_eq!(m.base().n_observations(), layout.n_monitors() + 1);
        assert_eq!(m.null_states(), &[StateId::new(0)]);
    }

    #[test]
    fn same_spec_and_seed_compile_bit_identically() {
        let spec = TopologySpec {
            duration_jitter: 0.2,
            seed: 99,
            ..TopologySpec::default()
        };
        let a = compile(&spec).unwrap();
        let b = compile(&spec).unwrap();
        assert_eq!(a, b);
        let other_seed = compile(&TopologySpec { seed: 100, ..spec }).unwrap();
        assert_ne!(a, other_seed, "jitter must respond to the seed");
    }

    #[test]
    fn every_fault_has_a_recovery_action() {
        let m = model();
        for s in m.fault_states() {
            assert!(
                !m.recovery_actions_for(s).is_empty(),
                "no recovery action for {}",
                m.base().mdp().state_label(s)
            );
        }
    }

    #[test]
    fn partition_knob_adds_states_and_actions() {
        let base = TopologySpec {
            hazards: HazardSpec {
                partitions: false,
                rolling_deploys: false,
                deploy_fraction: 0.5,
                cascade_prob: 0.0,
            },
            ..TopologySpec::default()
        };
        let with = TopologySpec {
            hazards: HazardSpec {
                partitions: true,
                ..base.hazards
            },
            ..base.clone()
        };
        let (m0, m1) = (compile(&base).unwrap(), compile(&with).unwrap());
        let racks = base.racks;
        assert_eq!(m1.base().n_states(), m0.base().n_states() + racks);
        assert_eq!(m1.base().n_actions(), m0.base().n_actions() + racks);
        // The restore action fixes the partition deterministically.
        let layout = Layout::new(&with);
        let s = layout.state_index(TopoState::Partition(0));
        let a = layout.groups.len().checked_add(layout.n_racks).unwrap(); // first Restore action
        assert_eq!(layout.action(a), TopoAction::Restore(0));
        assert_eq!(m1.base().mdp().transition_prob(s, a, 0), 1.0);
        // Restoring drains the rack: the action costs even in Null.
        assert!(m1.base().mdp().reward(0, a) < 0.0);
    }

    #[test]
    fn rolling_deploy_knob_adds_per_tier_faults() {
        let spec = TopologySpec::default();
        let layout = Layout::new(&spec);
        let m = model();
        for t in 0..spec.tiers.len() {
            let s = layout.state_index(TopoState::BadDeploy(t));
            // Bad deploys keep pinging: every shallow monitor stays at
            // its false-positive rate, so the deep monitors carry the
            // diagnosis.
            let facts_rate = m.rates()[s];
            assert!(facts_rate < 0.0, "bad deploy must cost while idle");
            // Rollback fixes it.
            let a = (0..layout.n_actions())
                .find(|&a| layout.action(a) == TopoAction::Rollback(t))
                .unwrap();
            assert_eq!(m.base().mdp().transition_prob(s, a, 0), 1.0);
        }
    }

    #[test]
    fn cascade_routes_mass_one_tier_downstream() {
        let spec = TopologySpec {
            hazards: HazardSpec {
                cascade_prob: 0.3,
                ..HazardSpec::default()
            },
            ..TopologySpec::default()
        };
        let layout = Layout::new(&spec);
        let m = compile(&spec).unwrap();
        // Crash of component 0 (web tier, group 0): restart fixes with
        // prob 0.7, cascades a zombie into the app tier with 0.3.
        let s = layout.state_index(TopoState::Crash(0));
        let target = layout.cascade_target(0).unwrap();
        let z = layout.state_index(TopoState::Zombie(target));
        assert!((m.base().mdp().transition_prob(s, 0, 0) - 0.7).abs() < 1e-12);
        assert!((m.base().mdp().transition_prob(s, 0, z) - 0.3).abs() < 1e-12);
        // Last tier restarts never cascade.
        let last_group = layout.n_groups - 1;
        assert_eq!(layout.cascade_target(last_group), None);
        // Condition 1 still holds (validated by construction), and the
        // cascade target is itself recoverable.
        assert!(!m.recovery_actions_for(StateId::new(z)).is_empty());
    }

    #[test]
    fn observation_rows_are_sparse_when_fp_is_zero() {
        let mut spec = TopologySpec::default();
        spec.monitors.shallow_fp = 0.0;
        spec.monitors.deep_fp = 0.0;
        spec.monitors.rack_fp = 0.0;
        spec.monitors.path_fp = 0.0;
        let blueprint = TopoBlueprint::new(&spec);
        let mut row = Vec::new();
        blueprint.observation_row(0, &mut row);
        // Null fires nothing: all-clear with probability 1.
        assert_eq!(row, vec![(0, 1.0)]);
        row.clear();
        let layout = Layout::new(&spec);
        let s = layout.state_index(TopoState::Zombie(0));
        blueprint.observation_row(s, &mut row);
        // A zombie is visible to its deep probe and the tier path
        // probe, invisible to pings — a handful of entries, not |O|.
        assert!(row.len() >= 3 && row.len() <= 6, "{row:?}");
        let total: f64 = row.iter().map(|&(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observe_is_free_only_in_null() {
        let m = model();
        let layout = Layout::new(&TopologySpec::default());
        let observe = layout.observe_index();
        assert_eq!(m.base().mdp().reward(0, observe), 0.0);
        let s = layout.state_index(TopoState::Crash(0));
        assert!(m.base().mdp().reward(s, observe) < 0.0);
        assert!(m.is_observe(bpr_core::ActionId::new(observe)));
    }
}
