//! The compiled index space of a validated [`TopologySpec`]: global
//! component/service/group numbering, host and rack placement, the
//! fault-state and action layouts, and the monitor fleet. Everything
//! here is a pure function of the spec, so the same spec always yields
//! the same layout.

use crate::spec::TopologySpec;

/// Per-tier bookkeeping after global numbering.
#[derive(Debug, Clone)]
pub struct TierInfo {
    /// Tier name (from the spec).
    pub name: String,
    /// Services in this tier.
    pub services: usize,
    /// Replicas per service.
    pub replicas: usize,
    /// Global id of the tier's first service.
    pub first_service: usize,
    /// Global id of the tier's first component.
    pub first_component: usize,
    /// Global id of the tier's first restart group.
    pub first_group: usize,
    /// Number of restart groups in the tier.
    pub groups: usize,
    /// Restart duration for the tier's groups.
    pub restart_duration: f64,
    /// Replicas a bad deploy degrades per service
    /// (`⌈deploy_fraction · replicas⌉`, 0 when deploys are disabled).
    pub deploy_down: usize,
}

/// A restart group: a run of consecutive services within one tier.
#[derive(Debug, Clone, Copy)]
pub struct GroupInfo {
    /// The tier the group belongs to.
    pub tier: usize,
    /// First global service id in the group.
    pub first_service: usize,
    /// Number of services in the group.
    pub services: usize,
}

/// The fault space of a compiled topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoState {
    /// The single null-fault state.
    Null,
    /// Component `c` crashed (stops answering pings).
    Crash(usize),
    /// Component `c` is a zombie (answers pings, serves nothing).
    Zombie(usize),
    /// Host `h` crashed (all its components ping-dead).
    HostCrash(usize),
    /// Rack `r` is partitioned off (all its components ping-dead).
    Partition(usize),
    /// A bad rolling deploy degrades tier `t` (affected replicas still
    /// answer pings).
    BadDeploy(usize),
}

/// The action space of a compiled topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoAction {
    /// Restart every replica of every service in group `g`; fixes
    /// crash/zombie faults inside the group (and may cascade
    /// downstream).
    RestartGroup(usize),
    /// Power-cycle every host in rack `r`; fixes host crashes and
    /// component faults hosted there.
    Reboot(usize),
    /// Repair rack `r`'s network partition (the rack drains during the
    /// restore).
    Restore(usize),
    /// Roll tier `t` back to the previous release; fixes its bad
    /// deploy.
    Rollback(usize),
    /// The monitor sweep (the model's observe action).
    Observe,
}

/// Global numbering for a validated spec.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Per-tier info, in spec order.
    pub tiers: Vec<TierInfo>,
    /// Global service count.
    pub n_services: usize,
    /// Global component count.
    pub n_components: usize,
    /// Host count.
    pub n_hosts: usize,
    /// Rack count.
    pub n_racks: usize,
    /// Restart-group count.
    pub n_groups: usize,
    /// service id → tier id.
    pub svc_tier: Vec<usize>,
    /// component id → global service id.
    pub comp_service: Vec<usize>,
    /// component id → replica index within its service.
    pub comp_replica: Vec<usize>,
    /// component id → host (round-robin placement).
    pub comp_host: Vec<usize>,
    /// host → rack (round-robin striping).
    pub host_rack: Vec<usize>,
    /// host → components placed on it.
    pub host_components: Vec<Vec<usize>>,
    /// rack → components placed on its hosts.
    pub rack_components: Vec<Vec<usize>>,
    /// Restart groups, in global order.
    pub groups: Vec<GroupInfo>,
    /// Whether partition states/actions exist.
    pub partitions: bool,
    /// Whether bad-deploy states/rollback actions exist.
    pub deploys: bool,
}

impl Layout {
    /// Numbers a validated spec. Callers must have run
    /// [`TopologySpec::validate`] first.
    pub fn new(spec: &TopologySpec) -> Layout {
        let mut tiers = Vec::with_capacity(spec.tiers.len());
        let (mut svc_base, mut comp_base, mut group_base) = (0usize, 0usize, 0usize);
        for t in &spec.tiers {
            let groups = t.services.div_ceil(spec.restart_group_size);
            tiers.push(TierInfo {
                name: t.name.clone(),
                services: t.services,
                replicas: t.replicas,
                first_service: svc_base,
                first_component: comp_base,
                first_group: group_base,
                groups,
                restart_duration: t.restart_duration,
                deploy_down: if spec.hazards.rolling_deploys {
                    // ceil(fraction * replicas), clamped into 1..=replicas.
                    (((spec.hazards.deploy_fraction * t.replicas as f64).ceil() as usize).max(1))
                        .min(t.replicas)
                } else {
                    0
                },
            });
            svc_base += t.services;
            comp_base += t.services * t.replicas;
            group_base += groups;
        }
        let (n_services, n_components, n_groups) = (svc_base, comp_base, group_base);

        let mut svc_tier = Vec::with_capacity(n_services);
        let mut comp_service = Vec::with_capacity(n_components);
        let mut comp_replica = Vec::with_capacity(n_components);
        let mut groups = Vec::with_capacity(n_groups);
        for (ti, tier) in tiers.iter().enumerate() {
            for s in 0..tier.services {
                svc_tier.push(ti);
                for r in 0..tier.replicas {
                    comp_service.push(tier.first_service + s);
                    comp_replica.push(r);
                }
            }
            for g in 0..tier.groups {
                let first = g * spec.restart_group_size;
                groups.push(GroupInfo {
                    tier: ti,
                    first_service: tier.first_service + first,
                    services: spec.restart_group_size.min(tier.services - first),
                });
            }
        }

        let comp_host: Vec<usize> = (0..n_components).map(|c| c % spec.hosts).collect();
        let host_rack: Vec<usize> = (0..spec.hosts).map(|h| h % spec.racks).collect();
        let mut host_components = vec![Vec::new(); spec.hosts];
        let mut rack_components = vec![Vec::new(); spec.racks];
        for (c, &h) in comp_host.iter().enumerate() {
            host_components[h].push(c);
            rack_components[host_rack[h]].push(c);
        }

        Layout {
            tiers,
            n_services,
            n_components,
            n_hosts: spec.hosts,
            n_racks: spec.racks,
            n_groups,
            svc_tier,
            comp_service,
            comp_replica,
            comp_host,
            host_rack,
            host_components,
            rack_components,
            groups,
            partitions: spec.hazards.partitions,
            deploys: spec.hazards.rolling_deploys,
        }
    }

    /// Total state count: null + crashes + zombies + host crashes
    /// (+ partitions) (+ bad deploys).
    pub fn n_states(&self) -> usize {
        1 + 2 * self.n_components
            + self.n_hosts
            + if self.partitions { self.n_racks } else { 0 }
            + if self.deploys { self.tiers.len() } else { 0 }
    }

    /// Total action count: group restarts + rack reboots (+ restores)
    /// (+ rollbacks) + observe.
    pub fn n_actions(&self) -> usize {
        self.n_groups
            + self.n_racks
            + if self.partitions { self.n_racks } else { 0 }
            + if self.deploys { self.tiers.len() } else { 0 }
            + 1
    }

    /// Monitor count: rack heartbeats + shallow + deep + path probes.
    pub fn n_monitors(&self) -> usize {
        self.n_racks + 2 * self.n_services + self.tiers.len()
    }

    /// Decodes a state index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn state(&self, index: usize) -> TopoState {
        let c = self.n_components;
        if index == 0 {
            return TopoState::Null;
        }
        let mut i = index - 1;
        if i < c {
            return TopoState::Crash(i);
        }
        i -= c;
        if i < c {
            return TopoState::Zombie(i);
        }
        i -= c;
        if i < self.n_hosts {
            return TopoState::HostCrash(i);
        }
        i -= self.n_hosts;
        if self.partitions {
            if i < self.n_racks {
                return TopoState::Partition(i);
            }
            i -= self.n_racks;
        }
        if self.deploys && i < self.tiers.len() {
            return TopoState::BadDeploy(i);
        }
        panic!("state index {index} out of bounds");
    }

    /// Encodes a state to its index (inverse of [`Layout::state`]).
    pub fn state_index(&self, s: TopoState) -> usize {
        let c = self.n_components;
        match s {
            TopoState::Null => 0,
            TopoState::Crash(i) => 1 + i,
            TopoState::Zombie(i) => 1 + c + i,
            TopoState::HostCrash(h) => 1 + 2 * c + h,
            TopoState::Partition(r) => 1 + 2 * c + self.n_hosts + r,
            TopoState::BadDeploy(t) => {
                1 + 2 * c + self.n_hosts + if self.partitions { self.n_racks } else { 0 } + t
            }
        }
    }

    /// Decodes an action index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn action(&self, index: usize) -> TopoAction {
        let mut i = index;
        if i < self.n_groups {
            return TopoAction::RestartGroup(i);
        }
        i -= self.n_groups;
        if i < self.n_racks {
            return TopoAction::Reboot(i);
        }
        i -= self.n_racks;
        if self.partitions {
            if i < self.n_racks {
                return TopoAction::Restore(i);
            }
            i -= self.n_racks;
        }
        if self.deploys {
            if i < self.tiers.len() {
                return TopoAction::Rollback(i);
            }
            i -= self.tiers.len();
        }
        if i == 0 {
            return TopoAction::Observe;
        }
        panic!("action index {index} out of bounds");
    }

    /// The observe action's index (always the last action).
    pub fn observe_index(&self) -> usize {
        self.n_actions() - 1
    }

    /// Whether group `g` contains global service `svc`.
    pub fn group_contains(&self, g: usize, svc: usize) -> bool {
        let group = &self.groups[g];
        (group.first_service..group.first_service + group.services).contains(&svc)
    }

    /// The cascade target of group `g`: the first component of the
    /// aligned group one tier downstream, or `None` for the last tier.
    pub fn cascade_target(&self, g: usize) -> Option<usize> {
        let group = &self.groups[g];
        let next = self.tiers.get(group.tier + 1)?;
        let gi = g - self.tiers[group.tier].first_group;
        let svc_in_tier = gi % next.services;
        Some(next.first_component + svc_in_tier * next.replicas)
    }

    /// Human-readable state label.
    pub fn state_label(&self, index: usize) -> String {
        let comp = |c: usize| {
            let svc = self.comp_service[c];
            let tier = &self.tiers[self.svc_tier[svc]];
            format!(
                "{}/s{}/r{}",
                tier.name,
                svc - tier.first_service,
                self.comp_replica[c]
            )
        };
        match self.state(index) {
            TopoState::Null => "Null".into(),
            TopoState::Crash(c) => format!("Crash({})", comp(c)),
            TopoState::Zombie(c) => format!("Zombie({})", comp(c)),
            TopoState::HostCrash(h) => format!("HostCrash(h{h})"),
            TopoState::Partition(r) => format!("Partition(rack{r})"),
            TopoState::BadDeploy(t) => format!("BadDeploy({})", self.tiers[t].name),
        }
    }

    /// Human-readable action label.
    pub fn action_label(&self, index: usize) -> String {
        match self.action(index) {
            TopoAction::RestartGroup(g) => {
                let group = &self.groups[g];
                let tier = &self.tiers[group.tier];
                format!("RestartGroup({}/g{})", tier.name, g - tier.first_group)
            }
            TopoAction::Reboot(r) => format!("Reboot(rack{r})"),
            TopoAction::Restore(r) => format!("Restore(rack{r})"),
            TopoAction::Rollback(t) => format!("Rollback({})", self.tiers[t].name),
            TopoAction::Observe => "Observe".into(),
        }
    }

    /// Human-readable monitor label (monitor `m` maps to observation
    /// `1 + m`; observation 0 is "all-clear").
    pub fn monitor_label(&self, m: usize) -> String {
        let mut i = m;
        if i < self.n_racks {
            return format!("rack(rack{i})");
        }
        i -= self.n_racks;
        let svc = |s: usize| {
            let tier = &self.tiers[self.svc_tier[s]];
            format!("{}/s{}", tier.name, s - tier.first_service)
        };
        if i < self.n_services {
            return format!("shallow({})", svc(i));
        }
        i -= self.n_services;
        if i < self.n_services {
            return format!("deep({})", svc(i));
        }
        i -= self.n_services;
        format!("path({})", self.tiers[i].name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(&TopologySpec::default())
    }

    #[test]
    fn counts_add_up() {
        let l = layout();
        // Default spec: 3+3+2 services × 2 replicas = 16 components.
        assert_eq!(l.n_components, 16);
        assert_eq!(l.n_services, 8);
        // groups of 2: 2 (web) + 2 (app) + 1 (db).
        assert_eq!(l.n_groups, 5);
        // 1 + 32 + 4 hosts + 2 partitions + 3 deploys.
        assert_eq!(l.n_states(), 42);
        // 5 restarts + 2 reboots + 2 restores + 3 rollbacks + observe.
        assert_eq!(l.n_actions(), 13);
        // 2 rack + 8 shallow + 8 deep + 3 path.
        assert_eq!(l.n_monitors(), 21);
    }

    #[test]
    fn state_roundtrip_covers_every_index() {
        let l = layout();
        for i in 0..l.n_states() {
            assert_eq!(l.state_index(l.state(i)), i, "state {i}");
        }
    }

    #[test]
    fn action_decoding_covers_every_index() {
        let l = layout();
        assert_eq!(l.action(l.observe_index()), TopoAction::Observe);
        let mut seen_restore = false;
        for i in 0..l.n_actions() {
            if matches!(l.action(i), TopoAction::Restore(_)) {
                seen_restore = true;
            }
        }
        assert!(seen_restore);
    }

    #[test]
    fn every_host_and_rack_carries_components() {
        let l = layout();
        assert!(l.host_components.iter().all(|h| !h.is_empty()));
        assert!(l.rack_components.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn cascade_targets_point_one_tier_downstream() {
        let l = layout();
        for (g, group) in l.groups.iter().enumerate() {
            match l.cascade_target(g) {
                Some(c) => {
                    let target_tier = l.svc_tier[l.comp_service[c]];
                    assert_eq!(target_tier, group.tier + 1);
                }
                None => assert_eq!(group.tier, l.tiers.len() - 1),
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let l = layout();
        let mut labels: Vec<String> = (0..l.n_states()).map(|s| l.state_label(s)).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), l.n_states());
    }
}
