//! Offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic, dependency-free implementation of exactly
//! the surface the code relies on:
//!
//! * [`Rng`] with `gen`, `gen_range`, and `gen_bool`,
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`,
//! * [`rngs::StdRng`], here a xoshiro256** generator seeded via
//!   SplitMix64.
//!
//! The streams differ from crates.io `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this repository only requires a
//! *deterministic, seedable, well-mixed* generator — no cryptographic
//! properties — and all recorded experiment outputs were produced with
//! this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce via the [`Standard`]
/// distribution.
pub trait Distribution<T> {
    /// Samples a value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over `[0, 1)` for
/// floats, uniform over all values for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            // The cast is trivial for the widest instantiation (u64).
            #[allow(trivial_numeric_casts)]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                start + draw as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
signed_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            // The cast is trivial for the widest instantiation (f64).
            #[allow(trivial_numeric_casts)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: f64 = Standard.sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw with the given success probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = self.gen();
        u < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`, extended with a
/// deterministic *stream-splitting* API for parallel consumers.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// to fill the full seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }

    /// Builds the generator for stream `stream` of the family identified
    /// by `master`: `seed_from_u64(split_seed(master, stream))`.
    ///
    /// Work items of a parallel computation each take their own stream
    /// (`stream = item index`), which makes the draws of every item a
    /// pure function of `(master, index)` — independent of how items are
    /// scheduled across threads, and bit-identical to a serial run.
    fn seed_from_stream(master: u64, stream: u64) -> Self {
        Self::seed_from_u64(split_seed(master, stream))
    }
}

/// Derives the seed of child stream `stream` from a `master` seed.
///
/// Two SplitMix64 finalisation rounds over a golden-ratio-spread mix of
/// the inputs: nearby `(master, stream)` pairs land on statistically
/// unrelated seeds, and `split_seed(m, s1) == split_seed(m, s2)` only
/// on (astronomically unlikely) 64-bit collisions. `stream = 0` is NOT
/// the identity — child streams never alias the master's own stream.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23);
    let a = splitmix64(&mut state);
    let mut state2 = a.wrapping_add(stream).wrapping_add(0x8000_0000_0000_0001);
    splitmix64(&mut state2)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the ChaCha12 generator crates.io `rand` uses, but every
    /// consumer here only needs determinism and good statistical
    /// mixing.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let i = rng.gen_range(3usize..=4);
            assert!(i == 3 || i == 4);
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        use super::split_seed;
        // Determinism.
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        // Distinctness across streams, masters, and from the master's
        // own stream (stream 0 is not the identity).
        assert_ne!(split_seed(7, 0), 7);
        assert_ne!(split_seed(7, 0), split_seed(7, 1));
        assert_ne!(split_seed(7, 1), split_seed(8, 1));
        // Generators on different streams produce different draws;
        // same stream reproduces bit-identically.
        let mut a = StdRng::seed_from_stream(42, 0);
        let mut b = StdRng::seed_from_stream(42, 1);
        let mut a2 = StdRng::seed_from_stream(42, 0);
        let mut distinct = false;
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, a2.next_u64());
            distinct |= x != b.next_u64();
        }
        assert!(distinct, "streams 0 and 1 collided");
    }

    #[test]
    fn split_seed_spreads_consecutive_streams() {
        use super::split_seed;
        // No collisions over a realistic campaign-sized index range.
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 0xDEAD_BEEF] {
            for stream in 0..10_000u64 {
                assert!(
                    seen.insert(split_seed(master, stream)),
                    "collision at master {master}, stream {stream}"
                );
            }
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let r: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(r)));
    }
}
