//! Scenario API tour: look any registered scenario up by name —
//! the paper's models or the generated `bpr-topo` datacenter corpus —
//! lint it, and run one bounded-controller recovery episode on it.
//!
//! Run with:
//! `cargo run -p bpr-bench --example scenario_tour -- [scenario]`
//! (default scenario: `web3tier-small`; pass `--list` to see all).
//! Every scenario up to `cellfleet-mid` finishes in well under a
//! second; `region-large` runs a full 10⁴-state episode and takes a
//! few minutes.

use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = bpr::scenario::builtin();
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "web3tier-small".to_string());
    if name == "--list" {
        for scenario in registry.iter() {
            println!("{:<16} {}", scenario.name(), scenario.description());
        }
        return Ok(());
    }

    // 1. One lookup surface for every model the workspace ships.
    let scenario = registry.require(&name)?;
    println!("{}: {}", scenario.name(), scenario.description());

    // 2. Build and lint. Every registered scenario compiles to a
    //    validated RecoveryModel that passes bpr-lint clean at error
    //    severity — for the generated corpus that is the topology
    //    compiler's generation contract.
    let model = scenario.build()?;
    println!(
        "model: {} states, {} actions, {} observations",
        model.base().n_states(),
        model.base().n_actions(),
        model.base().n_observations()
    );
    let report = lint_pomdp(model.base(), &model.lint_context());
    assert!(!report.has_errors(), "{}", report.render());
    println!("lint: clean at error severity");

    // 3. Run one recovery episode with the bounded controller, seeded
    //    from the scenario's declared fault population and operator
    //    response time. `bootstrapped_bounded` is the paper's pipeline
    //    (RA-Bound → belief-sampled bootstrap → depth-1 controller);
    //    the schedule scales with the model — Table 1's 10 × depth-2
    //    bootstrap at paper scale, a single depth-1 pass on the
    //    10³+-state corpus where depth-2 backups grow with |A| · |O|.
    let faults = scenario.fault_population(&model);
    let (iters, depth) = if model.base().n_states() > 32 {
        // Depth-2 backups grow with |A| · |O| per level; past paper
        // scale a single depth-1 pass keeps the tour interactive.
        (1, 1)
    } else {
        (10, 2)
    };
    // The aggressive 1e-3 γ-cutoff is only needed where tree width
    // hurts (the 10³+-state corpus); on smaller models it can drop
    // enough observation mass to inflate the observe branch and stall
    // the controller in a watch loop (cellfleet-shared-rack's aliased
    // replicas hit exactly this), so stay at the reference 1e-6 there.
    let cutoff = if model.base().n_states() > 256 {
        1e-3
    } else {
        1e-6
    };
    let mut controller = bpr_bench::experiments::bootstrapped_bounded(
        &model,
        scenario.operator_response_time(),
        7,
        cutoff,
        iters,
        depth,
    )?;
    let mut rng = StdRng::seed_from_u64(7);
    // The first fault: for the generated corpus that is a plain crash,
    // the directly observable case. The harder regimes — zombies,
    // partitions, degraded monitors — are the robustness bench's
    // domain (`--bin robustness --scenario <name>`).
    let fault = faults[0];
    println!("injecting: {}", model.base().mdp().state_label(fault));
    let outcome = EpisodeRunner::new(&model).run_with_rng(&mut controller, fault, &mut rng)?;
    println!(
        "recovered: {}, actions: {}, monitor calls: {}, cost: {:.2}",
        outcome.recovered, outcome.actions, outcome.monitor_calls, outcome.cost
    );
    assert!(outcome.recovered && outcome.terminated);
    Ok(())
}
