//! Building a recovery model for your own system from scratch: a
//! two-replica key-value store with a flaky cache, demonstrating the
//! full modelling workflow — MDP dynamics, observation model, recovery
//! conditions, transforms, bounds, and a comparison of all controllers.
//!
//! Run with: `cargo run -p bpr-bench --example custom_model`

use bpr::prelude::*;

/// States: 0 = Null, 1 = CacheWedged, 2 = ReplicaDown.
/// Actions: 0 = FlushCache (10 s), 1 = RestartReplica (60 s),
///          2 = Probe (1 s).
/// Observations: 0 = ok, 1 = slow, 2 = errors.
fn kv_store_model() -> Result<RecoveryModel, Box<dyn std::error::Error>> {
    let mut mb = MdpBuilder::new(3, 3);
    mb.state_label(0, "Null")
        .state_label(1, "CacheWedged")
        .state_label(2, "ReplicaDown");
    mb.action_label(0, "FlushCache")
        .action_label(1, "RestartReplica")
        .action_label(2, "Probe");
    mb.duration(0, 10.0).duration(1, 60.0).duration(2, 1.0);

    // A wedged cache slows 30% of requests; a downed replica fails 50%.
    // Costs are (drop fraction during the action) x duration; flushing
    // the cache takes the cache offline (all requests slow), restarting
    // the replica keeps the system at 50%.
    mb.transition(0, 0, 0, 1.0).reward(0, 0, -0.3 * 10.0);
    mb.transition(1, 0, 0, 1.0).reward(1, 0, -0.5 * 10.0);
    mb.transition(2, 0, 2, 1.0).reward(2, 0, -0.6 * 10.0);
    mb.transition(0, 1, 0, 1.0).reward(0, 1, -0.5 * 60.0);
    mb.transition(1, 1, 1, 1.0).reward(1, 1, -0.6 * 60.0);
    mb.transition(2, 1, 0, 1.0).reward(2, 1, -0.5 * 60.0);
    for s in 0..3 {
        mb.transition(s, 2, s, 1.0);
    }
    mb.reward(0, 2, 0.0)
        .reward(1, 2, -0.3 * 1.0)
        .reward(2, 2, -0.5 * 1.0);

    let mut pb = PomdpBuilder::new(mb.build()?, 3);
    pb.observation_label(0, "ok")
        .observation_label(1, "slow")
        .observation_label(2, "errors");
    for a in 0..3 {
        pb.observation(0, a, 0, 0.9)
            .observation(0, a, 1, 0.08)
            .observation(0, a, 2, 0.02);
        pb.observation(1, a, 0, 0.15)
            .observation(1, a, 1, 0.75)
            .observation(1, a, 2, 0.10);
        pb.observation(2, a, 0, 0.10)
            .observation(2, a, 1, 0.20)
            .observation(2, a, 2, 0.70);
    }
    // Idle cost rates: what the system bleeds per second in each state.
    Ok(RecoveryModel::new(
        pb.build()?,
        vec![StateId::new(0)],
        vec![0.0, -0.3, -0.5],
        vec![ActionId::new(2)],
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = kv_store_model()?;
    println!("custom model validated: conditions 1 & 2 hold\n");

    let faults = [StateId::new(1), StateId::new(2)];
    let episodes = 200;
    // Every controller gets the identical campaign session: same fault
    // sequence, same per-episode seed streams, fanned across whatever
    // the hardware offers (results are thread-count independent).
    let campaign = Campaign::new(&model)
        .population(&faults)
        .episodes(episodes)
        .seed(1)
        .threads(WorkPool::default().threads());
    println!("{}", CampaignSummary::table_header());

    // Baselines.
    let summary = campaign
        .clone()
        .run(|_| MostLikelyController::new(model.clone(), 0.999))?
        .summary;
    println!("{}", summary.table_row());

    let summary = campaign
        .clone()
        .run(|_| HeuristicController::new(model.clone(), 2, 0.999))?
        .summary;
    println!("{}", summary.table_row());

    // The bounded controller, with a 15-minute operator response time.
    // Constructing it solves the RA-Bound once; each episode then clones
    // the prototype, which is cheap.
    let transformed = model.without_notification(900.0)?;
    let bounded = BoundedController::new(transformed, BoundedConfig::default())?;
    let summary = campaign.clone().run(|_| Ok(bounded.clone()))?.summary;
    println!("{}", summary.table_row());
    let bounded_cost = summary.mean_cost;
    assert_eq!(summary.unrecovered, 0, "bounded quit before recovery");

    let summary = campaign
        .clone()
        .run(|_| Ok(OracleController::new(model.clone())))?
        .summary;
    println!("{}", summary.table_row());
    println!(
        "\nbounded controller cost is {:.1}x the oracle's ideal",
        bounded_cost / summary.mean_cost
    );
    let _ = bounded.name();
    Ok(())
}
