//! Watching the RA-Bound tighten: starts from the single RA hyperplane
//! on the EMN model and applies bootstrapped incremental backups,
//! printing the bound value at several beliefs after each iteration —
//! a miniature of the paper's Figure 5 with visibility into individual
//! beliefs.
//!
//! Run with: `cargo run -p bpr-bench --example bound_improvement --release`

use bpr::emn::actions::EmnAction;
use bpr::emn::faults::EmnState;
use bpr::emn::topology::Component;
use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EmnConfig::default();
    let model = bpr::emn::build_model(&config)?;
    let transformed = model.without_notification(config.operator_response_time)?;
    let pomdp = transformed.pomdp();
    let n = pomdp.n_states();

    // Probe beliefs: total uncertainty, a suspected server-1 zombie,
    // and a suspected database fault.
    let uniform = Belief::uniform_over(n, &(0..n - 1).map(StateId::new).collect::<Vec<_>>());
    let s1z = Belief::point(n, EmnState::Zombie(Component::Server1).state_id());
    let dbz = Belief::point(n, EmnState::Zombie(Component::Database).state_id());

    let mut bound = ra_bound(pomdp, &SolveOpts::default())?;
    let upper = qmdp_bound(pomdp, bpr::mdp::value_iteration::Discount::Undiscounted)?;
    println!(
        "QMDP upper bound (cost can never be below): uniform {:.0}, S1-zombie {:.0}, DB-zombie {:.0}\n",
        -upper.value(&uniform),
        -upper.value(&s1z),
        -upper.value(&dbz)
    );
    println!(
        "{:<10} {:>9} {:>16} {:>16} {:>16}",
        "iteration", "vectors", "cost@uniform", "cost@S1-zombie", "cost@DB-zombie"
    );
    println!(
        "{:<10} {:>9} {:>16.0} {:>16.0} {:>16.0}",
        0,
        bound.len(),
        -bound.value(&uniform),
        -bound.value(&s1z),
        -bound.value(&dbz)
    );

    let mut rng = StdRng::seed_from_u64(5);
    for iteration in 1..=15 {
        bootstrap(
            &transformed,
            &mut bound,
            &BootstrapConfig {
                variant: BootstrapVariant::Average,
                iterations: 1,
                depth: 1,
                max_steps: 40,
                conditioning_action: EmnAction::Observe.action_id(),
                ..BootstrapConfig::default()
            },
            &mut rng,
        )?;
        println!(
            "{:<10} {:>9} {:>16.0} {:>16.0} {:>16.0}",
            iteration,
            bound.len(),
            -bound.value(&uniform),
            -bound.value(&s1z),
            -bound.value(&dbz)
        );
    }
    println!("\nupper bounds on cost tighten monotonically; the QMDP line is the floor");
    Ok(())
}
