//! Quickstart: automatic recovery on the paper's two-server example
//! (Figure 1a) with the bounded controller.
//!
//! Run with: `cargo run -p bpr-bench --example quickstart`

use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the system as a recovery model: two redundant servers,
    //    noisy monitors, restart actions. Conditions 1 and 2 of the
    //    paper are validated at construction.
    let model = two_server::default_model()?;
    println!(
        "model: {} states, {} actions, {} observations",
        model.base().n_states(),
        model.base().n_actions(),
        model.base().n_observations()
    );

    // 2. The system cannot tell for certain when it has recovered, so
    //    apply the "without recovery notification" transform: this adds
    //    the terminate action a_T whose reward encodes how expensive it
    //    is to hand an unresolved fault to a human operator.
    let operator_response_time = 50.0; // time units
    let transformed = model.without_notification(operator_response_time)?;

    // 3. Build the bounded controller. It computes the RA-Bound (a
    //    provable lower bound on the POMDP value function) and uses it
    //    at the leaves of a depth-1 Max-Avg expansion.
    let mut controller = BoundedController::new(transformed, BoundedConfig::default())?;
    println!(
        "initial RA-Bound at uniform belief: {:.3}",
        ValueBound::value(
            controller.bound(),
            &Belief::uniform(model.base().n_states() + 1)
        )
    );

    // 4. Simulate a fault: server b silently fails. The controller only
    //    sees monitor outputs, never the true state.
    let mut rng = StdRng::seed_from_u64(42);
    let true_fault = StateId::new(two_server::FAULT_B);
    let mut world = World::new(&model, true_fault)?;
    let detection = world.observe_in_place(&mut rng)?;
    println!(
        "fault injected: {} (controller sees only: {})",
        model.base().mdp().state_label(true_fault),
        model.base().observation_label(detection)
    );

    // 5. Recovery loop: decide -> execute -> observe, until the
    //    controller itself decides that terminating beats continuing.
    let faults = model.fault_states();
    let prior = Belief::uniform_over(model.base().n_states(), &faults);
    let (initial, _) = prior.update(model.base(), 2.into(), detection)?;
    controller.begin(initial, None)?;

    let mut total_cost = 0.0;
    for step in 1.. {
        match controller.decide()? {
            Step::Terminate => {
                println!("step {step}: controller terminates recovery");
                break;
            }
            Step::Execute(a) => {
                // `.max(0.0)` collapses IEEE negative zero for display.
                let cost = (-model.base().mdp().reward(world.state(), a)).max(0.0);
                total_cost += cost;
                let (state, obs) = world.step(&mut rng, a);
                println!(
                    "step {step}: {} (cost {:.2}) -> world now {}, monitors say {}",
                    model.base().mdp().action_label(a),
                    cost,
                    model.base().mdp().state_label(state),
                    model.base().observation_label(obs)
                );
                controller.observe(a, obs)?;
            }
        }
    }
    println!(
        "recovered: {}, total cost: {:.2}, bound vectors learned: {}",
        world.is_recovered(),
        total_cost,
        controller.bound().len()
    );
    assert!(world.is_recovered(), "controller quit before recovery");
    Ok(())
}
