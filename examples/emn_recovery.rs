//! A verbose single-fault recovery episode on the full EMN e-commerce
//! model: a zombie EMN server is injected, and the bootstrapped bounded
//! controller localises and repairs it from imprecise path-monitor
//! evidence.
//!
//! Run with: `cargo run -p bpr-bench --example emn_recovery --release`

use bpr::emn::actions::EmnAction;
use bpr::emn::faults::EmnState;
use bpr::emn::topology::Component;
use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EmnConfig::default();
    let model = bpr::emn::build_model(&config)?;
    let transformed = model.without_notification(config.operator_response_time)?;
    let mut rng = StdRng::seed_from_u64(2024);

    // Bootstrap the bound exactly as in the paper's Table 1 run: 10
    // episodes at tree depth 2, "Average" variant.
    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default())?;
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 10,
            depth: 2,
            max_steps: 40,
            conditioning_action: EmnAction::Observe.action_id(),
            ..BootstrapConfig::default()
        },
        &mut rng,
    )?;
    println!("bootstrapped bound: {} hyperplanes", bound.len());

    let mut controller = BoundedController::with_bound(
        transformed,
        bound,
        BoundedConfig {
            depth: 1,
            gamma_cutoff: 1e-3,
            ..BoundedConfig::default()
        },
    )?;

    // Inject a zombie into EMN server 1: it still answers pings, so
    // only the 50/50-routed path monitors can catch it.
    let fault = EmnState::Zombie(Component::Server1);
    let mut world = World::new(&model, fault.state_id())?;
    println!("injected: {fault} (invisible to ping monitors)");

    let detection = world.observe_in_place(&mut rng)?;
    println!(
        "detection observation: {}",
        model.base().observation_label(detection)
    );
    let faults = model.fault_states();
    let prior = Belief::uniform_over(model.base().n_states(), &faults);
    let initial = prior
        .update(model.base(), EmnAction::Observe.action_id(), detection)
        .map(|(b, _)| b)
        .unwrap_or(prior);
    controller.begin(initial, None)?;

    let mut wall = 0.0;
    let mut cost = 0.0;
    for step in 1..=100 {
        match controller.decide()? {
            Step::Terminate => {
                println!("[{wall:>7.1}s] controller terminates");
                break;
            }
            Step::Execute(a) => {
                cost += -model.base().mdp().reward(world.state(), a);
                wall += model.base().mdp().duration(a);
                let (state, obs) = world.step(&mut rng, a);
                let belief = controller.belief().expect("controller tracks a belief");
                let (ml, p) = belief.most_likely();
                println!(
                    "[{wall:>7.1}s] step {step}: {:<12} -> world {:<12} monitors [{}] belief peak {} ({:.2})",
                    model.base().mdp().action_label(a),
                    model.base().mdp().state_label(state),
                    model.base().observation_label(obs),
                    model.base().mdp().state_label(ml),
                    p
                );
                controller.observe(a, obs)?;
            }
        }
    }
    println!(
        "recovered: {} | requests dropped (cost): {:.1} | wall clock: {:.1}s",
        world.is_recovered(),
        cost,
        wall
    );
    assert!(world.is_recovered());
    Ok(())
}
