//! Generates the "if-then recovery rules" implied by the bounded
//! controller on the EMN model — the artifact the paper's introduction
//! says system designers write by hand, produced automatically and
//! reviewable before deployment.
//!
//! Run with: `cargo run -p bpr-bench --example rules_preview --release`

use bpr::core::preview::{preview, render, PreviewOpts};
use bpr::emn::actions::EmnAction;
use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EmnConfig::default();
    let model = bpr::emn::build_model(&config)?;
    let transformed = model.without_notification(config.operator_response_time)?;

    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default())?;
    let mut rng = StdRng::seed_from_u64(7);
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 10,
            depth: 2,
            max_steps: 40,
            conditioning_action: EmnAction::Observe.action_id(),
            ..BootstrapConfig::default()
        },
        &mut rng,
    )?;

    // The detection-time belief: all faults equally likely.
    let initial = Belief::uniform_over(model.base().n_states(), &model.fault_states());
    let rows = preview(
        &transformed,
        &bound,
        &initial,
        &PreviewOpts {
            horizon: 3,
            max_rows: 40,
            ..PreviewOpts::default()
        },
    )?;
    println!(
        "# {} rules generated from the bounded controller (horizon 3):\n",
        rows.len()
    );
    print!("{}", render(&transformed, &rows, 3));
    println!("\n# indentation = decision depth; p = probability of reaching the belief");
    Ok(())
}
