//! How precise are the EMN monitors? Quantifies the paper's premise
//! that "one may never know for certain which faults have occurred":
//! pairwise confusability of the 14 states under the monitor sweep,
//! and how the path-probe routing model changes it.
//!
//! Run with: `cargo run -p bpr-bench --example diagnosability`

use bpr::emn::actions::EmnAction;
use bpr::emn::faults::EmnState;
use bpr::pomdp::diagnosis::{confusion_matrix, sweeps_to_separate};
use bpr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for routing in [PathRouting::RandomPerProbe, PathRouting::FixedDisjoint] {
        let config = EmnConfig {
            path_routing: routing,
            ..EmnConfig::default()
        };
        let model = bpr::emn::build_model(&config)?;
        let observe = EmnAction::Observe.action_id();
        let confusion = confusion_matrix(model.base(), observe)?;

        println!("=== path routing: {routing:?} ===");
        println!("most confusable state pairs (total-variation distance of monitor outputs):");
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for (i, row) in confusion.iter().enumerate() {
            for (j, &tv) in row.iter().enumerate().skip(i + 1) {
                pairs.push((i, j, tv));
            }
        }
        pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances"));
        for (i, j, tv) in pairs.iter().take(6) {
            println!(
                "  {:<12} vs {:<12} TV = {:.4}{}",
                EmnState::from_index(*i).to_string(),
                EmnState::from_index(*j).to_string(),
                tv,
                if *tv < 1e-12 {
                    "  <- observation clones: only recovery actions separate them"
                } else {
                    ""
                }
            );
        }

        println!("monitor sweeps to reach 99.99% confidence against the null hypothesis:");
        for fault in EmnState::zombies() {
            let sweeps = sweeps_to_separate(
                model.base(),
                fault.state_id(),
                EmnState::Null.state_id(),
                observe,
                0.9999,
            );
            println!("  {:<12} ~{sweeps:.1} sweeps", fault.to_string());
        }
        println!();
    }
    println!("note: crashes separate instantly (component monitors see them);");
    println!("zombies need path evidence, and under blind 50/50 routing the two");
    println!("server zombies are indistinguishable without acting — the core");
    println!("reason diagnose-then-fix underperforms decision-theoretic recovery.");
    Ok(())
}
