//! Property tests for the degraded-world robustness extension:
//!
//! * A zero-perturbation `PerturbationPlan` must be *invisible* —
//!   episodes against a `DegradedWorld` reproduce plain-`World`
//!   episodes bit-for-bit under the same RNG seed.
//! * The hardened `ResilientController` must terminate within its own
//!   budget on randomized models no matter how unreliable the world is
//!   (action failures up to 0.5, monitor dropout up to 0.3).
//! * On the EMN model at action-failure 0.2 / monitor-dropout 0.1 the
//!   hardened controller recovers ≥99% of zombie faults while the
//!   unhardened bounded controller demonstrably degrades.

use bpr_bench::experiments::{robustness_sweep_for, RobustnessConfig};
use bpr_core::{
    BoundedConfig, BoundedController, RecoveryModel, ResilienceConfig, ResilientController,
};
use bpr_emn::two_server;
use bpr_emn::EmnScenario;
use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::PomdpBuilder;
use bpr_sim::{EpisodeOutcome, EpisodeRunner, HarnessConfig, PerturbationPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a random recovery model (same family as
/// `random_model_properties.rs`, which cannot be shared across test
/// binaries): `n_faults` fault states, one dedicated fixing action per
/// fault plus an observe action, and a noisy observation channel.
#[derive(Debug, Clone)]
struct RandomModelSpec {
    n_faults: usize,
    accuracy: f64,
    fix_costs: Vec<f64>,
    wrong_cost: f64,
    observe_cost: f64,
}

fn arb_spec() -> impl Strategy<Value = RandomModelSpec> {
    (1usize..=4)
        .prop_flat_map(|n_faults| {
            (
                Just(n_faults),
                0.5f64..0.95,
                proptest::collection::vec(0.2f64..2.0, n_faults),
                0.2f64..2.0,
                0.05f64..1.0,
            )
        })
        .prop_map(
            |(n_faults, accuracy, fix_costs, wrong_cost, observe_cost)| RandomModelSpec {
                n_faults,
                accuracy,
                fix_costs,
                wrong_cost,
                observe_cost,
            },
        )
}

fn build(spec: &RandomModelSpec) -> RecoveryModel {
    let n = spec.n_faults + 1; // state 0 = null
    let na = spec.n_faults + 1; // action i fixes fault i+1; last = observe
    let observe = na - 1;
    let mut mb = MdpBuilder::new(n, na);
    for a in 0..na {
        for s in 0..n {
            if s == 0 {
                mb.transition(s, a, 0, 1.0);
                mb.reward(s, a, if a == observe { 0.0 } else { -spec.wrong_cost });
            } else if a + 1 == s {
                mb.transition(s, a, 0, 1.0)
                    .reward(s, a, -spec.fix_costs[s - 1]);
            } else {
                mb.transition(s, a, s, 1.0).reward(
                    s,
                    a,
                    if a == observe {
                        -spec.observe_cost
                    } else {
                        -spec.wrong_cost
                    },
                );
            }
        }
    }
    let no = spec.n_faults + 1;
    let mut pb = PomdpBuilder::new(mb.build().expect("random model builds"), no);
    for s in 0..n {
        let truth = if s == 0 { no - 1 } else { s - 1 };
        let spread = (1.0 - spec.accuracy) / (no - 1) as f64;
        for o in 0..no {
            let q = if o == truth { spec.accuracy } else { spread };
            pb.observation_all_actions(s, o, q);
        }
    }
    let mut rates = vec![-1.0; n];
    rates[0] = 0.0;
    RecoveryModel::new(
        pb.build().expect("observations build"),
        vec![StateId::new(0)],
        rates,
        vec![ActionId::new(observe)],
    )
    .expect("random model satisfies the recovery conditions")
}

/// Strips the one nondeterministic field (host compute time).
fn comparable(o: &EpisodeOutcome) -> EpisodeOutcome {
    let mut o = o.clone();
    o.algorithm_time = 0.0;
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A zero plan must leave the episode RNG stream untouched: the
    /// degraded harness reproduces the plain harness bit-for-bit.
    #[test]
    fn zero_plan_is_trace_equivalent_on_random_models(
        spec in arb_spec(),
        top in 2.0f64..100.0,
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        fault_pick in 0usize..4,
    ) {
        let model = build(&spec);
        let mut c1 = BoundedController::new(
            model.without_notification(top).expect("transform"),
            BoundedConfig::default(),
        )
        .expect("controller builds");
        let mut c2 = BoundedController::new(
            model.without_notification(top).expect("transform"),
            BoundedConfig::default(),
        )
        .expect("controller builds");
        let fault = StateId::new(1 + fault_pick % spec.n_faults);
        let config = HarnessConfig { max_steps: 200 };
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let (o1, t1) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut c1, fault, &mut rng1)
            .expect("plain episode");
        let plan = PerturbationPlan { seed: plan_seed, ..PerturbationPlan::none() };
        let (o2, t2) = EpisodeRunner::new(&model)
            .config(&config)
            .degraded(&plan)
            .run_traced_with_rng(&mut c2, fault, &mut rng2)
            .expect("degraded episode");
        prop_assert_eq!(comparable(&o1), comparable(&o2));
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(o2.perturbations.total(), 0);
    }

    /// Hard budgets hold no matter how hostile the world: the hardened
    /// controller always reaches its own Terminate decision (the
    /// harness cap sits *above* the controller budget, so termination
    /// cannot come from the harness cut-off).
    #[test]
    fn resilient_controller_terminates_on_degraded_random_models(
        spec in arb_spec(),
        top in 2.0f64..100.0,
        seed in 0u64..1000,
        failure in 0.0f64..0.5,
        dropout in 0.0f64..0.3,
        fault_pick in 0usize..4,
    ) {
        let model = build(&spec);
        let inner = BoundedController::new(
            model.without_notification(top).expect("transform"),
            BoundedConfig::default(),
        )
        .expect("controller builds");
        let mut c = ResilientController::new(
            model.clone(),
            inner,
            ResilienceConfig { max_steps: 120, ..ResilienceConfig::default() },
        )
        .expect("resilient wrapper builds");
        let fault = StateId::new(1 + fault_pick % spec.n_faults);
        let plan = PerturbationPlan {
            seed: seed ^ 0xDEAD_BEEF,
            action_failure_prob: failure,
            monitor_dropout_prob: dropout,
            ..PerturbationPlan::none()
        };
        let config = HarnessConfig { max_steps: 200 };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = EpisodeRunner::new(&model)
            .config(&config)
            .degraded(&plan)
            .run_with_rng(&mut c, fault, &mut rng)
            .expect("hardened episodes never abort");
        prop_assert!(out.terminated, "controller exceeded its own step budget");
    }
}

/// Spot check of the equivalence property on the paper's own
/// hand-built model rather than a random one.
#[test]
fn zero_plan_is_trace_equivalent_on_two_server() {
    let model = two_server::default_model().unwrap();
    for seed in 0..20u64 {
        let mut c1 = BoundedController::new(
            model.without_notification(50.0).unwrap(),
            BoundedConfig::default(),
        )
        .unwrap();
        let mut c2 = BoundedController::new(
            model.without_notification(50.0).unwrap(),
            BoundedConfig::default(),
        )
        .unwrap();
        let fault = StateId::new(if seed % 2 == 0 {
            two_server::FAULT_A
        } else {
            two_server::FAULT_B
        });
        let config = HarnessConfig::default();
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let (o1, t1) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut c1, fault, &mut rng1)
            .unwrap();
        let plan = PerturbationPlan {
            seed: seed.wrapping_mul(31),
            ..PerturbationPlan::none()
        };
        let (o2, t2) = EpisodeRunner::new(&model)
            .config(&config)
            .degraded(&plan)
            .run_traced_with_rng(&mut c2, fault, &mut rng2)
            .unwrap();
        assert_eq!(comparable(&o1), comparable(&o2), "seed {seed}");
        assert_eq!(t1, t2, "seed {seed}");
    }
}

/// The acceptance bar of the robustness extension: at action-failure
/// 0.2 and monitor-dropout 0.1 on EMN zombies, the hardened controller
/// recovers ≥99% of faults within budget, while the unhardened bounded
/// controller demonstrably degrades (stalled diagnoses ending in wrong
/// terminations, aborts, or step-cap cut-offs).
#[test]
fn resilient_controller_clears_the_emn_acceptance_bar() {
    let cells = robustness_sweep_for(
        &EmnScenario::default(),
        &RobustnessConfig {
            episodes: 60,
            seed: 7,
            failure_probs: vec![0.2],
            dropout_probs: vec![0.1],
            ..RobustnessConfig::default()
        },
    )
    .unwrap();
    assert_eq!(cells.len(), 1);
    let cell = &cells[0];
    let find = |name: &str| {
        cell.rows
            .iter()
            .find(|r| r.summary.controller == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };

    let hardened = find("resilient-bounded-d1");
    assert!(
        hardened.summary.recovery_rate() >= 0.99,
        "hardened recovery rate {:.3} below 99%",
        hardened.summary.recovery_rate()
    );
    assert_eq!(hardened.summary.unterminated, 0, "hardened blew its budget");
    assert_eq!(hardened.aborted, 0, "hardened controller aborted");
    assert!(
        hardened.summary.mean_retries > 0.0 || hardened.summary.mean_escalations > 0.0,
        "no hardening activity recorded"
    );

    let plain = find("bounded-d1");
    let failures = plain.summary.unrecovered + plain.summary.unterminated + plain.aborted;
    assert!(
        failures * 20 >= plain.summary.episodes,
        "unhardened bounded controller unexpectedly robust: only {failures}/{} failures",
        plain.summary.episodes
    );
}

/// Degenerate sweeps stay well-formed: at the zero grid point the
/// degraded harness equals the plain one, so every controller recovers
/// everything and no perturbations are counted.
#[test]
fn sweep_zero_cell_recovers_everything() {
    let cells = robustness_sweep_for(
        &EmnScenario::default(),
        &RobustnessConfig {
            episodes: 10,
            seed: 7,
            failure_probs: vec![0.0],
            dropout_probs: vec![0.0],
            ..RobustnessConfig::default()
        },
    )
    .unwrap();
    for row in &cells[0].rows {
        assert_eq!(row.summary.unrecovered, 0, "{}", row.summary.controller);
        assert_eq!(row.summary.unterminated, 0, "{}", row.summary.controller);
        assert_eq!(row.aborted, 0, "{}", row.summary.controller);
        assert_eq!(
            row.summary.mean_perturbations, 0.0,
            "{}",
            row.summary.controller
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `DegradedWorld` perturbations never produce an error-severity
    /// lint: the plan degrades the world *contract*, not the model, so
    /// the construction-time lint gate passes before the episode and
    /// the model re-lints clean after any number of degraded steps.
    #[test]
    fn degraded_episodes_never_dirty_the_model_lints(
        spec in arb_spec(),
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        action_failure in 0.0f64..1.0,
        dropout in 0.0f64..1.0,
        corruption in 0.0f64..1.0,
        secondary in 0.0f64..1.0,
        fault_pick in 0usize..4,
    ) {
        use bpr_core::lint::{lint_pomdp, Severity};
        use bpr_sim::{DegradedWorld, SimWorld};

        let model = build(&spec);
        let plan = PerturbationPlan {
            seed: plan_seed,
            action_failure_prob: action_failure,
            monitor_dropout_prob: dropout,
            obs_corruption_prob: corruption,
            secondary_fault_prob: secondary,
            max_secondary_faults: 3,
            secondary_faults: Vec::new(),
        };
        let fault = StateId::new(1 + fault_pick % spec.n_faults);
        // The lint gate must accept the model (no Error::Lint) for any
        // valid plan...
        let mut world = DegradedWorld::new(&model, fault, plan).expect("lint gate passes");
        prop_assert!(world
            .lint_warnings()
            .iter()
            .all(|d| d.severity < Severity::Error));
        // ...and stay clean across a fully degraded episode.
        let mut rng = StdRng::seed_from_u64(seed);
        for step in 0..40 {
            let action = ActionId::new(step % (spec.n_faults + 1));
            let _ = world.step_world(&mut rng, action);
        }
        let report = lint_pomdp(model.base(), &model.lint_context().full());
        prop_assert!(!report.has_errors(), "{}", report.render());
    }
}
