//! Property-based tests over *randomly generated* recovery models:
//! the paper's guarantees must hold for every model satisfying
//! Conditions 1–2, not just the EMN case study.

use bpr_core::{BoundedConfig, BoundedController, RecoveryController, RecoveryModel, Step};
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::value_iteration::Discount;
use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{qmdp_bound, ra_bound, ValueBound};
use bpr_pomdp::{tree, Belief, PomdpBuilder};
use bpr_sim::World;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a random recovery model: `n_faults` fault states (the
/// null state is state 0), one dedicated fixing action per fault plus
/// an observe action, and a noisy per-fault observation channel.
#[derive(Debug, Clone)]
struct RandomModelSpec {
    n_faults: usize,
    accuracy: f64,
    fix_costs: Vec<f64>,
    wrong_cost: f64,
    observe_cost: f64,
}

fn arb_spec() -> impl Strategy<Value = RandomModelSpec> {
    (1usize..=4)
        .prop_flat_map(|n_faults| {
            (
                Just(n_faults),
                0.5f64..0.95,
                proptest::collection::vec(0.2f64..2.0, n_faults),
                0.2f64..2.0,
                0.05f64..1.0,
            )
        })
        .prop_map(
            |(n_faults, accuracy, fix_costs, wrong_cost, observe_cost)| RandomModelSpec {
                n_faults,
                accuracy,
                fix_costs,
                wrong_cost,
                observe_cost,
            },
        )
}

fn build(spec: &RandomModelSpec) -> RecoveryModel {
    let n = spec.n_faults + 1; // state 0 = null
    let na = spec.n_faults + 1; // action i fixes fault i+1; last = observe
    let observe = na - 1;
    let mut mb = MdpBuilder::new(n, na);
    for a in 0..na {
        for s in 0..n {
            if s == 0 {
                // Null state: everything self-loops; recovery actions
                // still cost (no recovery notification), observing is
                // free.
                mb.transition(s, a, 0, 1.0);
                mb.reward(s, a, if a == observe { 0.0 } else { -spec.wrong_cost });
            } else if a + 1 == s {
                mb.transition(s, a, 0, 1.0)
                    .reward(s, a, -spec.fix_costs[s - 1]);
            } else {
                mb.transition(s, a, s, 1.0).reward(
                    s,
                    a,
                    if a == observe {
                        -spec.observe_cost
                    } else {
                        -spec.wrong_cost
                    },
                );
            }
        }
    }
    // Observations: one per fault plus "all clear". Noisy channel with
    // the remaining mass spread over the other signals.
    let no = spec.n_faults + 1;
    let mut pb = PomdpBuilder::new(mb.build().expect("random model builds"), no);
    for s in 0..n {
        let truth = if s == 0 { no - 1 } else { s - 1 }; // obs index for state
        let spread = (1.0 - spec.accuracy) / (no - 1) as f64;
        for o in 0..no {
            let q = if o == truth { spec.accuracy } else { spread };
            pb.observation_all_actions(s, o, q);
        }
    }
    let mut rates = vec![-1.0; n];
    rates[0] = 0.0;
    RecoveryModel::new(
        pb.build().expect("observations build"),
        vec![StateId::new(0)],
        rates,
        vec![ActionId::new(observe)],
    )
    .expect("random model satisfies the recovery conditions")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ra_bound_exists_and_sits_below_qmdp(spec in arb_spec(), top in 1.0f64..50.0) {
        let model = build(&spec);
        let t = model.without_notification(top).expect("transform");
        let ra = ra_bound(t.pomdp(), &SolveOpts::default()).expect("RA-Bound exists");
        let upper = qmdp_bound(t.pomdp(), Discount::Undiscounted).expect("QMDP exists");
        let n = t.pomdp().n_states();
        let mut beliefs = vec![Belief::uniform(n)];
        for s in 0..n {
            beliefs.push(Belief::point(n, StateId::new(s)));
        }
        for b in beliefs {
            let lo = ra.value(&b);
            let hi = upper.value(&b);
            prop_assert!(lo.is_finite());
            prop_assert!(lo <= hi + 1e-7, "RA {lo} above QMDP {hi}");
            prop_assert!(hi <= 1e-9);
        }
    }

    #[test]
    fn backups_improve_monotonically_and_stay_valid(spec in arb_spec(), top in 1.0f64..50.0) {
        let model = build(&spec);
        let t = model.without_notification(top).expect("transform");
        let pomdp = t.pomdp();
        let mut set = ra_bound(pomdp, &SolveOpts::default()).expect("RA-Bound exists");
        let upper = qmdp_bound(pomdp, Discount::Undiscounted).expect("QMDP exists");
        let b = Belief::uniform(pomdp.n_states());
        let mut prev = set.value(&b);
        for _ in 0..8 {
            let out = incremental_backup(pomdp, &mut set, &b, 1.0).expect("backup");
            prop_assert!(out.value_after + 1e-9 >= prev, "bound regressed");
            prev = out.value_after;
        }
        prop_assert!(prev <= upper.value(&b) + 1e-7, "bound crossed QMDP");
    }

    #[test]
    fn property_1b_holds_for_the_ra_bound(spec in arb_spec(), top in 1.0f64..50.0) {
        let model = build(&spec);
        let t = model.without_notification(top).expect("transform");
        let pomdp = t.pomdp();
        let ra = ra_bound(pomdp, &SolveOpts::default()).expect("RA-Bound exists");
        let n = pomdp.n_states();
        for s in 0..n {
            let b = Belief::point(n, StateId::new(s));
            let v = ra.value(&b);
            let lp = tree::expand(pomdp, &b, 1, &ra, 1.0).expect("expand").value;
            prop_assert!(v <= lp + 1e-7, "V_B > L_p V_B at vertex {s}");
        }
        let b = Belief::uniform(n);
        let v = ra.value(&b);
        let lp = tree::expand(pomdp, &b, 1, &ra, 1.0).expect("expand").value;
        prop_assert!(v <= lp + 1e-7);
    }

    #[test]
    fn bounded_controller_terminates_on_random_models(
        spec in arb_spec(),
        top in 2.0f64..100.0,
        seed in 0u64..1000,
        fault_pick in 0usize..4,
    ) {
        let model = build(&spec);
        let t = model.without_notification(top).expect("transform");
        let mut controller =
            BoundedController::new(t, BoundedConfig::default()).expect("controller builds");
        let fault = StateId::new(1 + fault_pick % spec.n_faults);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut world = World::new(&model, fault).expect("world builds");
        let faults: Vec<_> = (1..=spec.n_faults).map(StateId::new).collect();
        controller
            .begin(Belief::uniform_over(model.base().n_states(), &faults), None)
            .expect("begin");
        let mut steps = 0usize;
        loop {
            steps += 1;
            // Property 1: termination within a finite number of actions.
            prop_assert!(steps <= 300, "controller did not terminate");
            match controller.decide().expect("decide") {
                Step::Terminate => break,
                Step::Execute(a) => {
                    let (_, obs) = world.step(&mut rng, a);
                    controller.observe(a, obs).expect("observe");
                }
            }
        }
    }

    #[test]
    fn belief_stays_on_the_simplex_through_random_trajectories(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        let model = build(&spec);
        let pomdp = model.base();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut belief = Belief::uniform(pomdp.n_states());
        let mut state = StateId::new(1.min(pomdp.n_states() - 1));
        for step in 0..50 {
            let a = ActionId::new(step % pomdp.n_actions());
            let next = pomdp.sample_transition(&mut rng, state, a);
            let obs = pomdp.sample_observation(&mut rng, next, a);
            state = next;
            let (b, gamma) = belief.update(pomdp, a, obs).expect("possible observation");
            prop_assert!(gamma > 0.0 && gamma <= 1.0 + 1e-12);
            let sum: f64 = b.probs().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(b.probs().iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
            belief = b;
        }
    }
}
