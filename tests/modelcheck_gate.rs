//! Integration tests for the `modelcheck` static-analysis gate: the
//! paper's models must lint clean at error severity, the deliberately
//! broken fixture must not, and the shipped binary must exit zero /
//! non-zero accordingly while emitting the JSON bundle with the full
//! lint catalog.

use bpr_bench::modelcheck::{broken_fixture, bundle_json, lint_paper_models};
use bpr_core::lint::Severity;
use std::process::Command;

#[test]
fn paper_models_pass_the_gate() {
    let reports = lint_paper_models().unwrap();
    assert_eq!(reports.len(), 6, "raw + two transforms, two models");
    for r in &reports {
        assert!(!r.has_errors(), "{}", r.render());
    }
    // The raw stages must still report the divergence the transforms
    // exist to repair — as info, not error.
    let raw_reports: Vec<_> = reports
        .iter()
        .filter(|r| r.model().ends_with("(raw)"))
        .collect();
    assert_eq!(raw_reports.len(), 2);
    for r in raw_reports {
        assert!(
            r.diagnostics()
                .iter()
                .any(|d| d.code.as_str() == "BPR019" && d.severity == Severity::Info),
            "raw model missing the divergent-chain info: {}",
            r.render()
        );
    }
}

#[test]
fn broken_fixture_fails_the_gate_with_structured_findings() {
    let report = broken_fixture();
    assert!(report.has_errors());
    // Structured fields carry ids with labels, not just prose.
    let unrecoverable = report
        .diagnostics()
        .iter()
        .find(|d| d.code.as_str() == "BPR011")
        .expect("fixture has an unrecoverable state");
    assert_eq!(unrecoverable.states.len(), 1);
    assert_eq!(unrecoverable.states[0].1, "Wedged");
    assert!(!unrecoverable.fixit.is_empty());
}

#[test]
fn json_bundle_lists_at_least_eight_catalog_codes() {
    let json = bundle_json(&lint_paper_models().unwrap());
    let distinct = (1..=19)
        .filter(|i| json.contains(&format!("BPR{i:03}")))
        .count();
    assert!(distinct >= 8, "only {distinct} distinct codes in the JSON");
    assert!(json.contains("\"catalog\": ["));
    assert!(json.contains("\"models\": ["));
    assert!(json.contains("\"fixit\": "));
}

fn run_modelcheck(dir: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_modelcheck"));
    cmd.current_dir(dir).arg("--quiet");
    for a in extra {
        cmd.arg(a);
    }
    cmd.output().expect("modelcheck binary runs")
}

#[test]
fn binary_exits_zero_on_clean_models_and_writes_json() {
    let dir = std::env::temp_dir().join("bpr_modelcheck_clean");
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_modelcheck(&dir, &[]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("MODELCHECK.json")).unwrap();
    // The bundle-level error total is the last field of the document.
    assert!(json.trim_end().ends_with("\"errors\": 0}"));
}

#[test]
fn binary_exits_nonzero_on_the_broken_fixture() {
    let dir = std::env::temp_dir().join("bpr_modelcheck_broken");
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_modelcheck(&dir, &["--broken"]);
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(dir.join("MODELCHECK.json")).unwrap();
    assert!(!json.trim_end().ends_with("\"errors\": 0}"));
    assert!(json.contains("broken-fixture"));
}
