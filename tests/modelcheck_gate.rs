//! Integration tests for the `modelcheck` static-analysis gate: every
//! registered scenario must lint clean at error severity (with no
//! warnings outside its allowlist), the deliberately broken fixture
//! must not, and the shipped binary must exit zero / non-zero
//! accordingly while emitting the JSON bundle (with the full lint
//! catalog and per-row scenario names) plus the corpus manifest.
//!
//! The tests run a fast subset of the registry — the paper models and
//! the smallest corpus scenario — because they execute in the debug
//! profile; the release binary in CI lints the full registry,
//! including the 10³/10⁴-state corpus.

use bpr_bench::modelcheck::{
    broken_fixture, broken_report, bundle_json, lint_scenarios, manifest_json,
};
use bpr_core::lint::Severity;
use bpr_core::scenario::{Scenario, ScenarioRegistry};
use std::process::Command;

/// The scenario names the debug-profile tests lint and run the binary
/// against.
const FAST_SCENARIOS: &str = "emn,two-server,web3tier-small";

fn fast_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry
        .register(Box::new(bpr_emn::EmnScenario::default()))
        .unwrap();
    registry
        .register(Box::new(bpr_emn::TwoServerScenario::default()))
        .unwrap();
    registry
        .register(Box::new(bpr_topo::web3tier_small()))
        .unwrap();
    registry
}

#[test]
fn registered_scenarios_pass_the_gate() {
    let registry = fast_registry();
    let reports = lint_scenarios(&registry).unwrap();
    assert_eq!(reports.len(), 9, "three stages per scenario");
    for r in &reports {
        assert!(!r.report.has_errors(), "{}", r.report.render());
        assert_eq!(
            r.unexpected_warnings,
            0,
            "{} ({}) has warnings outside its allowlist:\n{}",
            r.scenario,
            r.stage,
            r.report.render()
        );
    }
    // The raw stages must still report the divergence the transforms
    // exist to repair — as info, not error — for the hand-built paper
    // models and the generated corpus alike.
    let raw_reports: Vec<_> = reports.iter().filter(|r| r.stage == "raw").collect();
    assert_eq!(raw_reports.len(), 3);
    for r in raw_reports {
        assert!(
            r.report
                .diagnostics()
                .iter()
                .any(|d| d.code.as_str() == "BPR019" && d.severity == Severity::Info),
            "raw model {} missing the divergent-chain info: {}",
            r.scenario,
            r.report.render()
        );
    }
}

#[test]
fn broken_fixture_fails_the_gate_with_structured_findings() {
    let report = broken_fixture();
    assert!(report.has_errors());
    // Structured fields carry ids with labels, not just prose.
    let unrecoverable = report
        .diagnostics()
        .iter()
        .find(|d| d.code.as_str() == "BPR011")
        .expect("fixture has an unrecoverable state");
    assert_eq!(unrecoverable.states.len(), 1);
    assert_eq!(unrecoverable.states[0].1, "Wedged");
    assert!(!unrecoverable.fixit.is_empty());
    // The gate-row wrapper carries the fixture under its own scenario
    // name.
    let row = broken_report();
    assert_eq!(row.scenario, "broken-fixture");
    assert!(row.report.has_errors());
}

#[test]
fn json_bundle_embeds_scenario_names_and_the_catalog() {
    let json = bundle_json(&lint_scenarios(&fast_registry()).unwrap());
    for name in FAST_SCENARIOS.split(',') {
        assert!(
            json.contains(&format!("\"scenario\": \"{name}\"")),
            "bundle missing scenario {name}"
        );
    }
    assert!(json.contains("\"stage\": \"raw\""));
    assert!(json.contains("\"stage\": \"no-notification\""));
    let distinct = (1..=19)
        .filter(|i| json.contains(&format!("BPR{i:03}")))
        .count();
    assert!(distinct >= 8, "only {distinct} distinct codes in the JSON");
    assert!(json.contains("\"catalog\": ["));
    assert!(json.contains("\"models\": ["));
    assert!(json.contains("\"fixit\": "));
}

#[test]
fn manifest_records_the_corpus_dimensions() {
    let registry = fast_registry();
    let scenarios: Vec<&dyn Scenario> = registry.iter().collect();
    let json = manifest_json(&scenarios).unwrap();
    assert!(json.contains("\"name\": \"web3tier-small\""));
    assert!(json.contains("\"states\": 14"), "EMN dimensions missing");
    assert!(json.contains("\"build_seconds\": "));
}

fn run_modelcheck(dir: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_modelcheck"));
    cmd.current_dir(dir)
        .arg("--quiet")
        .arg("--scenario")
        .arg(FAST_SCENARIOS);
    for a in extra {
        cmd.arg(a);
    }
    cmd.output().expect("modelcheck binary runs")
}

#[test]
fn binary_exits_zero_on_clean_models_and_writes_json() {
    let dir = std::env::temp_dir().join("bpr_modelcheck_clean");
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_modelcheck(&dir, &[]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("MODELCHECK.json")).unwrap();
    // The bundle-level error total is the last field of the document.
    assert!(json.trim_end().ends_with("\"errors\": 0}"));
    assert!(json.contains("\"scenario\": \"web3tier-small\""));
    let manifest = std::fs::read_to_string(dir.join("MODELCHECK_manifest.json")).unwrap();
    assert!(manifest.contains("\"name\": \"web3tier-small\""));
}

#[test]
fn binary_exits_nonzero_on_the_broken_fixture() {
    let dir = std::env::temp_dir().join("bpr_modelcheck_broken");
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_modelcheck(&dir, &["--broken"]);
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(dir.join("MODELCHECK.json")).unwrap();
    assert!(!json.trim_end().ends_with("\"errors\": 0}"));
    assert!(json.contains("broken-fixture"));
}

#[test]
fn binary_rejects_unknown_scenarios() {
    let dir = std::env::temp_dir().join("bpr_modelcheck_unknown");
    std::fs::create_dir_all(&dir).unwrap();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_modelcheck"));
    let out = cmd
        .current_dir(&dir)
        .args(["--quiet", "--scenario", "no-such-scenario"])
        .output()
        .expect("modelcheck binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-scenario") && stderr.contains("web3tier-small"));
}
