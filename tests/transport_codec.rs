//! Property tests for the `bpr-serve` wire codec (the transport
//! tentpole's safety contract):
//!
//! * **Round-trip identity** — any frame sequence, encoded and fed
//!   back in arbitrary chunk sizes, decodes to exactly the same
//!   sequence with zero rejections.
//! * **Corruption containment** — a corrupted frame (truncated,
//!   bit-flipped, wrong version, unknown kind, oversized declaration)
//!   in the middle of a stream is rejected with a typed error, never a
//!   panic, and never takes the valid frames around it with it.

use bpr_mdp::StateId;
use bpr_serve::{Frame, FrameDecoder, FrameError};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    // ~10% of frames are End markers; the rest are events. The
    // vendored proptest has no weighted `prop_oneof!`, so the pick is
    // drawn explicitly.
    (0u8..10, 0u64..u64::MAX, 0u32..u32::MAX, 0u32..u32::MAX).prop_map(
        |(pick, tick, seq, fault)| {
            if pick < 9 {
                Frame::Event {
                    tick,
                    seq,
                    fault: StateId::new(fault as usize),
                }
            } else {
                Frame::End { ticks: tick }
            }
        },
    )
}

/// Feeds `bytes` to a decoder in chunks shaped by `chunk_seed` and
/// drains everything, separating valid frames from typed rejections.
fn decode_chunked(bytes: &[u8], chunk_seed: u64) -> (Vec<Frame>, Vec<FrameError>) {
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut errors = Vec::new();
    let mut offset = 0usize;
    let mut step = chunk_seed;
    while offset < bytes.len() {
        // Chunk sizes 1..=17, derived from the seed: exercises
        // byte-at-a-time, mid-header, and mid-payload splits.
        step = step.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let chunk = 1 + (step >> 33) as usize % 17;
        let end = (offset + chunk).min(bytes.len());
        decoder.feed(&bytes[offset..end]);
        offset = end;
        while let Some(item) = decoder.next() {
            match item {
                Ok(f) => frames.push(f),
                Err(e) => errors.push(e),
            }
        }
    }
    while let Some(item) = decoder.next() {
        match item {
            Ok(f) => frames.push(f),
            Err(e) => errors.push(e),
        }
    }
    (frames, errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → chunked decode is the identity on any frame sequence.
    #[test]
    fn round_trip_is_identity_at_any_chunking(
        frames in proptest::collection::vec(arb_frame(), 0..40),
        chunk_seed in 0u64..u64::MAX,
    ) {
        let bytes: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let (decoded, errors) = decode_chunked(&bytes, chunk_seed);
        prop_assert_eq!(decoded, frames);
        prop_assert!(errors.is_empty(), "clean stream produced {errors:?}");
    }

    /// Corrupting the middle frame of a three-frame stream — by
    /// truncation, a bit flip, a foreign version byte, an unknown
    /// kind, or an oversized length declaration — yields at least one
    /// typed rejection, never a panic, and both neighbours decode
    /// intact and in order.
    #[test]
    fn corruption_is_typed_and_contained(
        a in arb_frame(),
        b in arb_frame(),
        c in arb_frame(),
        mode in 0u8..5,
        at in 0usize..1 << 32,
        chunk_seed in 0u64..u64::MAX,
    ) {
        let mut middle = b.encode();
        match mode {
            0 => {
                // Truncation: keep 1..len-1 leading bytes.
                let keep = 1 + at % (middle.len() - 1);
                middle.truncate(keep);
            }
            1 => {
                // Single bit flip anywhere in the frame.
                let i = at % middle.len();
                let bit = (at / middle.len()) % 8;
                middle[i] ^= 1 << bit;
            }
            2 => middle[4] = middle[4].wrapping_add(1 + (at % 254) as u8), // version
            3 => middle[5] = 2 + (at % 253) as u8,                         // kind
            _ => {
                // Oversized declaration, checksum kept honest so the
                // length cap itself is what rejects it.
                let len = (65 + at % (u16::MAX as usize - 65)) as u16;
                middle[6..8].copy_from_slice(&len.to_le_bytes());
            }
        }
        let mut bytes = a.encode();
        bytes.extend_from_slice(&middle);
        bytes.extend_from_slice(&c.encode());

        let (decoded, errors) = decode_chunked(&bytes, chunk_seed);
        prop_assert!(!errors.is_empty(), "corruption mode {mode} went unnoticed");
        prop_assert!(
            decoded.len() >= 2,
            "neighbours lost: {decoded:?} / {errors:?}"
        );
        prop_assert_eq!(decoded[0], a, "leading frame corrupted");
        prop_assert_eq!(
            *decoded.last().unwrap(), c,
            "trailing frame lost to resync"
        );
        // The corrupted bytes may resynchronise into at most spurious
        // *rejections*, never into a third valid frame beyond a/c
        // unless the corruption left b itself intact (impossible for
        // modes 0/2/3/4; mode 1 flips exactly one bit, which the
        // magic, version, kind, length, or checksum check catches).
        prop_assert_eq!(decoded.len(), 2, "corrupt frame decoded as valid");
    }

    /// A stale-looking but *well-formed* replay of the same frame is
    /// decoded, not rejected: staleness is the socket layer's call,
    /// the codec only vouches for integrity.
    #[test]
    fn duplicate_frames_are_decoded_verbatim(
        f in arb_frame(),
        chunk_seed in 0u64..u64::MAX,
    ) {
        let mut bytes = f.encode();
        bytes.extend_from_slice(&f.encode());
        let (decoded, errors) = decode_chunked(&bytes, chunk_seed);
        prop_assert_eq!(decoded, vec![f, f]);
        prop_assert!(errors.is_empty());
    }

    /// Random garbage between valid frames is skipped with counted
    /// `Garbage` rejections and never desynchronises the stream.
    #[test]
    fn garbage_between_frames_never_desynchronises(
        a in arb_frame(),
        c in arb_frame(),
        junk in proptest::collection::vec(0u8..=255u8, 1..64),
        chunk_seed in 0u64..u64::MAX,
    ) {
        let mut bytes = a.encode();
        bytes.extend_from_slice(&junk);
        bytes.extend_from_slice(&c.encode());
        let (decoded, _errors) = decode_chunked(&bytes, chunk_seed);
        prop_assert!(decoded.len() >= 2, "a frame was lost to the junk");
        prop_assert_eq!(decoded[0], a);
        prop_assert_eq!(*decoded.last().unwrap(), c);
    }
}
