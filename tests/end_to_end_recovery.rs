//! End-to-end integration tests: the full pipeline (model → transform →
//! RA-Bound → bootstrap → online control → fault-injection harness) on
//! the EMN system, spanning every crate in the workspace.

use bpr_core::baselines::{HeuristicController, MostLikelyController, OracleController};
use bpr_core::bootstrap::{bootstrap, BootstrapConfig, BootstrapVariant};
use bpr_core::{BoundedConfig, BoundedController};
use bpr_emn::actions::EmnAction;
use bpr_emn::faults::EmnState;
use bpr_emn::EmnConfig;
use bpr_mdp::chain::SolveOpts;
use bpr_pomdp::bounds::ra_bound;
use bpr_sim::{run_campaign, EpisodeRunner, HarnessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bounded_controller(seed: u64) -> (bpr_core::RecoveryModel, BoundedController) {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("EMN model builds");
    let transformed = model
        .without_notification(config.operator_response_time)
        .expect("transform succeeds");
    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let mut rng = StdRng::seed_from_u64(seed);
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 10,
            depth: 2,
            max_steps: 40,
            conditioning_action: EmnAction::Observe.action_id(),
            ..BootstrapConfig::default()
        },
        &mut rng,
    )
    .expect("bootstrap succeeds");
    let controller = BoundedController::with_bound(
        transformed,
        bound,
        BoundedConfig {
            depth: 1,
            gamma_cutoff: 1e-3,
            ..BoundedConfig::default()
        },
    )
    .expect("controller builds");
    (model, controller)
}

#[test]
fn bounded_controller_recovers_every_zombie_fault() {
    let (model, mut controller) = bounded_controller(1);
    let mut rng = StdRng::seed_from_u64(2);
    let config = HarnessConfig::default();
    for zombie in EmnState::zombies() {
        for _ in 0..3 {
            let out = EpisodeRunner::new(&model)
                .config(&config)
                .run_with_rng(&mut controller, zombie.state_id(), &mut rng)
                .expect("episode runs");
            assert!(out.terminated, "did not terminate on {zombie}");
            assert!(out.recovered, "quit before recovering {zombie}");
            assert!(out.cost > 0.0);
            assert!(out.recovery_time >= out.residual_time);
        }
    }
}

#[test]
fn bounded_controller_recovers_crashes_and_host_faults_too() {
    let (model, mut controller) = bounded_controller(3);
    let mut rng = StdRng::seed_from_u64(4);
    let config = HarnessConfig::default();
    for fault in EmnState::faults() {
        let out = EpisodeRunner::new(&model)
            .config(&config)
            .run_with_rng(&mut controller, fault.state_id(), &mut rng)
            .expect("episode runs");
        assert!(out.terminated, "did not terminate on {fault}");
        assert!(out.recovered, "quit before recovering {fault}");
    }
}

#[test]
fn all_controllers_complete_a_zombie_campaign() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("EMN model builds");
    let zombies: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
    let harness = HarnessConfig::default();
    let episodes = 10;

    let mut rng = StdRng::seed_from_u64(5);
    let mut most_likely = MostLikelyController::new(model.clone(), 0.999).expect("controller");
    let s = run_campaign(
        &model,
        &mut most_likely,
        &zombies,
        episodes,
        &harness,
        &mut rng,
    )
    .expect("campaign");
    assert_eq!(s.unterminated, 0);
    assert_eq!(s.unrecovered, 0);

    let mut rng = StdRng::seed_from_u64(5);
    let mut heuristic = HeuristicController::new(model.clone(), 1, 0.999)
        .expect("controller")
        .with_gamma_cutoff(1e-3);
    let s = run_campaign(
        &model,
        &mut heuristic,
        &zombies,
        episodes,
        &harness,
        &mut rng,
    )
    .expect("campaign");
    assert_eq!(s.unterminated, 0);
    assert_eq!(s.unrecovered, 0);

    let mut rng = StdRng::seed_from_u64(5);
    let mut oracle = OracleController::new(model.clone());
    let s = run_campaign(&model, &mut oracle, &zombies, episodes, &harness, &mut rng)
        .expect("campaign");
    assert_eq!(s.unterminated, 0);
    assert_eq!(s.unrecovered, 0);
    assert_eq!(s.mean_actions, 1.0, "oracle needs exactly one action");
    assert_eq!(s.mean_monitor_calls, 0.0, "oracle never calls monitors");
}

#[test]
fn oracle_is_a_lower_envelope_on_cost() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("EMN model builds");
    let zombies: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
    let harness = HarnessConfig::default();

    let mut rng = StdRng::seed_from_u64(6);
    let mut oracle = OracleController::new(model.clone());
    let oracle_s =
        run_campaign(&model, &mut oracle, &zombies, 40, &harness, &mut rng).expect("campaign");

    let (_, mut bounded) = bounded_controller(6);
    let mut rng = StdRng::seed_from_u64(6);
    let bounded_s =
        run_campaign(&model, &mut bounded, &zombies, 40, &harness, &mut rng).expect("campaign");

    assert!(
        bounded_s.mean_cost >= oracle_s.mean_cost,
        "bounded ({}) beat the oracle ({})",
        bounded_s.mean_cost,
        oracle_s.mean_cost
    );
    assert!(bounded_s.mean_residual_time >= oracle_s.mean_residual_time - 1e-9);
}

#[test]
fn learning_transfers_across_episodes() {
    // The bound keeps improving across episodes; the vector count grows
    // (or at least never resets) between campaigns.
    let (model, mut controller) = bounded_controller(8);
    let before = controller.bound().len();
    let mut rng = StdRng::seed_from_u64(9);
    let zombies: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
    run_campaign(
        &model,
        &mut controller,
        &zombies,
        20,
        &HarnessConfig::default(),
        &mut rng,
    )
    .expect("campaign");
    assert!(
        controller.bound().len() >= before,
        "bound set shrank from {before} to {}",
        controller.bound().len()
    );
    assert!(controller.stats().backups > 0);
}
