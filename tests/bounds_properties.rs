//! Cross-crate bound-property tests on the EMN model: the ordering
//! RA ≤ V* ≤ FIB ≤ QMDP ≤ 0, Property 1(b) (`V_B ≤ L_p V_B`), and the
//! semantics of the recovery transforms.

use bpr_core::conditions;
use bpr_emn::faults::EmnState;
use bpr_emn::EmnConfig;
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::value_iteration::Discount;
use bpr_mdp::StateId;
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{fib_bound, qmdp_bound, ra_bound, ValueBound};
use bpr_pomdp::{tree, Belief};

fn probe_beliefs(n: usize) -> Vec<Belief> {
    let mut beliefs = vec![Belief::uniform(n)];
    for s in 0..n.min(6) {
        beliefs.push(Belief::point(n, StateId::new(s)));
    }
    beliefs.push(Belief::uniform_over(
        n,
        &(1..n.min(8)).map(StateId::new).collect::<Vec<_>>(),
    ));
    beliefs
}

#[test]
fn bound_sandwich_on_the_emn_model() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let pomdp = t.pomdp();
    let ra = ra_bound(pomdp, &SolveOpts::default()).expect("RA exists");
    let qmdp = qmdp_bound(pomdp, Discount::Undiscounted).expect("QMDP exists");
    let fib = fib_bound(pomdp, Discount::Undiscounted, &Default::default()).expect("FIB exists");
    for b in probe_beliefs(pomdp.n_states()) {
        let lo = ra.value(&b);
        let f = fib.value(&b);
        let hi = qmdp.value(&b);
        assert!(lo <= f + 1e-6, "RA {lo} above FIB {f} at {b:?}");
        assert!(f <= hi + 1e-6, "FIB {f} above QMDP {hi} at {b:?}");
        assert!(hi <= 1e-9, "QMDP above the trivial 0 bound");
    }
}

#[test]
fn property_1b_ra_bound_is_below_its_own_backup() {
    // Property 1(b) of §4.2: V_B(π) <= (L_p V_B)(π) when B = {RA}.
    // A depth-1 expansion with the bound at the leaves computes
    // exactly (L_p V_B)(π).
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let pomdp = t.pomdp();
    let ra = ra_bound(pomdp, &SolveOpts::default()).expect("RA exists");
    for b in probe_beliefs(pomdp.n_states()) {
        let v = ra.value(&b);
        let lp = tree::expand(pomdp, &b, 1, &ra, 1.0).expect("expand").value;
        assert!(v <= lp + 1e-7, "V_B({b:?}) = {v} exceeds L_p V_B = {lp}");
    }
}

#[test]
fn backups_preserve_property_1b() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let pomdp = t.pomdp();
    let mut set = ra_bound(pomdp, &SolveOpts::default()).expect("RA exists");
    let beliefs = probe_beliefs(pomdp.n_states());
    for b in &beliefs {
        incremental_backup(pomdp, &mut set, b, 1.0).expect("backup");
    }
    for b in &beliefs {
        let v = set.value(b);
        let lp = tree::expand(pomdp, b, 1, &set, 1.0).expect("expand").value;
        assert!(v <= lp + 1e-7, "property 1(b) broken after backups");
    }
}

#[test]
fn backups_never_exceed_the_qmdp_upper_bound() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let pomdp = t.pomdp();
    let upper = qmdp_bound(pomdp, Discount::Undiscounted).expect("QMDP exists");
    let mut set = ra_bound(pomdp, &SolveOpts::default()).expect("RA exists");
    let beliefs = probe_beliefs(pomdp.n_states());
    for _round in 0..5 {
        for b in &beliefs {
            incremental_backup(pomdp, &mut set, b, 1.0).expect("backup");
        }
    }
    for b in &beliefs {
        assert!(
            set.value(b) <= upper.value(b) + 1e-6,
            "lower bound crossed the upper bound at {b:?}"
        );
    }
}

#[test]
fn transforms_preserve_conditions() {
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    // Base model satisfies both conditions by construction.
    conditions::check_condition1(model.base(), model.null_states()).expect("condition 1");
    conditions::check_condition2(model.base()).expect("condition 2");

    // The with-notification transform keeps them.
    let notified = model.with_notification().expect("transform");
    conditions::check_condition1(&notified, model.null_states()).expect("condition 1 preserved");
    conditions::check_condition2(&notified).expect("condition 2 preserved");

    // The without-notification transform keeps condition 2 and makes
    // s_T reachable from everywhere (a_T), so condition 1 holds with
    // S_phi ∪ {s_T} as targets.
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    conditions::check_condition2(t.pomdp()).expect("condition 2 preserved");
    let mut targets = t.null_states().to_vec();
    targets.push(t.terminate_state());
    conditions::check_condition1(t.pomdp(), &targets).expect("condition 1 with s_T");
}

#[test]
fn no_free_actions_outside_exempt_states_in_emn() {
    // Property 1(a): every action outside S_phi ∪ {s_T} costs something
    // in the EMN model (every fault drops requests, and even Observe
    // takes 5 s at a non-zero drop rate).
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let mut exempt = t.null_states().to_vec();
    exempt.push(t.terminate_state());
    conditions::check_no_free_actions(t.pomdp(), &exempt).expect("no free actions");
}

#[test]
fn zombie_beliefs_value_below_crash_beliefs() {
    // Diagnosing a crash is easy (ping monitors); zombies are hard, so
    // the QMDP value (full observability) is identical per fault class
    // cost-wise, but the *lower bound* at a zombie vertex should be no
    // better than at the corresponding crash vertex after refinement —
    // a sanity check that observation quality shows up in the bound
    // machinery (weak form: bounds exist and are finite at all
    // vertices).
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let ra = ra_bound(t.pomdp(), &SolveOpts::default()).expect("RA exists");
    for s in EmnState::all() {
        let v = ra.value(&Belief::point(t.pomdp().n_states(), s.state_id()));
        assert!(v.is_finite(), "RA-Bound infinite at {s}");
        if s == EmnState::Null {
            assert!(v <= 0.0);
        } else {
            assert!(v < 0.0, "fault state {s} has non-negative bound {v}");
        }
    }
}
