//! Durability contract of the checkpoint/restore runtime:
//!
//! * A campaign checkpointed every `k` episodes, killed at an arbitrary
//!   checkpoint boundary, and resumed — possibly at a different thread
//!   count — reproduces the uninterrupted run's canonical outcomes
//!   bit-for-bit, for random master seeds and intervals (property
//!   test).
//! * Every corruption mode (truncation, single bit-flip, wrong-version
//!   header) yields a typed `SnapshotError` and a clean fallback to a
//!   fresh run — never a panic, never silently-wrong results.
//! * The durable bootstrap falls back to the seed RA-Bound on a
//!   corrupted snapshot and resumes bit-identically from a good one.
//! * A panicking episode is quarantined (fault, seed, payload) without
//!   tearing down an abort-tolerant campaign.

use bpr_core::baselines::{MostLikelyController, OracleController};
use bpr_core::bootstrap::{
    bootstrap_par, bootstrap_par_durable, BootstrapConfig, BootstrapVariant,
};
use bpr_core::snapshot::{CheckpointPolicy, SnapshotError};
use bpr_core::{ActionId, Error, RecoveryController, StateId, Step};
use bpr_emn::two_server;
use bpr_mdp::chain::SolveOpts;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::ra_bound;
use bpr_pomdp::{Belief, ObservationId};
use bpr_sim::Campaign;
use proptest::prelude::*;

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bpr_durability_{}_{name}", std::process::id()))
}

fn population() -> Vec<StateId> {
    vec![
        StateId::new(two_server::FAULT_A),
        StateId::new(two_server::FAULT_B),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint-every-k, kill at a boundary, resume — bit-identical
    /// to the straight-through run for random seeds, intervals, and
    /// kill points.
    #[test]
    fn killed_campaign_resume_is_bit_identical(
        master_seed in 0u64..u64::MAX,
        every in 1usize..5,
        kill_round in 1usize..4,
        resume_threads in 1usize..5,
    ) {
        let episodes = 16usize;
        let model = two_server::default_model().expect("model builds");
        let pop = population();
        let path = scratch(&format!("prop_{master_seed:x}"));
        let _ = std::fs::remove_file(&path);
        let session = |episodes: usize, threads: usize, checkpointed: bool| {
            let mut c = Campaign::new(&model)
                .population(&pop)
                .episodes(episodes)
                .max_steps(80)
                .seed(master_seed)
                .threads(threads);
            if checkpointed {
                c = c.checkpoint(&path, every);
            }
            c.run(|_| MostLikelyController::new(model.clone(), 0.95))
                .expect("campaign runs")
        };
        let reference = session(episodes, 1, false);
        let kill_point = (kill_round * every).min(episodes);
        session(kill_point, 2, true);
        let resumed = session(episodes, resume_threads, true);
        prop_assert_eq!(resumed.resumed_from, Some(kill_point));
        prop_assert!(resumed.snapshot_error.is_none());
        prop_assert_eq!(resumed.canonical_outcomes(), reference.canonical_outcomes());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn every_corruption_mode_degrades_cleanly() {
    let model = two_server::default_model().expect("model builds");
    let pop = population();
    let path = scratch("corruption_matrix");
    let _ = std::fs::remove_file(&path);
    let session = || {
        Campaign::new(&model)
            .population(&pop)
            .episodes(6)
            .seed(19)
            .checkpoint(&path, 2)
            .run(|_| MostLikelyController::new(model.clone(), 0.95))
            .expect("campaign runs")
    };
    let reference = session();
    let pristine = std::fs::read(&path).expect("snapshot written");

    // Truncation: drop the tail of the payload.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).unwrap();
    let report = session();
    assert!(
        matches!(report.snapshot_error, Some(SnapshotError::Truncated { .. })),
        "truncation: {:?}",
        report.snapshot_error
    );
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.canonical_outcomes(), reference.canonical_outcomes());

    // Single bit-flip in the payload.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    let report = session();
    assert!(
        matches!(
            report.snapshot_error,
            Some(SnapshotError::ChecksumMismatch { .. }) | Some(SnapshotError::Malformed { .. })
        ),
        "bit-flip: {:?}",
        report.snapshot_error
    );
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.canonical_outcomes(), reference.canonical_outcomes());

    // Wrong-version header.
    let text = String::from_utf8(pristine.clone()).expect("snapshot is text");
    let bumped = text.replacen("bpr-snapshot 1 ", "bpr-snapshot 999 ", 1);
    std::fs::write(&path, bumped).unwrap();
    let report = session();
    assert!(
        matches!(
            report.snapshot_error,
            Some(SnapshotError::VersionMismatch { .. })
        ),
        "version: {:?}",
        report.snapshot_error
    );
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.canonical_outcomes(), reference.canonical_outcomes());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_bootstrap_snapshot_falls_back_to_the_seed_bound() {
    let model = two_server::default_model().expect("model builds");
    let transformed = model.without_notification(50.0).expect("transform");
    let config = BootstrapConfig {
        variant: BootstrapVariant::Random,
        iterations: 10,
        depth: 1,
        max_steps: 15,
        conditioning_action: ActionId::new(2),
        ..BootstrapConfig::default()
    };
    let pool = WorkPool::new(2).expect("pool");
    let path = scratch("bootstrap_fallback");
    let _ = std::fs::remove_file(&path);
    let policy = CheckpointPolicy::new(&path, 1);

    let mut reference = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let reference_report =
        bootstrap_par(&transformed, &mut reference, &config, 5, 41, &pool).expect("bootstrap");

    let mut durable = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    bootstrap_par_durable(&transformed, &mut durable, &config, 5, 41, &pool, &policy)
        .expect("durable bootstrap");

    let mut bytes = std::fs::read(&path).expect("snapshot written");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    let mut fallback = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let report = bootstrap_par_durable(&transformed, &mut fallback, &config, 5, 41, &pool, &policy)
        .expect("fallback never panics");
    assert!(
        matches!(
            report.snapshot_error,
            Some(SnapshotError::ChecksumMismatch { .. })
        ),
        "got {:?}",
        report.snapshot_error
    );
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.report, reference_report);
    assert_eq!(fallback.to_tsv(), reference.to_tsv());
    let _ = std::fs::remove_file(&path);
}

/// An oracle that panics inside `decide()` when poisoned.
struct PanickyController {
    inner: OracleController,
    poisoned: bool,
}

impl RecoveryController for PanickyController {
    fn name(&self) -> &str {
        "panicky"
    }
    fn begin(&mut self, initial: Belief, true_fault: Option<StateId>) -> Result<(), Error> {
        self.inner.begin(initial, true_fault)
    }
    fn decide(&mut self) -> Result<Step, Error> {
        assert!(!self.poisoned, "durability drill panic");
        self.inner.decide()
    }
    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        self.inner.observe(action, o)
    }
    fn belief(&self) -> Option<Belief> {
        self.inner.belief()
    }
    fn uses_monitors(&self) -> bool {
        self.inner.uses_monitors()
    }
}

#[test]
fn quarantine_reports_the_poisoned_episode_and_spares_the_rest() {
    let model = two_server::default_model().expect("model builds");
    let pop = population();
    let report = Campaign::new(&model)
        .population(&pop)
        .episodes(10)
        .seed(13)
        .threads(3)
        .abort_tolerant(true)
        .run(|i| {
            Ok(PanickyController {
                inner: OracleController::new(model.clone()),
                poisoned: i == 6,
            })
        })
        .expect("tolerant campaign survives the panic");
    assert_eq!(report.aborted, 1);
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.episode, 6);
    assert_eq!(q.fault, pop[6 % pop.len()]);
    assert!(q.payload.contains("durability drill panic"));
    for (i, out) in report.outcomes.iter().enumerate() {
        assert_eq!(out.terminated, i != 6, "episode {i}");
    }
}
