//! Determinism contract of the `bpr-serve` recovery daemon (the
//! tentpole property of the crash-tolerant-daemon PR):
//!
//! * A serve run is a pure function of `(master_seed, event schedule)`
//!   — its canonical report (per-incident decision hashes, recorded
//!   action sequences, shed/escalation counters) is bit-identical at
//!   any shard width, for random seeds and schedules (property test).
//! * A run killed mid-soak and resumed from its checkpoint reproduces
//!   the uninterrupted run's per-incident decision sequences exactly,
//!   for random seeds and kill points — including runs where the kill
//!   lands before, during, and after the backlog peak (property test).
//! * Chaos-poisoned incidents quarantine identically across widths and
//!   across kill/resume, so panic isolation is itself deterministic.

use bpr_core::snapshot::CheckpointPolicy;
use bpr_emn::two_server;
use bpr_mdp::StateId;
use bpr_serve::{Daemon, Schedule, ServeConfig, SyntheticEvents};
use bpr_sim::PerturbationPlan;
use proptest::prelude::*;

fn faults() -> Vec<StateId> {
    vec![
        StateId::new(two_server::FAULT_A),
        StateId::new(two_server::FAULT_B),
    ]
}

fn schedule(pick: u8) -> Schedule {
    match pick % 3 {
        0 => Schedule::Steady { per_tick: 2 },
        1 => Schedule::Bursty {
            background: 1,
            burst: 5,
            period: 3,
        },
        _ => Schedule::Adversarial {
            storm: 6,
            period: 4,
        },
    }
}

fn base_config(master_seed: u64, degraded: bool) -> ServeConfig {
    let plan = if degraded {
        PerturbationPlan {
            seed: master_seed ^ 0x5EED,
            action_failure_prob: 0.2,
            monitor_dropout_prob: 0.1,
            obs_corruption_prob: 0.05,
            ..PerturbationPlan::none()
        }
    } else {
        PerturbationPlan::none()
    };
    ServeConfig {
        max_live: 4,
        queue_capacity: 12,
        degrade_queue_depth: 6,
        max_steps: 30,
        escalate_resilient_after: 5,
        escalate_anytime_after: 9,
        master_seed,
        plan,
        record_actions: true,
        chaos_panic_incidents: vec![3],
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The canonical serve report is a pure function of
    /// `(master_seed, event schedule)`: shard widths 1, 2, and 3
    /// produce bit-identical per-incident decision sequences, shed
    /// counters, and quarantine records.
    #[test]
    fn serve_run_is_shard_width_invariant(
        master_seed in 0u64..u64::MAX,
        schedule_pick in 0u8..3,
        degraded_pick in 0u8..2,
    ) {
        let degraded = degraded_pick == 1;
        let model = two_server::default_model().expect("model builds");
        let mut canonicals = Vec::new();
        for shards in [1usize, 2, 3] {
            let config = ServeConfig {
                shards,
                ..base_config(master_seed, degraded)
            };
            let mut daemon = Daemon::new(&model, config).expect("daemon builds");
            let mut source = SyntheticEvents::new(
                master_seed,
                schedule(schedule_pick),
                faults(),
                10,
            )
            .expect("source builds");
            let report = daemon.run(&mut source).expect("run completes");
            prop_assert_eq!(report.lost_incidents(), 0);
            prop_assert_eq!(
                report.admitted + report.shed.total(),
                report.events_seen,
                "graceful drain accounts for every event"
            );
            canonicals.push(report.canonical());
        }
        prop_assert_eq!(&canonicals[0], &canonicals[1]);
        prop_assert_eq!(&canonicals[0], &canonicals[2]);
    }

    /// Kill the daemon after a random number of rounds, resume from
    /// the checkpoint (at a different shard width), and the combined
    /// run reproduces the uninterrupted reference exactly — decision
    /// hashes, recorded action sequences, and all logical counters.
    #[test]
    fn kill_and_resume_reproduces_decision_sequences(
        master_seed in 0u64..u64::MAX,
        schedule_pick in 0u8..3,
        kill_after in 1u64..20,
    ) {
        let model = two_server::default_model().expect("model builds");
        let base = base_config(master_seed, true);
        let source = || {
            SyntheticEvents::new(master_seed, schedule(schedule_pick), faults(), 10)
                .expect("source builds")
        };

        let mut reference_daemon =
            Daemon::new(&model, base.clone()).expect("daemon builds");
        let reference = reference_daemon
            .run(&mut source())
            .expect("reference run completes");

        let path = std::env::temp_dir().join(format!(
            "bpr_serve_prop_{}_{master_seed:x}_{schedule_pick}_{kill_after}",
            std::process::id()
        ));
        let cleanup = || {
            let _ = std::fs::remove_file(&path);
            for k in 0..8 {
                let _ = std::fs::remove_file(bpr_core::snapshot::partition_path(
                    &path,
                    &format!("p{k}"),
                ));
            }
        };
        cleanup();
        // The checkpoint partition count is a durability knob, not a
        // behaviour knob: killing under one count and resuming under
        // another must still be bit-identical (the manifest records
        // the count its partitions were written with).
        let killed_config = ServeConfig {
            shards: 2,
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            checkpoint_partitions: 1 + (master_seed % 4) as usize,
            kill_after_rounds: Some(kill_after),
            ..base.clone()
        };
        let mut killed_daemon =
            Daemon::new(&model, killed_config).expect("daemon builds");
        let killed = killed_daemon.run(&mut source()).expect("killed run completes");
        prop_assert_eq!(killed.lost_incidents(), 0);
        prop_assert_eq!(
            killed.admitted + killed.shed.total() + killed.queued_at_exit,
            killed.events_seen,
            "a killed run accounts for every event, queued included"
        );

        let resumed_config = ServeConfig {
            shards: 3,
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            checkpoint_partitions: 1 + ((master_seed >> 8) % 4) as usize,
            ..base
        };
        let mut resumed_daemon =
            Daemon::new(&model, resumed_config).expect("daemon builds");
        let resumed = resumed_daemon.run(&mut source()).expect("resumed run completes");
        cleanup();

        // A kill after the final flush leaves a complete snapshot; the
        // resumed run must still report it and change nothing.
        if killed.killed {
            prop_assert!(resumed.resumed_from.is_some(), "resume engaged");
        }
        prop_assert_eq!(resumed.canonical(), reference.canonical());
    }
}
