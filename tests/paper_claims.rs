//! Direct checks of the paper's §3.1/§5 claims, at integration scope:
//! which bounds exist under the undiscounted criterion, the behaviour
//! of the terminate action, and the qualitative Table 1 ordering on a
//! small fault-injection run.

use bpr_bench::experiments::{bounds_comparison, table1, Table1Config};
use bpr_emn::EmnConfig;
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::value_iteration::Discount;
use bpr_pomdp::bounds::{bi_pomdp_bound, blind_bound, ra_bound};

#[test]
fn claim_ra_converges_where_prior_bounds_diverge() {
    // §3.1: on undiscounted recovery models with recovery notification,
    // the RA-Bound is "the only lower bound we are aware of that
    // converges to a finite value".
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let notified = model.with_notification().expect("transform");
    assert!(ra_bound(&notified, &SolveOpts::default()).is_ok());
    assert!(bi_pomdp_bound(&notified, Discount::Undiscounted).is_err());
    assert!(blind_bound(&notified, Discount::Undiscounted, &SolveOpts::default()).is_err());
}

#[test]
fn claim_terminate_action_rescues_the_blind_bound() {
    // §3.1: "In systems without recovery notification, however, our
    // proposed modifications trivially ensure a finite blind policy
    // bound".
    let config = EmnConfig::default();
    let model = bpr_emn::build_model(&config).expect("model builds");
    let t = model
        .without_notification(config.operator_response_time)
        .expect("transform");
    let blind =
        blind_bound(t.pomdp(), Discount::Undiscounted, &SolveOpts::default()).expect("finite");
    // Only the terminate action survives: one hyperplane.
    assert_eq!(blind.len(), 1);
}

#[test]
fn claim_bounds_comparison_summary() {
    let with = bounds_comparison(true).expect("runs");
    let without = bounds_comparison(false).expect("runs");
    let exists = |rows: &[bpr_bench::experiments::BoundReport], name: &str| {
        rows.iter()
            .find(|r| r.name.starts_with(name))
            .map(|r| r.value_at_uniform.is_some())
            .unwrap_or(false)
    };
    assert!(exists(&with, "RA-Bound"));
    assert!(!exists(&with, "BI-POMDP"));
    assert!(!exists(&with, "blind policy"));
    assert!(exists(&without, "RA-Bound"));
    assert!(!exists(&without, "BI-POMDP"));
    assert!(exists(&without, "blind policy"));
}

#[test]
fn claim_table1_qualitative_ordering() {
    // Small-but-meaningful fault injection run; the paper's qualitative
    // findings that must hold:
    //   (1) every controller always recovers the system before quitting,
    //   (2) the bounded controller beats the most-likely controller and
    //       the heuristic depth-1 controller on cost,
    //   (3) the oracle lower-bounds everyone,
    //   (4) the bounded controller's residual time beats heuristic-d1's.
    let rows = table1(&Table1Config {
        episodes: 60,
        heuristic_depths: vec![1],
        seed: 11,
        ..Table1Config::default()
    })
    .expect("table 1 runs");
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.controller == name)
            .unwrap_or_else(|| panic!("row {name} missing"))
            .clone()
    };
    let most_likely = get("most-likely");
    let heuristic = get("heuristic-d1");
    let bounded = get("bounded-d1");
    let oracle = get("oracle");

    for row in &rows {
        assert_eq!(
            row.unrecovered, 0,
            "{} quit before recovery",
            row.controller
        );
        assert_eq!(
            row.unterminated, 0,
            "{} failed to terminate",
            row.controller
        );
    }
    assert!(
        bounded.mean_cost < most_likely.mean_cost,
        "bounded ({:.1}) should beat most-likely ({:.1})",
        bounded.mean_cost,
        most_likely.mean_cost
    );
    // The bounded-vs-heuristic-d1 gap is small in the paper too
    // (114 vs 151); at this episode count we assert "at least
    // competitive" with a noise margin rather than strict dominance.
    assert!(
        bounded.mean_cost <= heuristic.mean_cost * 1.10,
        "bounded ({:.1}) should be at least competitive with heuristic-d1 ({:.1})",
        bounded.mean_cost,
        heuristic.mean_cost
    );
    for row in &rows {
        assert!(
            row.mean_cost + 1e-9 >= oracle.mean_cost,
            "{} beat the oracle",
            row.controller
        );
        assert!(row.mean_residual_time + 1e-9 >= oracle.mean_residual_time);
    }
    assert!(
        bounded.mean_residual_time <= heuristic.mean_residual_time * 1.15,
        "bounded residual ({:.1}) vs heuristic-d1 ({:.1})",
        bounded.mean_residual_time,
        heuristic.mean_residual_time
    );
}
