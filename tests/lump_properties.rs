//! Property tests for the lumped planning path over random `bpr-topo`
//! topologies:
//!
//! * The quotient model produced by [`TerminatedModel::lump`] must
//!   re-lint clean at error severity — aggregation must not
//!   reintroduce the structural hazards (divergent chains, missing
//!   termination, dead observation columns) the transform repaired.
//! * Recovery campaigns must be *invisible* to lumping: an episode on
//!   the full model driven by a [`LumpedController`] (which plans on
//!   the quotient and projects/lifts beliefs through the certificate)
//!   reproduces the plain full-model controller's episode bit-for-bit
//!   under the same RNG seed.
//!
//! The second property is the soundness contract the planning-kernel
//! speedups lean on: the simulation always runs on the FULL model so
//! both controllers consume the identical world RNG stream, and only
//! the planner's interior representation differs.

use bpr_core::{BoundedConfig, BoundedController, LumpedController};
use bpr_sim::{EpisodeOutcome, EpisodeRunner, HarnessConfig, TraceEvent};
use bpr_topo::{compile, DurationSpec, HazardSpec, MonitorSpec, TierSpec, TopologySpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random small-but-structured topology specs. Every generated spec
/// satisfies [`TopologySpec::validate`] by construction: hosts are
/// folded into `1..=components` and racks into `1..=hosts`, so no
/// proptest rejections are burned on invalid combinations. Replicas
/// lean ≥ 2 and the jitter is sometimes exactly zero so a fair share
/// of specs actually alias monitor rows (non-identity quotients);
/// the rest exercise the identity path.
fn arb_topo_spec() -> impl Strategy<Value = TopologySpec> {
    (
        proptest::collection::vec((1usize..=2, 1usize..=3, 30.0f64..300.0), 1..=2),
        (0usize..64, 0usize..64, 1usize..=2),
        (0.5f64..0.99, 0.0f64..0.05),
        (0usize..2, 0usize..2, 0.3f64..0.9, 0.0f64..0.3),
        (prop_oneof![Just(0.0f64), 0.0f64..0.2], 0u64..1000),
    )
        .prop_map(
            |(
                tiers,
                (hosts_pick, racks_pick, group),
                (detection, fp),
                (partitions_pick, rolling_pick, deploy_fraction, cascade_prob),
                (jitter, seed),
            )| {
                let partitions = partitions_pick == 1;
                let rolling_deploys = rolling_pick == 1;
                let components: usize = tiers.iter().map(|(s, r, _)| s * r).sum();
                let hosts = 1 + hosts_pick % components;
                let racks = 1 + racks_pick % hosts;
                TopologySpec {
                    tiers: tiers
                        .iter()
                        .enumerate()
                        .map(|(i, (services, replicas, duration))| TierSpec {
                            name: format!("tier{i}"),
                            services: *services,
                            replicas: *replicas,
                            restart_duration: *duration,
                        })
                        .collect(),
                    hosts,
                    racks,
                    restart_group_size: group,
                    monitors: MonitorSpec {
                        shallow_detection: detection,
                        shallow_fp: fp,
                        deep_detection: detection,
                        deep_fp: fp,
                        rack_detection: detection,
                        rack_fp: fp,
                        path_detection: detection,
                        path_fp: fp,
                    },
                    hazards: HazardSpec {
                        partitions,
                        rolling_deploys,
                        deploy_fraction,
                        cascade_prob,
                    },
                    durations: DurationSpec::default(),
                    operator_response_time: 6.0 * 3600.0,
                    duration_jitter: jitter,
                    seed,
                }
            },
        )
}

/// Strips the one nondeterministic field (host compute time).
fn comparable(o: &EpisodeOutcome) -> EpisodeOutcome {
    let mut o = o.clone();
    o.algorithm_time = 0.0;
    o
}

/// Trace equality up to belief-summation order: every discrete field
/// (actions, world states, observations) and every world-derived
/// quantity (wall clock, cost) must match bit-for-bit; the reported
/// belief `null_mass` is allowed a 1e-9 slack because the lumped
/// controller accumulates the same mass in quotient-class order.
fn assert_traces_equivalent(t1: &[TraceEvent], t2: &[TraceEvent]) -> Result<(), String> {
    if t1.len() != t2.len() {
        return Err(format!(
            "trace lengths differ: {} vs {}",
            t1.len(),
            t2.len()
        ));
    }
    for (i, (a, b)) in t1.iter().zip(t2.iter()).enumerate() {
        let mut a_cmp = a.clone();
        let mut b_cmp = b.clone();
        a_cmp.null_mass = 0.0;
        b_cmp.null_mass = 0.0;
        if a_cmp != b_cmp {
            return Err(format!(
                "step {i} diverges:\n  full:   {a:?}\n  lumped: {b:?}"
            ));
        }
        if (a.null_mass - b.null_mass).abs() > 1e-9 {
            return Err(format!(
                "step {i} null_mass diverges beyond slack: {} vs {}",
                a.null_mass, b.null_mass
            ));
        }
    }
    Ok(())
}

/// The plain planning configuration both sides of the equivalence use:
/// no online backups and no startup sweeps, so every decision is a pure
/// function of `(model, bound, belief)` and the bit-for-bit comparison
/// is not clouded by refinement-schedule differences.
fn plain_config() -> BoundedConfig {
    BoundedConfig {
        backup_online: false,
        startup_vertex_sweeps: 0,
        ..BoundedConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lumping a linted model yields a linted model: the quotient
    /// passes the full static analyzer at error severity, and the
    /// certificate's bookkeeping is consistent with the quotient.
    #[test]
    fn quotient_relints_clean_on_random_topologies(spec in arb_topo_spec()) {
        let model = compile(&spec).expect("generated specs are valid");
        let terminated = model
            .without_notification(spec.operator_response_time)
            .expect("transform");
        let (quotient, certificate) = terminated.lump().expect("lumping succeeds");

        prop_assert_eq!(certificate.n_full(), terminated.pomdp().n_states());
        prop_assert_eq!(certificate.n_quotient(), quotient.pomdp().n_states());
        prop_assert!(quotient.pomdp().n_states() <= terminated.pomdp().n_states());
        if certificate.is_identity() {
            prop_assert_eq!(
                quotient.pomdp().fingerprint(),
                terminated.pomdp().fingerprint(),
                "identity lump must preserve the model fingerprint"
            );
        }

        let report = quotient.lint();
        prop_assert!(!report.has_errors(), "{}", report.render());
    }

    /// Campaign invisibility: episodes on the FULL model are
    /// bit-identical whether the controller plans on the full model or
    /// (through `LumpedController`) on the quotient. Both worlds
    /// consume the same RNG stream, so any planning divergence shows
    /// up as a different action/observation trace.
    #[test]
    fn lumped_campaigns_match_full_campaigns(
        spec in arb_topo_spec(),
        seed in 0u64..1000,
        fault_pick in 0usize..64,
    ) {
        let model = compile(&spec).expect("generated specs are valid");
        let t_op = spec.operator_response_time;

        let mut full = BoundedController::new(
            model.without_notification(t_op).expect("transform"),
            plain_config(),
        )
        .expect("full controller builds");

        let (quotient, certificate) = model
            .without_notification(t_op)
            .expect("transform")
            .lump()
            .expect("lumping succeeds");
        let mut lumped = LumpedController::new(
            BoundedController::new(quotient, plain_config())
                .expect("quotient controller builds"),
            certificate,
        );

        let faults = model.fault_states();
        let fault = faults[fault_pick % faults.len()];
        let config = HarnessConfig { max_steps: 200 };

        let mut rng1 = StdRng::seed_from_u64(seed);
        let (o1, t1) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut full, fault, &mut rng1)
            .expect("full episode");

        let mut rng2 = StdRng::seed_from_u64(seed);
        let (o2, t2) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut lumped, fault, &mut rng2)
            .expect("lumped episode");

        prop_assert_eq!(comparable(&o1), comparable(&o2));
        if let Err(msg) = assert_traces_equivalent(&t1, &t2) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic non-identity coverage: random specs only sometimes
/// alias monitor rows, so pin a topology that provably does. With a
/// single rack and zero jitter, same-service replica faults are
/// indistinguishable to every monitor family (shallow/deep/path are
/// per-service or per-tier, and the one rack monitor covers
/// everything), so the quotient genuinely merges states — and must
/// still re-lint clean and reproduce full-model campaigns.
#[test]
fn single_rack_topology_lumps_nontrivially_and_campaigns_match() {
    let spec = TopologySpec::builder()
        .tier("web", 2, 3, 60.0)
        .hosts(3)
        .racks(1)
        .restart_group_size(1)
        .seed(0)
        .build()
        .expect("spec is statically valid");
    let model = compile(&spec).expect("spec compiles");
    let t_op = spec.operator_response_time;

    let (quotient, certificate) = model
        .without_notification(t_op)
        .expect("transform")
        .lump()
        .expect("lumping succeeds");
    assert!(
        !certificate.is_identity(),
        "a single-rack topology is expected to alias same-service replica faults"
    );
    assert!(certificate.n_quotient() < certificate.n_full());
    let report = quotient.lint();
    assert!(!report.has_errors(), "{}", report.render());

    let mut full = BoundedController::new(
        model.without_notification(t_op).expect("transform"),
        plain_config(),
    )
    .expect("full controller builds");
    let mut lumped = LumpedController::new(
        BoundedController::new(quotient, plain_config()).expect("quotient controller builds"),
        certificate,
    );

    let faults = model.fault_states();
    let config = HarnessConfig { max_steps: 200 };
    for seed in 0..5u64 {
        let fault = faults[(seed as usize * 37) % faults.len()];
        let mut rng1 = StdRng::seed_from_u64(seed);
        let (o1, t1) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut full, fault, &mut rng1)
            .expect("full episode");
        let mut rng2 = StdRng::seed_from_u64(seed);
        let (o2, t2) = EpisodeRunner::new(&model)
            .config(&config)
            .run_traced_with_rng(&mut lumped, fault, &mut rng2)
            .expect("lumped episode");
        assert_eq!(comparable(&o1), comparable(&o2), "seed {seed}");
        if let Err(msg) = assert_traces_equivalent(&t1, &t2) {
            panic!("seed {seed}: {msg}");
        }
    }
}
