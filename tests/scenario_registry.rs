//! The unified Scenario API: one registry, one lookup surface, the
//! paper's models and the generated `bpr-topo` corpus behind the same
//! trait. These tests pin the registry contract the bench binaries
//! rely on (`--scenario <name>` resolves through `require`), the
//! metadata every registered scenario must carry, and that a full
//! simulation campaign runs end-to-end on a generated scenario.

use bpr::prelude::*;

/// The builtin catalog, in registration order: the paper's models
/// first, then the generated corpus small → large.
const BUILTIN: [&str; 6] = [
    "emn",
    "two-server",
    "web3tier-small",
    "cellfleet-shared-rack",
    "cellfleet-mid",
    "region-large",
];

#[test]
fn builtin_registry_lists_the_catalog_in_order() {
    let registry = bpr::scenario::builtin();
    assert_eq!(registry.names(), BUILTIN.to_vec());
    assert_eq!(registry.len(), BUILTIN.len());
    assert!(!registry.is_empty());
    for name in BUILTIN {
        let scenario = registry.get(name).expect("builtin scenario resolves");
        assert_eq!(scenario.name(), name, "registry key matches self-report");
    }
    assert!(registry.get("no-such-scenario").is_none());
}

#[test]
fn require_names_the_catalog_on_unknown_scenarios() {
    let registry = bpr::scenario::builtin();
    let message = match registry.require("no-such-scenario") {
        Ok(_) => panic!("unknown scenario resolved"),
        Err(e) => e.to_string(),
    };
    assert!(message.contains("no-such-scenario"), "{message}");
    // The error doubles as discovery: it lists what *is* available.
    assert!(message.contains("emn"), "{message}");
    assert!(message.contains("cellfleet-mid"), "{message}");
}

#[test]
fn registration_rejects_duplicate_names() {
    let mut registry = ScenarioRegistry::new();
    registry
        .register(Box::new(EmnScenario::default()))
        .expect("first registration succeeds");
    let err = registry
        .register(Box::new(EmnScenario::default()))
        .unwrap_err();
    assert!(err.to_string().contains("emn"), "{err}");
    assert_eq!(registry.len(), 1);
}

/// Every registered scenario — paper and generated alike — must build,
/// declare a positive operator response time, and draw its fault
/// population from real non-null states. Generated corpus scenarios
/// additionally expect no lint warnings (the generation contract
/// promises warning-free models); the paper scenarios allowlist
/// exactly the two info findings their raw models carry by design
/// (BPR013 fault-injected orphans, BPR019 pre-transform divergence),
/// which serving harnesses suppress via `expected_warnings`.
#[test]
fn registered_scenarios_carry_sane_metadata() {
    let registry = bpr::scenario::builtin();
    for scenario in registry.iter() {
        let name = scenario.name();
        assert!(!scenario.description().is_empty(), "{name}: description");
        assert!(
            scenario.operator_response_time() > 0.0,
            "{name}: t_op must be positive"
        );
        if matches!(name, "emn" | "two-server") {
            assert_eq!(
                scenario.expected_warnings(),
                vec![LintCode::OrphanState, LintCode::DivergentRandomChain],
                "{name}: paper scenarios allowlist exactly their designed findings"
            );
        } else {
            assert!(
                scenario.expected_warnings().is_empty(),
                "{name}: generated scenarios ship warning-free"
            );
        }
        let model = scenario.build().expect("builtin scenario builds");
        let population = scenario.fault_population(&model);
        assert!(!population.is_empty(), "{name}: empty fault population");
        let faults = model.fault_states();
        for state in &population {
            assert!(
                faults.contains(state),
                "{name}: population state {state} is not a fault state"
            );
        }
    }
}

/// The EMN scenario is a registry veneer, not a fork: it builds the
/// exact model the paper-reproduction constructor builds.
#[test]
fn emn_scenario_matches_the_paper_constructor() {
    let via_registry = EmnScenario::default().build().unwrap();
    let via_constructor = bpr::emn::build_model(&EmnConfig::default()).unwrap();
    assert!(
        via_registry == via_constructor,
        "EmnScenario diverged from build_model(&EmnConfig::default())"
    );
}

/// End-to-end on a generated scenario: resolve by name, build, plan
/// with the bounded controller, and run a multi-episode campaign over
/// the scenario's declared fault population.
#[test]
fn a_campaign_runs_on_a_generated_scenario() {
    let registry = bpr::scenario::builtin();
    let scenario = registry.require("web3tier-small").unwrap();
    let model = scenario.build().unwrap();
    let population = scenario.fault_population(&model);
    let transformed = model
        .without_notification(scenario.operator_response_time())
        .unwrap();
    let prototype = BoundedController::new(transformed, BoundedConfig::default()).unwrap();
    let report = Campaign::new(&model)
        .population(&population)
        .episodes(6)
        .seed(7)
        .threads(2)
        .run(|_| Ok(prototype.clone()))
        .expect("campaign runs on the generated model");
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.aborted, 0);
    assert_eq!(report.summary.unrecovered, 0, "{:?}", report.summary);
    for outcome in &report.outcomes {
        assert!(outcome.recovered && outcome.terminated);
    }
}
