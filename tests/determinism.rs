//! Determinism contract of the parallel engines (the tentpole property
//! of the campaign/bootstrap redesign):
//!
//! * A [`Campaign`] — plain or degraded — produces bit-identical
//!   canonical outcomes at `threads = 1` and `threads = 4`, for random
//!   master seeds (property test).
//! * Episode order in `CampaignReport::outcomes` is stable: entry `i`
//!   always carries fault `population[i % population.len()]` and equals
//!   the episode a serial [`EpisodeRunner`] produces from the same
//!   per-episode streams (regression test).
//! * `bootstrap_par` reports and bounds are identical across pool
//!   widths, for random master seeds.

use bpr_core::baselines::MostLikelyController;
use bpr_core::bootstrap::{bootstrap_par, BootstrapConfig, BootstrapVariant};
use bpr_core::{ActionId, StateId};
use bpr_emn::faults::EmnState;
use bpr_emn::two_server;
use bpr_par::{split_seed, WorkPool};
use bpr_pomdp::bounds::ra_bound;
use bpr_sim::{Campaign, EpisodeRunner, PerturbationPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// threads=1 and threads=4 campaigns are bit-identical for any
    /// master seed, with and without a degraded world.
    #[test]
    fn campaign_is_thread_count_invariant(
        master_seed in 0u64..u64::MAX,
        degraded_pick in 0u8..2,
    ) {
        let degraded = degraded_pick == 1;
        let model = two_server::default_model().expect("model builds");
        let population = [
            StateId::new(two_server::FAULT_A),
            StateId::new(two_server::FAULT_B),
        ];
        let session = |threads: usize| {
            let mut campaign = Campaign::new(&model)
                .population(&population)
                .episodes(10)
                .max_steps(60)
                .seed(master_seed)
                .threads(threads)
                .abort_tolerant(true);
            if degraded {
                campaign = campaign.degraded(&PerturbationPlan {
                    seed: master_seed ^ 0x5EED,
                    action_failure_prob: 0.25,
                    monitor_dropout_prob: 0.15,
                    ..PerturbationPlan::none()
                });
            }
            campaign
                .run(|_| MostLikelyController::new(model.clone(), 0.95))
                .expect("campaign runs")
        };
        let serial = session(1);
        let wide = session(4);
        prop_assert_eq!(serial.canonical_outcomes(), wide.canonical_outcomes());
        prop_assert_eq!(serial.aborted, wide.aborted);
        prop_assert_eq!(&serial.summary.controller, &wide.summary.controller);
        prop_assert_eq!(serial.summary.mean_cost, wide.summary.mean_cost);
        prop_assert_eq!(serial.summary.unrecovered, wide.summary.unrecovered);
    }

    /// Parallel bootstrap reports and bound sets are identical across
    /// pool widths for any master seed.
    #[test]
    fn bootstrap_par_is_thread_count_invariant(master_seed in 0u64..u64::MAX) {
        let model = two_server::default_model()
            .expect("model builds")
            .without_notification(50.0)
            .expect("transform");
        let config = BootstrapConfig {
            variant: BootstrapVariant::Random,
            iterations: 8,
            depth: 1,
            max_steps: 12,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let run = |threads: usize| {
            let mut bound = ra_bound(model.pomdp(), &Default::default()).expect("RA-Bound");
            let pool = WorkPool::new(threads).expect("nonzero width");
            let report = bootstrap_par(&model, &mut bound, &config, 3, master_seed, &pool)
                .expect("bootstrap runs");
            (report, bound.to_tsv())
        };
        prop_assert_eq!(run(1), run(4));
    }
}

/// Regression: per-episode metrics order is stable. Episode `i` of a
/// parallel campaign carries fault `population[i % len]` and matches a
/// hand-rolled serial loop over [`EpisodeRunner`] that derives the same
/// `(master_seed, i)` streams — so reordering worker output or changing
/// the chunking can never silently permute (or re-seed) the rows.
#[test]
fn campaign_outcome_order_matches_serial_runner_episodes() {
    let model = bpr_emn::build_model(&bpr_emn::EmnConfig::default()).expect("EMN model builds");
    let zombies: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
    let master_seed = 42u64;
    let episodes = 9;

    let report = Campaign::new(&model)
        .population(&zombies)
        .episodes(episodes)
        .max_steps(200)
        .seed(master_seed)
        .threads(3)
        .run(|_| MostLikelyController::new(model.clone(), 0.9999))
        .expect("campaign runs");
    assert_eq!(report.outcomes.len(), episodes);

    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(
            outcome.fault,
            zombies[i % zombies.len()],
            "episode {i} carries the wrong fault"
        );
        // Re-derive episode i by hand: same controller build, same
        // stream derivation the engine documents.
        let mut controller =
            MostLikelyController::new(model.clone(), 0.9999).expect("controller builds");
        let mut rng = StdRng::seed_from_u64(split_seed(master_seed, i as u64));
        let serial = EpisodeRunner::new(&model)
            .max_steps(200)
            .run_with_rng(&mut controller, zombies[i % zombies.len()], &mut rng)
            .expect("serial episode runs");
        assert_eq!(
            serial.canonical(),
            outcome.canonical(),
            "episode {i} diverged from its serial re-derivation"
        );
    }
}
