//! Property-based equivalence tests for the fused planning kernel.
//!
//! The fused tree expansion (`bpr_pomdp::tree`) replaces the legacy
//! per-node successor rebuild with precomputed `τ_{a,o}` operators,
//! workspace scratch, a transposition cache, and optional root
//! parallelism. Its contract is *bit-identity*: the same `γ` values,
//! posteriors, branch order, q-values, tie-breaking, and node counts as
//! the retained legacy path — for every model, belief, and cutoff, not
//! just the case-study models. These properties drive randomly
//! generated POMDPs (stochastic transitions, sparse noisy observation
//! channels, beliefs with zero entries) through both paths and demand
//! exact equality.

use bpr_mdp::MdpBuilder;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::{ConstantBound, ValueBound, VectorSetBound};
use bpr_pomdp::{tree, Belief, Pomdp, PomdpBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random POMDP; the actual probabilities are derived from
/// `seed` so a failing case shrinks to a reproducible model.
#[derive(Debug, Clone)]
struct RandomPomdp {
    n_states: usize,
    n_actions: usize,
    n_obs: usize,
    seed: u64,
}

fn arb_pomdp() -> impl Strategy<Value = RandomPomdp> {
    (2usize..=5, 1usize..=4, 2usize..=6, 0u64..1 << 32).prop_map(
        |(n_states, n_actions, n_obs, seed)| RandomPomdp {
            n_states,
            n_actions,
            n_obs,
            seed,
        },
    )
}

/// Draws a normalised probability row with roughly `keep` of `n`
/// entries non-zero (always at least one).
fn random_row(rng: &mut StdRng, n: usize, keep: f64) -> Vec<f64> {
    let mut row = vec![0.0; n];
    for slot in row.iter_mut() {
        if rng.gen_bool(keep) {
            *slot = rng.gen::<f64>() + 0.05;
        }
    }
    if row.iter().all(|&p| p == 0.0) {
        row[rng.gen_range(0..n)] = 1.0;
    }
    let sum: f64 = row.iter().sum();
    for p in row.iter_mut() {
        *p /= sum;
    }
    row
}

fn build(spec: &RandomPomdp) -> Pomdp {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut mb = MdpBuilder::new(spec.n_states, spec.n_actions);
    for a in 0..spec.n_actions {
        for s in 0..spec.n_states {
            let row = random_row(&mut rng, spec.n_states, 0.7);
            for (s2, &p) in row.iter().enumerate() {
                if p > 0.0 {
                    mb.transition(s, a, s2, p);
                }
            }
            mb.reward(s, a, -rng.gen::<f64>() * 3.0);
        }
    }
    let mut pb = PomdpBuilder::new(mb.build().expect("random MDP builds"), spec.n_obs);
    for a in 0..spec.n_actions {
        for s2 in 0..spec.n_states {
            let row = random_row(&mut rng, spec.n_obs, 0.6);
            for (o, &q) in row.iter().enumerate() {
                if q > 0.0 {
                    pb.observation(s2, a, o, q);
                }
            }
        }
    }
    pb.build().expect("random POMDP builds")
}

/// A few beliefs probing the simplex: uniform, vertices, and a random
/// sparse interior point.
fn probe_beliefs(pomdp: &Pomdp, seed: u64) -> Vec<Belief> {
    let n = pomdp.n_states();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut out = vec![Belief::uniform(n), Belief::point(n, 0.into())];
    let mut probs = random_row(&mut rng, n, 0.8);
    let sum: f64 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= sum;
    }
    out.push(Belief::from_probs(probs).expect("normalised"));
    out
}

/// A random all-negative hyperplane set: a valid lower bound for these
/// all-negative-reward models, cheap enough for deep proptest trees.
fn random_lower(pomdp: &Pomdp, seed: u64) -> VectorSetBound {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb0b0);
    let n = pomdp.n_states();
    let mut bound = VectorSetBound::from_vector(vec![-50.0; n]).expect("non-empty vector");
    for _ in 0..2 {
        let v: Vec<f64> = (0..n).map(|_| -rng.gen::<f64>() * 40.0 - 5.0).collect();
        bound.add_vector(v).expect("same dimension");
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fused_successors_match_legacy_bitwise(
        spec in arb_pomdp(),
        cutoff in prop_oneof![Just(0.0), 0.0f64..0.2],
    ) {
        let pomdp = build(&spec);
        for belief in probe_beliefs(&pomdp, spec.seed) {
            for a in 0..pomdp.n_actions() {
                let action = bpr_mdp::ActionId::new(a);
                let old = belief.successors(&pomdp, action, cutoff);
                let new = tree::fused_successors(&pomdp, &belief, action, cutoff);
                prop_assert_eq!(old.len(), new.len(), "branch count, action {}", a);
                for ((o1, g1, b1), (o2, g2, b2)) in old.iter().zip(&new) {
                    prop_assert_eq!(o1, o2, "branch order");
                    prop_assert_eq!(g1.to_bits(), g2.to_bits(), "gamma bits at {}", o1);
                    prop_assert_eq!(b1.probs(), b2.probs(), "posterior at {}", o1);
                }
            }
        }
    }

    #[test]
    fn fused_expansion_matches_legacy_decisions(
        spec in arb_pomdp(),
        depth in 1usize..=2,
        cutoff in prop_oneof![Just(0.0), 0.0f64..0.1],
    ) {
        let pomdp = build(&spec);
        let lower = random_lower(&pomdp, spec.seed);
        for belief in probe_beliefs(&pomdp, spec.seed) {
            let old = tree::legacy::expand_with_cutoff(&pomdp, &belief, depth, &lower, 1.0, cutoff)
                .expect("legacy expands");
            let new = tree::expand_with_cutoff(&pomdp, &belief, depth, &lower, 1.0, cutoff)
                .expect("fused expands");
            prop_assert_eq!(old, new);
        }
    }

    #[test]
    fn parallel_roots_match_sequential_decisions(
        spec in arb_pomdp(),
        depth in 1usize..=2,
    ) {
        let pomdp = build(&spec);
        let lower = random_lower(&pomdp, spec.seed);
        for belief in probe_beliefs(&pomdp, spec.seed) {
            let sequential = tree::expand_with_cutoff(&pomdp, &belief, depth, &lower, 1.0, 0.0)
                .expect("sequential expands");
            for width in [1usize, 2, 4] {
                let pool = WorkPool::new(width).expect("positive width");
                let parallel = tree::expand_par(&pomdp, &belief, depth, &lower, 1.0, 0.0, &pool)
                    .expect("parallel expands");
                prop_assert_eq!(&sequential, &parallel, "width {}", width);
            }
        }
    }

    #[test]
    fn fused_branch_and_bound_matches_legacy(
        spec in arb_pomdp(),
        depth in 1usize..=2,
    ) {
        // ConstantBound(0.0) is a sound upper bound (all rewards are
        // negative); a random hyperplane set is the lower bound. QMDP is
        // avoided here: its value iteration need not converge on
        // arbitrary random models.
        let pomdp = build(&spec);
        let lower = random_lower(&pomdp, spec.seed);
        let upper = ConstantBound(0.0);
        for belief in probe_beliefs(&pomdp, spec.seed) {
            let old = tree::legacy::expand_branch_and_bound(
                &pomdp, &belief, depth, &lower, &upper, 1.0, 0.0,
            )
            .expect("legacy b&b expands");
            let new = tree::expand_branch_and_bound(
                &pomdp, &belief, depth, &lower, &upper, 1.0, 0.0,
            )
            .expect("fused b&b expands");
            prop_assert_eq!(old, new);
        }
    }

    #[test]
    fn value_weights_agrees_with_value_on_random_bounds(
        spec in arb_pomdp(),
    ) {
        let pomdp = build(&spec);
        let bound = random_lower(&pomdp, spec.seed);
        for belief in probe_beliefs(&pomdp, spec.seed) {
            let via_belief = bound.value(&belief);
            let via_weights = bound.value_weights(belief.probs());
            prop_assert_eq!(via_belief.to_bits(), via_weights.to_bits());
        }
    }
}

#[test]
fn workspace_reuse_matches_fresh_workspaces_across_models() {
    // One workspace reused across *different* models and depths must
    // give the same decisions as a fresh workspace per call (no state
    // leaks through the arena, frames, or cache).
    let mut ws = bpr_pomdp::PlanWorkspace::new();
    for seed in 0..8u64 {
        let spec = RandomPomdp {
            n_states: 3 + (seed as usize % 3),
            n_actions: 2,
            n_obs: 4,
            seed,
        };
        let pomdp = build(&spec);
        let lower = random_lower(&pomdp, seed);
        let belief = Belief::uniform(pomdp.n_states());
        for depth in 1..=2 {
            tree::expand_with_workspace(&pomdp, &belief, depth, &lower, 1.0, 0.0, &mut ws)
                .expect("reused workspace expands");
            let fresh = tree::expand_with_cutoff(&pomdp, &belief, depth, &lower, 1.0, 0.0)
                .expect("fresh workspace expands");
            assert_eq!(ws.decision(), &fresh, "seed {seed} depth {depth}");
        }
    }
}
