#!/usr/bin/env bash
# Tier-1 gate, runnable locally or from CI. Mirrors
# .github/workflows/ci.yml exactly.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (-D warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "==> robustness smoke (10 episodes)"
cargo run -p bpr-bench --bin robustness --release -- --episodes 10

echo "==> determinism smoke (scaling at 1,2 threads; fails on divergence)"
cargo run -p bpr-bench --bin scaling --release -- \
  --episodes 12 --bootstrap-iters 6 --batch 3 --max-steps 200 --threads 1,2

echo "==> kill-and-resume smoke (fails on resume divergence; keeps snapshot)"
cargo run -p bpr-bench --bin kill_resume --release -- \
  --episodes 20 --every 3 --bootstrap-iters 8 --batch 4 --max-steps 200 --threads 1,2

echo "==> planning-throughput smoke (fails on fused/parallel divergence or steady-state allocations)"
cargo run -p bpr-bench --bin planning --release -- \
  --decisions 8 --depth 2 --threads 1,2,4

echo "==> planning perf-gate smoke on a generated 10^3-state scenario (fails under 1.5x lumped+cached speedup, on divergence, or on steady-state allocations)"
cargo run -p bpr-bench --bin planning --release -- \
  --scenario cellfleet-mid --decisions 5 --depth 1 --threads 1,2 \
  --min-speedup 1.5

echo "==> modelcheck (full-corpus lint gate: paper models + generated 10^2-10^4 corpus; fails on errors or unexpected warnings)"
cargo run -p bpr-bench --bin modelcheck --release -- \
  --quiet --out MODELCHECK.json --manifest MODELCHECK_manifest.json

echo "==> certify (certified-bound gate: kernel bounds bracketed by the plan oracle and MDP ceiling, BPR100-series policy analysis; fails on unsound/dominated rows or error findings)"
cargo run -p bpr-bench --bin certify --release -- \
  --quiet --out CERTIFY.json

echo "==> serve chaos-soak smoke (bursty load + fault injection + forced kill/resume, plus a loopback-socket network-chaos soak on web3tier-small; fails on incident loss, divergence, or transport-accounting violations)"
cargo run -p bpr-bench --bin serve --release -- \
  --ticks 120 --kill-round 25 --net-scenarios web3tier-small --net-ticks 48 \
  --out BENCH_serve.json --snapshot serve.snapshot

# Note: `command -v cargo-miri` is a false positive under rustup (the
# proxy shim exists even when the component is absent) — ask rustup.
if rustup component list --installed 2>/dev/null | grep -q "^miri"; then
  echo "==> miri (bpr-linalg + bpr-pomdp unit tests)"
  cargo miri test -p bpr-linalg -p bpr-pomdp --lib -q
else
  echo "==> miri: not installed, skipping (CI runs it on nightly)"
fi

echo "==> ci.sh: all gates passed"
