#!/usr/bin/env bash
# Tier-1 gate, runnable locally or from CI. Mirrors
# .github/workflows/ci.yml exactly.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (-D warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "==> robustness smoke (10 episodes)"
cargo run -p bpr-bench --bin robustness --release -- --episodes 10

echo "==> determinism smoke (scaling at 1,2 threads; fails on divergence)"
cargo run -p bpr-bench --bin scaling --release -- \
  --episodes 12 --bootstrap-iters 6 --batch 3 --max-steps 200 --threads 1,2

echo "==> kill-and-resume smoke (fails on resume divergence; keeps snapshot)"
cargo run -p bpr-bench --bin kill_resume --release -- \
  --episodes 20 --every 3 --bootstrap-iters 8 --batch 4 --max-steps 200 --threads 1,2

echo "==> planning-throughput smoke (fails on fused/parallel divergence or steady-state allocations)"
cargo run -p bpr-bench --bin planning --release -- \
  --decisions 8 --depth 2 --threads 1,2,4

echo "==> ci.sh: all gates passed"
